#!/usr/bin/env python3
"""Compare the paper's protocols head to head.

Same torus, same adversary, five protocols:

- crash-flood (Section VII) -- fast, crash-only (a liar corrupts it);
- CPA (Section IX / Koo) -- cheap, tolerates t <= 2r^2/3;
- bv-two-hop (Section VI-B) -- the simplified indirect-report protocol,
  exact threshold t < r(2r+1)/2;
- bv-indirect (Section VI) -- the full four-hop protocol, same threshold,
  heavier reporting;
- bv-earmarked (Section VI's state reduction) -- four-hop traffic with
  construction-derived watch-lists instead of general evidence tracking.

The run shows the safety/liveness trade-offs and the message-cost
ordering the paper discusses.

Run:  python examples/protocol_comparison.py [--r 1 --t 1]
"""

import argparse

from repro import byzantine_broadcast_scenario
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--r", type=int, default=1)
    parser.add_argument("--t", type=int, default=1)
    parser.add_argument(
        "--strategy",
        default="liar",
        choices=["silent", "liar", "duplicitous", "fabricator", "noise"],
    )
    args = parser.parse_args()

    rows = []
    for protocol in (
        "crash-flood",
        "cpa",
        "bv-two-hop",
        "bv-indirect",
        "bv-earmarked",
    ):
        sc = byzantine_broadcast_scenario(
            r=args.r, t=args.t, protocol=protocol, strategy=args.strategy
        )
        sc.validate()
        out = sc.run()
        rows.append(
            {
                "protocol": protocol,
                "achieved": out.achieved,
                "safe": out.safe,
                "live": out.live,
                "wrong_commits": len(out.wrong_commits),
                "undecided": len(out.undecided),
                "rounds": out.rounds,
                "messages": out.messages,
            }
        )

    print(
        format_table(
            rows,
            title=(
                f"protocol comparison: r={args.r}, t={args.t}, "
                f"adversary={args.strategy}, worst-case strip placement"
            ),
        )
    )
    print()
    print("Reading the table:")
    print("- crash-flood trusts everyone: a lying adversary breaks safety;")
    print("- CPA and both BV protocols never commit wrong values;")
    print("- the BV protocols pay messages for their exact threshold.")


if __name__ == "__main__":
    main()
