#!/usr/bin/env python3
"""Section X live: spoofing and deliberate collisions.

The paper's results assume no address spoofing and no collisions; Section
X sketches what happens without those assumptions.  This example runs
each regime with a SINGLE Byzantine node:

1. on the enforced (paper-model) channel the attack cannot even be
   expressed -- the engine raises;
2. with spoofing allowed, one source-impersonator breaks *safety*;
3. with unbounded jamming, one jammer breaks *liveness* for its whole
   neighborhood;
4. with a bounded jam budget, retransmitting a few more times than the
   budget restores reliable broadcast ("trivially solved by
   re-transmitting");
5. with a lossy channel, redundant copies implement the probabilistic
   local-broadcast primitive of Section II.

Run:  python examples/section_x_attacks.py
"""

from repro.experiments.report import format_table
from repro.experiments.runners import run_section_x_attacks


def main() -> None:
    rows = run_section_x_attacks(r=1)
    print(format_table(rows, title="Section X: channel attacks, one fault each"))
    print()
    print("Reading the table:")
    print("- the enforced channel rejects spoofing outright (the model's rule);")
    print("- spoofing allowed: safety dies with a single impersonator;")
    print("- unbounded jamming: the jammer's neighbors never decide;")
    print("- a bounded jammer loses to retransmission;")
    print("- random loss loses to redundancy (1 - p^k delivery).")


if __name__ == "__main__":
    main()
