#!/usr/bin/env python3
"""Quickstart: reliable broadcast on a toroidal grid radio network.

Runs the Bhandari-Vaidya two-hop protocol (Section VI-B of the paper) on
a torus with r = 2, against the strongest per-node adversary
(report-fabricating Byzantine nodes placed by the worst-case strip
construction), at the largest tolerable budget t = 4 < r(2r+1)/2 = 5.

Expected output: reliable broadcast ACHIEVED -- every correct node
commits the source's value -- plus a map of the commit wave.

Run:  python examples/quickstart.py
"""

from repro import byzantine_broadcast_scenario, byzantine_linf_max_t
from repro.viz.ascii_art import render_commit_wave


def main() -> None:
    r = 2
    t = byzantine_linf_max_t(r)  # 4: the exact threshold is t < 5
    print(f"radius r={r}, fault budget t={t} (threshold: t < r(2r+1)/2 = {r*(2*r+1)/2})")

    scenario = byzantine_broadcast_scenario(
        r=r,
        t=t,
        protocol="bv-two-hop",
        strategy="fabricator",  # lies AND forges relay reports
        placement="strip",      # the paper's worst-case construction
    )
    scenario.validate()  # placement respects the locally-bounded budget
    print(
        f"torus {scenario.topology.width}x{scenario.topology.height}, "
        f"{len(scenario.faulty_nodes)} Byzantine nodes, "
        f"{len(scenario.correct_nodes)} correct nodes"
    )

    outcome = scenario.run()

    print()
    print("commit map  (S source, # Byzantine, o committed correct value,")
    print("             X wrong commit -- must never appear, . undecided)")
    print()
    print(
        render_commit_wave(
            scenario.topology,
            outcome.result.committed(),
            outcome.value,
            faulty=scenario.faulty_nodes,
        )
    )
    print()
    print(f"achieved : {outcome.achieved}")
    print(f"safe     : {outcome.safe}   (no correct node committed a wrong value)")
    print(f"live     : {outcome.live}   (every correct node committed)")
    print(f"rounds   : {outcome.rounds}")
    print(f"messages : {outcome.messages}")

    if not outcome.achieved:  # pragma: no cover - the theorem says otherwise
        raise SystemExit("unexpected: broadcast failed below the threshold")


if __name__ == "__main__":
    main()
