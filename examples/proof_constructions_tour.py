#!/usr/bin/env python3
"""A guided tour of the paper's constructive proofs, executed.

Walks through the machinery behind Theorem 3 for a chosen radius:

1. the Figures 1-3 region decomposition (M = R + U + S1 + S2);
2. Table I's relay regions for a chosen U node, with the claimed counts;
3. the full r(2r+1) node-disjoint path family, mechanically verified;
4. the 'earmarked messages' watch-list the proof enables;
5. the Theorem 6 (CPA) stage inequalities.

Run:  python examples/proof_constructions_tour.py [--r 3 --p 1 --q 2]
"""

import argparse

from repro.core.cpa_argument import theorem6_row
from repro.core.earmark import earmarked_reports, watchlist_size
from repro.core.paths import corner_P, corner_connectivity, u_node_paths
from repro.core.regions import (
    expected_region_sizes,
    expected_U_path_counts,
    region_M,
    region_R,
    region_S1,
    region_S2,
    region_U,
    table1_U_regions,
)
from repro.core.witnesses import verify_connectivity_map, verify_family


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--r", type=int, default=3)
    parser.add_argument("--p", type=int, default=1)
    parser.add_argument("--q", type=int, default=2)
    args = parser.parse_args()
    r, p, q = args.r, args.p, args.q
    a = b = 0

    print(f"=== Theorem 3 construction, r={r}, nbd({a},{b}), "
          f"corner node P = {corner_P(a, b, r)} ===\n")

    sizes = expected_region_sizes(r)
    print("1. Region decomposition (Figs. 1-3):")
    print(f"   |M|  = {len(region_M(a, b, r)):4d}  (claimed r(2r+1)   = {sizes['M']})")
    print(f"   |R|  = {len(region_R(a, b, r)):4d}  (claimed r(r+1)    = {sizes['R']})")
    print(f"   |U|  = {len(region_U(a, b, r)):4d}  (claimed r(r-1)/2  = {sizes['U']})")
    print(f"   |S1| = {len(region_S1(a, b, r)):4d}  (claimed r         = {sizes['S1']})")
    print(f"   |S2| = {len(region_S2(a, b, r)):4d}  (claimed r(r-1)/2  = {sizes['S2']})")

    from repro.viz.regions_art import render_m_decomposition, render_u_construction

    print("\n   the decomposition, drawn (Fig. 3):")
    print("   " + render_m_decomposition(a, b, r).replace("\n", "\n   "))

    print(f"\n2. Table I relay regions for the U node N = ({a+p},{b+q}):")
    regions = table1_U_regions(a, b, r, p, q)
    claims = expected_U_path_counts(r, p, q)
    for name in ("A", "B1", "B2", "C1", "C2", "D1", "D2", "D3"):
        rect = regions[name]
        print(f"   {name:3s} [{rect.x_min},{rect.x_max}]x[{rect.y_min},{rect.y_max}]"
              f"  |{name}| = {len(rect)}")
    print(f"   claimed paths: A={claims['A']} B={claims['B']} "
          f"C={claims['C']} D={claims['D']}  total={claims['total']} "
          f"= r(2r+1) = {r*(2*r+1)}")
    print("\n   the construction, drawn (Fig. 5):")
    print("   " + render_u_construction(a, b, r, p, q).replace("\n", "\n   "))

    print("\n3. Path family for N, mechanically verified:")
    fam = u_node_paths(a, b, r, p, q)
    verify_family(fam, r, expected_count=r * (2 * r + 1))
    print(f"   {fam.count} node-disjoint paths N->P, all inside "
          f"nbd({fam.center}) -- verified (endpoints, adjacency, "
          "disjointness, containment)")
    sample = fam.paths[: 3]
    for path in sample:
        print(f"     e.g. {' -> '.join(map(str, path))}")

    print("\n   ... and the same for every node of M:")
    families = corner_connectivity(a, b, r)
    verify_connectivity_map(
        families,
        r,
        required_nodes=r * (2 * r + 1),
        required_paths_each=r * (2 * r + 1),
    )
    print(f"   {len(families)} nodes x {r*(2*r+1)} disjoint paths each: verified")

    print("\n4. Earmarked watch-list (the proof's state reduction):")
    wl = earmarked_reports(a, b, r)
    print(f"   P watches {len(wl)} origins, {watchlist_size(wl)} relay "
          "chains total (vs tracking every HEARD in a 4-hop halo)")

    print("\n5. Theorem 6 (CPA) stage inequalities at this radius:")
    if r >= 2:
        row = theorem6_row(r)
        print(f"   t = 2r^2/3 = {row.t};  2t+1 = {row.threshold:.1f}")
        print(f"   first-wave support  : {row.initial_support}")
        print(f"   stage-1 rows        : {row.stage1_rows_certified} "
              f"(paper claims >= floor(r/sqrt(6)) = {row.paper_stage1_claim})")
        print(f"   stage-2 corner supp : {row.stage2_corner_support}")
        print(f"   all inequalities hold: {row.all_inequalities_hold}")
    else:
        print("   (needs r >= 2)")


if __name__ == "__main__":
    main()
