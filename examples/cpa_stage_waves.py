#!/usr/bin/env python3
"""Figures 14-19 live: watching CPA's staged commit wave.

Theorem 6's proof tracks how commitment spreads under the simple protocol
at ``t = floor(2 r^2 / 3)``: first the rows adjacent to each edge of the
committed square, then deeper rows, then the corners, then everyone.
This example runs CPA and renders the commit *round* of every node (digit
= round mod 10), which makes the stages visible just like the figures'
shading, and prints the per-round commit counts.

Run:  python examples/cpa_stage_waves.py [--r 3]
"""

import argparse
from collections import Counter

from repro.core.cpa_argument import theorem6_row
from repro.core.thresholds import cpa_linf_max_t
from repro.experiments.scenarios import byzantine_broadcast_scenario
from repro.viz.ascii_art import render_commit_wave


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--r", type=int, default=3)
    parser.add_argument(
        "--strategy", default="silent", choices=["silent", "liar"]
    )
    args = parser.parse_args()
    r = args.r
    t = cpa_linf_max_t(r)

    print(f"CPA at Theorem 6's budget: r={r}, t = floor(2r^2/3) = {t}\n")
    row = theorem6_row(r)
    print(f"stage-1 rows certified analytically: {row.stage1_rows_certified} "
          f"(claim: >= floor(r/sqrt(6)) = {row.paper_stage1_claim})")

    sc = byzantine_broadcast_scenario(
        r=r, t=t, protocol="cpa", strategy=args.strategy
    )
    # synchronous steps: one pnbd hop per round, like the proof's stages
    sc.delivery = "end-of-round"
    sc.validate()
    out = sc.run()
    assert out.achieved, out.summary()

    commit_rounds = {
        node: proc.commit_round
        for node, proc in out.result.processes.items()
        if getattr(proc, "commit_round", None) is not None
    }
    print("\ncommit wave (digit = commit round mod 10; # = faulty):\n")
    print(
        render_commit_wave(
            sc.topology,
            out.result.committed(),
            out.value,
            faulty=sc.faulty_nodes,
            commit_rounds=commit_rounds,
        )
    )
    counts = Counter(commit_rounds.values())
    print("\nnodes committing per round:")
    for rnd in sorted(counts):
        print(f"  round {rnd:2d}: {counts[rnd]:4d}  {'#' * (counts[rnd] // 4)}")
    print(f"\nachieved: {out.achieved} in {out.rounds} rounds, "
          f"{out.messages} messages")


if __name__ == "__main__":
    main()
