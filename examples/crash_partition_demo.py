#!/usr/bin/env python3
"""Figure 8 live: the crash-stop partition at t = r(2r+1), and its
healing one fault below the threshold (Theorems 4 and 5).

The example builds the paper's strip construction (adapted to the torus:
two strips, so the wrap cannot route around), prints the fault map, runs
the crash-flood protocol, and shows that:

1. at t = r(2r+1) the far band never receives the broadcast;
2. removing a single fault (t - 1 regime) lets the broadcast through.

Run:  python examples/crash_partition_demo.py [--r 2]
"""

import argparse

from repro import crash_broadcast_scenario, crash_linf_threshold
from repro.viz.ascii_art import render_commit_wave, render_fault_map


def show(scenario, label):
    out = scenario.run()
    print(f"--- {label} ---")
    print(
        render_commit_wave(
            scenario.topology,
            out.result.committed(),
            out.value,
            faulty=scenario.faulty_nodes,
        )
    )
    print(
        f"achieved={out.achieved}  undecided={len(out.undecided)}  "
        f"rounds={out.rounds}  messages={out.messages}\n"
    )
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--r", type=int, default=2)
    args = parser.parse_args()
    r = args.r
    t_imp = crash_linf_threshold(r)

    print(f"crash-stop threshold: t < r(2r+1) = {t_imp}\n")

    at_threshold = crash_broadcast_scenario(
        r=r, t=t_imp, enforce_budget=False
    )
    at_threshold.validate()
    print("fault placement (two width-r strips; S = source):")
    print(render_fault_map(at_threshold.topology, at_threshold.faulty_nodes))
    print()
    blocked = show(at_threshold, f"t = {t_imp}: the strip partitions the torus")

    below = crash_broadcast_scenario(r=r, t=t_imp - 1, enforce_budget=True)
    below.validate()
    healed = show(below, f"t = {t_imp - 1}: holes open, broadcast completes")

    assert not blocked.achieved and blocked.safe
    assert healed.achieved
    print("Theorems 4 and 5 confirmed: the crash threshold is exact.")


if __name__ == "__main__":
    main()
