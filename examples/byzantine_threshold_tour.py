#!/usr/bin/env python3
"""Tour of the exact Byzantine threshold (Theorem 1 + Koo's bound).

For each radius this example runs the Bhandari-Vaidya two-hop protocol on
both sides of the exact threshold t* = r(2r+1)/2:

- at t = ceil(t*) - 1 (the largest tolerable budget) broadcast succeeds
  against silent, lying, and report-fabricating adversaries;
- at t = ceil(t*) (Koo's impossibility bound) the half-density strip
  blocks liveness -- and safety still holds (nobody ever commits wrong).

This is the paper's headline result reproduced end to end.

Run:  python examples/byzantine_threshold_tour.py [--r 1 2]
"""

import argparse

from repro import (
    byzantine_broadcast_scenario,
    byzantine_linf_max_t,
    koo_impossibility_bound,
)
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--r", nargs="+", type=int, default=[1, 2], help="radii to sweep"
    )
    parser.add_argument(
        "--protocol",
        default="bv-two-hop",
        choices=["bv-two-hop", "bv-indirect", "cpa"],
    )
    args = parser.parse_args()

    rows = []
    for r in args.r:
        for label, t in (
            ("below (achievable)", byzantine_linf_max_t(r)),
            ("at bound (impossible)", koo_impossibility_bound(r)),
        ):
            for strategy in ("silent", "liar", "fabricator"):
                sc = byzantine_broadcast_scenario(
                    r=r, t=t, protocol=args.protocol, strategy=strategy
                )
                sc.validate()
                out = sc.run()
                rows.append(
                    {
                        "r": r,
                        "t": t,
                        "regime": label,
                        "strategy": strategy,
                        "achieved": out.achieved,
                        "safe": out.safe,
                        "undecided": len(out.undecided),
                        "rounds": out.rounds,
                        "messages": out.messages,
                    }
                )
                print(
                    f"r={r} t={t} {strategy:11s} {label:22s} -> "
                    f"achieved={out.achieved} safe={out.safe}"
                )

    print()
    print(
        format_table(
            rows,
            title=f"Theorem 1 threshold tour ({args.protocol}): "
            "success below r(2r+1)/2, liveness loss at the bound",
        )
    )

    below = [row for row in rows if "below" in row["regime"]]
    at = [row for row in rows if "at bound" in row["regime"]]
    assert all(row["achieved"] for row in below)
    assert all(row["safe"] and not row["achieved"] for row in at)
    print("\nthreshold shape confirmed: exact, as the paper proves.")


if __name__ == "__main__":
    main()
