#!/usr/bin/env python3
"""Section XI's random-failure model: crash-stop broadcast as site
percolation.

Every node independently fails (crashes before the run) with probability
p_fail; coverage is the fraction of surviving nodes the broadcast
reaches.  Sweeping p_fail exposes the percolation phase transition, and
comparing radii shows the transition moving right as neighborhoods grow.

Run:  python examples/percolation_random_failures.py [--side 31 --trials 10]
"""

import argparse

from repro.analysis.percolation import (
    critical_probability_estimate,
    percolation_curve,
)
from repro.experiments.report import format_table
from repro.grid.torus import Torus


def bar(fraction: float, width: int = 40) -> str:
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=31)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--radii", nargs="+", type=int, default=[1, 2])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    probabilities = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95]
    rows = []
    for r in args.radii:
        torus = Torus.square(args.side, r)
        points = percolation_curve(
            torus, (0, 0), probabilities, trials=args.trials, seed=args.seed
        )
        print(f"\nr = {r}  ({args.side}x{args.side} torus, "
              f"{args.trials} trials per point)")
        for pt in points:
            print(
                f"  p_fail={pt.p_fail:4.2f}  coverage={pt.mean_coverage:5.3f} "
                f"|{bar(pt.mean_coverage)}|"
            )
        critical = critical_probability_estimate(points)
        print(f"  estimated critical p (coverage < 0.5): {critical}")
        for pt in points:
            rows.append(
                {
                    "r": r,
                    "p_fail": pt.p_fail,
                    "mean_coverage": round(pt.mean_coverage, 3),
                    "stdev": round(pt.stdev_coverage, 3),
                    "always_complete": round(pt.all_reached_fraction, 2),
                }
            )

    print()
    print(format_table(rows, title="Section XI: random failures = site percolation"))


if __name__ == "__main__":
    main()
