#!/usr/bin/env python3
"""Section VIII live: reliable broadcast under the Euclidean (L2) metric.

The paper's exact thresholds are for L-infinity; for L2 it argues
informally that Byzantine tolerance sits near one-fourth of the disc
population (achievable ~0.23*pi*r^2, impossible ~0.3*pi*r^2).  This
example:

1. shows the L2 neighborhood (a lattice disc) and its population vs
   pi*r^2;
2. *measures* the Fig. 12 connectivity claim with exact max flow;
3. runs the two-hop protocol under L2 below the estimated threshold
   (success) and against the Fig. 13 strip (liveness blocked, safety
   intact).

Run:  python examples/euclidean_metric_demo.py [--r 3]
"""

import argparse
import math

from repro.core.l2_construction import l2_argument_row
from repro.core.thresholds import (
    l2_byzantine_achievable_estimate,
    l2_byzantine_impossible_estimate,
)
from repro.experiments.scenarios import byzantine_broadcast_scenario, strip_torus
from repro.faults.constructions import torus_byzantine_strip
from repro.faults.placement import max_faults_per_nbd
from repro.geometry.balls import l2_ball_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--r", type=int, default=3)
    args = parser.parse_args()
    r = args.r

    print(f"=== L2 metric, r = {r} ===\n")
    disc = l2_ball_size(r)
    print(f"1. disc population: {disc} lattice neighbors "
          f"(pi*r^2 = {math.pi*r*r:.1f})")
    print(f"   achievable estimate  0.23*pi*r^2 = "
          f"{l2_byzantine_achievable_estimate(r):.1f}")
    print(f"   impossible estimate  0.30*pi*r^2 = "
          f"{l2_byzantine_impossible_estimate(r):.1f}")

    row = l2_argument_row(r)
    print(f"\n2. Fig. 12 connectivity, measured exactly (max flow):")
    print(f"   worst-pair disjoint paths >= {row.measured_paths} "
          f"(needs 2t+1 = {row.required_for_threshold} at t* = {row.t_star})")
    print(f"   paper's area estimate: 1.47*r^2 = {row.paper_area_estimate:.1f}")
    print(f"   argument holds: {row.argument_holds}")

    t_run = max(1, row.t_star // 3)  # well inside the achievable regime
    print(f"\n3a. simulated broadcast, t = {t_run} (below threshold):")
    sc = byzantine_broadcast_scenario(
        r=r, t=t_run, protocol="bv-two-hop", strategy="liar", metric="l2"
    )
    sc.validate()
    out = sc.run()
    print(f"    {out.summary()}")
    assert out.achieved

    print("\n3b. the Fig. 13 strip (half-density, L2):")
    torus = strip_torus(r, metric="l2")
    faults = torus_byzantine_strip(torus)
    worst, _ = max_faults_per_nbd(faults, r, metric="l2", topology=torus)
    print(f"    worst neighborhood holds {worst} faults "
          f"(estimate 0.3*pi*r^2 = {0.3*math.pi*r*r:.1f})")
    sc2 = byzantine_broadcast_scenario(
        r=r,
        t=worst,
        protocol="bv-two-hop",
        strategy="silent",
        metric="l2",
        torus=torus,
        enforce_budget=False,
    )
    sc2.validate()
    out2 = sc2.run()
    print(f"    {out2.summary()}")
    assert out2.safe and not out2.live
    print("\nSection VIII's shape confirmed: achievable below ~0.23*pi*r^2, "
          "blocked at the strip's ~0.3*pi*r^2.")


if __name__ == "__main__":
    main()
