"""Opt-in wall-clock phase profiling of the engine hot loop.

A :class:`PhaseProfiler` accumulates wall-clock time per named engine
phase.  It is *opt-in*: the engine takes ``profiler=None`` by default and
guards every measurement behind a single ``is not None`` check, so the
unprofiled hot loop pays nothing beyond that branch.  When attached, the
engine times these phases per round:

- ``deliver`` -- handing receptions to ``on_receive`` handlers (the
  end-of-round flush, and the per-transmission receiver loops in
  immediate-delivery mode -- where ``deliver`` time is a *subset* of
  ``transmit`` time, since delivery cascades inside the slot loop);
- ``round_hooks`` -- the ``on_round`` process hooks;
- ``transmit`` -- the TDMA slot loop draining outboxes;
- ``round_end_hooks`` -- the ``on_round_end`` process hooks;
- ``observe`` -- commit sweeps and observer round bookkeeping.

Profiling numbers are for *humans*; they never feed back into the
simulation and never appear in deterministic exports (wall-clock time in
a golden trace would break byte-reproducibility by construction).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List


class PhaseProfiler:
    """Accumulates wall-clock totals and call counts per phase.

    Usage (the engine does exactly this)::

        prof = PhaseProfiler()
        t0 = prof.begin()
        ...hot code...
        prof.end("transmit", t0)

    ``begin`` / ``end`` are plain function calls around a monotonic
    clock -- no context-manager allocation on the hot path.  Inject a
    fake ``clock`` in tests for deterministic totals.
    """

    __slots__ = ("totals", "counts", "_clock")

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._clock = clock

    def begin(self) -> float:
        """A timestamp token to pass back to :meth:`end`."""
        return self._clock()

    def end(self, phase: str, started: float) -> None:
        """Charge the time since ``started`` to ``phase``."""
        self.totals[phase] = (
            self.totals.get(phase, 0.0) + self._clock() - started
        )
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        """Accumulated seconds for ``phase`` (0.0 if never timed)."""
        return self.totals.get(phase, 0.0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": total, "calls": n}}``, phase-sorted."""
        return {
            phase: {
                "seconds": round(self.totals[phase], 6),
                "calls": self.counts.get(phase, 0),
            }
            for phase in sorted(self.totals)
        }

    def rows(self) -> List[Dict[str, Any]]:
        """Report-table rows: phase, seconds, calls, share of the total.

        ``share`` is each phase's fraction of the summed phase time
        (phases overlap only where documented -- ``deliver`` nests
        inside ``transmit`` in immediate-delivery mode).
        """
        grand = sum(self.totals.values()) or 1.0
        return [
            {
                "phase": phase,
                "seconds": round(self.totals[phase], 6),
                "calls": self.counts.get(phase, 0),
                "share": round(self.totals[phase] / grand, 4),
            }
            for phase in sorted(self.totals)
        ]
