"""Deterministic export: JSONL event streams and metrics summaries.

Two stable, schema-versioned renderings of an observed run:

- :class:`JsonlRecorder` is an observer that turns the engine's event
  stream into one canonical-JSON object per line.  Given the same seed,
  two runs emit byte-identical JSONL -- events carry only simulation
  facts (rounds, slots, sequence numbers, coordinates, payload reprs),
  never wall-clock time or ids;
- :func:`metrics_summary` folds a :class:`~repro.obs.metrics.RunMetrics`
  into a plain-data summary whose JSON form round-trips exactly (lists,
  string-keyed dicts, scalars only), so summaries can cross the work-unit
  cache boundary and still compare equal.

:func:`validate_event` / :func:`validate_jsonl` check event objects
against the schema (used by tests and the CI trace smoke job).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.geometry.coords import Coord
from repro.radio.messages import Envelope
from repro.obs.metrics import EngineObserver, RunMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.engine import Engine, SimulationResult

#: Version stamped into every JSONL header and metrics summary.  Bump on
#: any incompatible change to event fields or summary keys.
OBS_SCHEMA_VERSION = 1

#: required keys per event kind (beyond ``kind`` itself)
_EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "run_start": ("schema", "nodes", "topology"),
    "round_start": ("round",),
    "tx": ("round", "slot", "seq", "sender", "fanout", "payload"),
    "deliver": ("round", "slot", "seq", "sender", "node"),
    "commit": ("round", "node", "value"),
    "crash": ("round", "node"),
    "round_end": ("round", "transmissions"),
    "run_end": ("rounds", "transmissions", "quiescent"),
}


def canonical_json(obj: Any) -> str:
    """Canonical single-line JSON: sorted keys, fixed separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _coord(node: Coord) -> List[int]:
    """A coordinate as a JSON-ready ``[x, y]`` pair."""
    return [int(node[0]), int(node[1])]


class JsonlRecorder(EngineObserver):
    """Observer that records the run as one JSON object per event.

    Parameters
    ----------
    record_deliveries:
        Also emit one ``deliver`` event per actual reception.  Off by
        default: every transmission fans out to a whole neighborhood, so
        delivery events dominate trace size by an order of magnitude.

    Payloads and committed values are rendered with ``repr`` -- payload
    types are arbitrary protocol objects, and reprs of the frozen payload
    dataclasses are deterministic.
    """

    def __init__(self, record_deliveries: bool = False) -> None:
        self.record_deliveries = record_deliveries
        self.events: List[Dict[str, Any]] = []
        self._tx_this_round = 0

    # -- observer hooks --------------------------------------------------

    def on_run_start(self, engine: "Engine") -> None:
        """Emit the schema-stamped header event."""
        self.events.append(
            {
                "kind": "run_start",
                "schema": OBS_SCHEMA_VERSION,
                "nodes": len(engine.processes),
                "topology": repr(engine.topology),
            }
        )

    def on_round_start(self, round_: int) -> None:
        """Emit a round marker."""
        self._tx_this_round = 0
        self.events.append({"kind": "round_start", "round": round_})

    def on_transmission(
        self, env: Envelope, receivers: Tuple[Coord, ...]
    ) -> None:
        """Emit one ``tx`` event with the channel-level fanout."""
        self._tx_this_round += 1
        self.events.append(
            {
                "kind": "tx",
                "round": env.round,
                "slot": env.slot,
                "seq": env.seq,
                "sender": _coord(env.sender),
                "fanout": len(receivers),
                "payload": repr(env.payload),
            }
        )

    def on_delivery(self, node: Coord, env: Envelope) -> None:
        """Emit one ``deliver`` event (when enabled)."""
        if self.record_deliveries:
            self.events.append(
                {
                    "kind": "deliver",
                    "round": env.round,
                    "slot": env.slot,
                    "seq": env.seq,
                    "sender": _coord(env.sender),
                    "node": _coord(node),
                }
            )

    def on_commit(self, node: Coord, round_: int, value: Any) -> None:
        """Emit one ``commit`` event."""
        self.events.append(
            {
                "kind": "commit",
                "round": round_,
                "node": _coord(node),
                "value": repr(value),
            }
        )

    def on_crash(self, node: Coord, round_: int) -> None:
        """Emit one ``crash`` event."""
        self.events.append(
            {"kind": "crash", "round": round_, "node": _coord(node)}
        )

    def on_round_end(self, round_: int) -> None:
        """Emit a round-end marker carrying the round's tx count."""
        self.events.append(
            {
                "kind": "round_end",
                "round": round_,
                "transmissions": self._tx_this_round,
            }
        )

    def on_run_end(self, result: "SimulationResult") -> None:
        """Emit the trailer event with the run's final accounting."""
        self.events.append(
            {
                "kind": "run_end",
                "rounds": result.rounds,
                "transmissions": result.trace.transmissions,
                "quiescent": result.quiescent,
                "hit_round_limit": result.hit_round_limit,
                "hit_message_limit": result.hit_message_limit,
            }
        )

    # -- serialization ---------------------------------------------------

    def lines(self) -> List[str]:
        """Every event as one canonical-JSON line (no trailing newline)."""
        return [canonical_json(e) for e in self.events]

    def dumps(self) -> str:
        """The full JSONL document (newline-terminated)."""
        return "".join(line + "\n" for line in self.lines())

    def dump(self, path) -> int:
        """Write the JSONL document to ``path``; returns the line count."""
        text = self.dumps()
        pathlib.Path(path).write_text(text, encoding="utf-8")
        return len(self.events)


def validate_event(event: Mapping[str, Any]) -> None:
    """Check one parsed event object against the schema.

    Raises :class:`ValueError` naming the offending kind or key; returns
    ``None`` on success.
    """
    kind = event.get("kind")
    if kind not in _EVENT_SCHEMA:
        raise ValueError(f"unknown event kind {kind!r}")
    missing = [k for k in _EVENT_SCHEMA[kind] if k not in event]
    if missing:
        raise ValueError(f"event kind {kind!r} missing keys {missing}")


def validate_jsonl(text: str) -> int:
    """Parse and validate a JSONL document; returns the event count.

    The first line must be a ``run_start`` header carrying the supported
    schema version; every line must parse as JSON and validate against
    the per-kind schema.
    """
    count = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})")
        validate_event(event)
        if lineno == 1:
            if event.get("kind") != "run_start":
                raise ValueError("line 1: expected a run_start header")
            if event.get("schema") != OBS_SCHEMA_VERSION:
                raise ValueError(
                    f"line 1: schema {event.get('schema')!r} unsupported "
                    f"(expected {OBS_SCHEMA_VERSION})"
                )
        count += 1
    if count == 0:
        raise ValueError("empty JSONL document")
    return count


def _pairs(mapping: Mapping[int, Any]) -> List[List[Any]]:
    """An int-keyed mapping as a round-sorted ``[[key, value], ...]``."""
    return [[int(k), mapping[k]] for k in sorted(mapping)]


def _node_count_stats(by_node: Mapping[Coord, int]) -> Dict[str, Any]:
    """Aggregate a per-node counter into stable scalar statistics."""
    if not by_node:
        return {"nodes": 0, "total": 0, "max": 0, "mean": 0.0, "argmax": None}
    peak = max(by_node.values())
    busiest = min(n for n in by_node if by_node[n] == peak)
    total = sum(by_node.values())
    return {
        "nodes": len(by_node),
        "total": total,
        "max": peak,
        "mean": round(total / len(by_node), 6),
        "argmax": _coord(busiest),
    }


def metrics_summary(metrics: RunMetrics) -> Dict[str, Any]:
    """Fold a :class:`RunMetrics` into the stable, JSON-exact summary.

    Every value is a scalar, a string-keyed dict, or a list -- the shapes
    JSON round-trips without loss -- so a summary read back from the
    work-unit cache compares equal to one computed in process.
    """
    hist = metrics.commit_latency_histogram()
    commit_rounds = sorted(metrics.commit_round.values())
    latency: Dict[str, Any] = {
        "histogram": _pairs(hist),
        "min": commit_rounds[0] if commit_rounds else None,
        "max": commit_rounds[-1] if commit_rounds else None,
        "mean": (
            round(sum(commit_rounds) / len(commit_rounds), 6)
            if commit_rounds
            else None
        ),
    }
    return {
        "schema": OBS_SCHEMA_VERSION,
        "source": _coord(metrics.source) if metrics.source is not None else None,
        "rounds": metrics.rounds,
        "transmissions": metrics.transmissions,
        "deliveries": metrics.deliveries,
        "commits": metrics.commits,
        "crashes": metrics.crashes,
        "quiescent": metrics.quiescent,
        "tx_by_round": _pairs(metrics.tx_by_round),
        "deliveries_by_round": _pairs(metrics.deliveries_by_round),
        "commits_by_round": _pairs(metrics.commits_by_round),
        "commit_latency": latency,
        "commit_wavefront_by_round": [
            [r, float(v)] for r, v in _pairs(metrics.commit_wavefront_by_round)
        ],
        "delivery_wavefront_by_round": [
            [r, float(v)]
            for r, v in _pairs(metrics.delivery_wavefront_by_round)
        ],
        "tx_per_node": _node_count_stats(metrics.tx_by_node),
        "rx_per_node": _node_count_stats(metrics.rx_by_node),
    }
