"""Observer hooks and the :class:`RunMetrics` collector.

The engine emits a small, fixed vocabulary of events while it runs; an
:class:`EngineObserver` subscribes to any subset by overriding the
corresponding hooks.  The protocol is strictly one-way -- observers
receive engine state but the engine never reads an observer -- so
attaching observers cannot change what a run computes, only what is
recorded about it.

Observer callbacks receive the *live* :class:`~repro.radio.messages.
Envelope` objects that every receiver shares; like ``on_receive``
handlers they must treat them as read-only (the ``no-received-mutation``
lint rule enforces this for ``on_transmission`` / ``on_delivery``
callbacks too).

:class:`RunMetrics` is the standard collector: per-round transmission /
delivery / commit counters, per-node message complexity, a
commit-latency histogram, and the broadcast wave-front radius per round
measured from a designated source node.  Its :meth:`RunMetrics.summary`
is rendered into a stable JSON form by
:func:`repro.obs.export.metrics_summary`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.geometry.coords import Coord
from repro.radio.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.engine import Engine, SimulationResult


class EngineObserver:
    """Base class for engine observers; every hook is a no-op.

    Subclasses override the hooks they care about.  Hooks fire in a
    fixed order within a run: ``on_run_start``, then per round
    ``on_round_start`` / ``on_transmission`` / ``on_delivery`` (one per
    actual reception) / ``on_crash`` / ``on_commit`` / ``on_round_end``,
    and finally ``on_run_end``.  Commits made inside ``on_start`` hooks
    (before round 0) are reported with ``round_ == -1``.

    Observers must not mutate anything they are handed -- envelopes and
    payloads are shared by reference with every receiver.
    """

    def on_run_start(self, engine: "Engine") -> None:
        """Called once, before any process ``on_start`` hook runs.

        ``engine`` gives read access to the topology, schedule, and
        crash map; observers typically snapshot what they need (e.g.
        a distance function) and must not hold mutable references.
        """

    def on_round_start(self, round_: int) -> None:
        """Called at the top of every round (TDMA frame)."""

    def on_transmission(
        self, env: Envelope, receivers: Tuple[Coord, ...]
    ) -> None:
        """Called for every transmission put on the air.

        ``receivers`` is the transmitter's full neighborhood -- the
        channel-level fanout, before crash / jamming / loss filtering.
        """

    def on_delivery(self, node: Coord, env: Envelope) -> None:
        """Called for every *actual* reception of ``env`` by ``node``.

        Unlike the fanout reported by :meth:`on_transmission`, this
        fires only for receivers that really heard the transmission
        (live, unjammed, not lost).
        """

    def on_commit(self, node: Coord, round_: int, value: Any) -> None:
        """Called when ``node``'s process first reports a committed value.

        ``round_`` is the round whose end first observed the commit
        (``-1`` for commits made during ``on_start``).
        """

    def on_crash(self, node: Coord, round_: int) -> None:
        """Called once per crashing node when its crash takes effect."""

    def on_round_end(self, round_: int) -> None:
        """Called after a round's slots fired (also for a round truncated
        by the message budget -- partial rounds count)."""

    def on_run_end(self, result: "SimulationResult") -> None:
        """Called once with the finished result, before ``run`` returns."""


class RunMetrics(EngineObserver):
    """Structured per-run metrics, collected via the observer hooks.

    Parameters
    ----------
    source:
        The broadcast source the wave-front radius is measured from.
        ``None`` disables wave-front tracking (all other metrics still
        collect).

    Attributes (raw, for programmatic access; see
    :func:`repro.obs.export.metrics_summary` for the stable JSON form)
    ----------------------------------------------------------------
    transmissions / deliveries / commits / crashes:
        Run totals.  ``deliveries`` counts actual receptions (post
        crash/jam/loss filtering), which is why it can undercut the
        trace's channel-fanout delivery count on faulty runs.
    tx_by_round / deliveries_by_round / commits_by_round:
        Per-round counters (round index -> count).
    tx_by_node / rx_by_node:
        Per-node message complexity (coordinate -> count).
    commit_round:
        node -> round at which its commit was first observed (-1 for
        ``on_start`` commits).
    commit_wavefront_by_round / delivery_wavefront_by_round:
        round -> cumulative max metric distance from ``source`` of any
        committed (resp. reached) node, recorded at each round end.
    rounds:
        Rounds accounted so far (budget-truncated partial rounds
        included, matching the engine's reconciled accounting).
    quiescent:
        Copied from the result at run end (``None`` while running).
    """

    def __init__(self, source: Optional[Coord] = None) -> None:
        self.source = source
        self.transmissions = 0
        self.deliveries = 0
        self.commits = 0
        self.crashes = 0
        self.rounds = 0
        self.quiescent: Optional[bool] = None
        self.tx_by_round: Dict[int, int] = {}
        self.deliveries_by_round: Dict[int, int] = {}
        self.commits_by_round: Dict[int, int] = {}
        self.tx_by_node: Dict[Coord, int] = {}
        self.rx_by_node: Dict[Coord, int] = {}
        self.commit_round: Dict[Coord, int] = {}
        self.commit_wavefront_by_round: Dict[int, float] = {}
        self.delivery_wavefront_by_round: Dict[int, float] = {}
        self._distance = None  # bound from the topology at run start
        self._commit_radius = 0.0
        self._delivery_radius = 0.0

    # -- observer hooks --------------------------------------------------

    def on_run_start(self, engine: "Engine") -> None:
        """Bind the topology's metric distance for wave-front tracking."""
        if self.source is not None:
            self.source = engine.topology.canonical(self.source)
            self._distance = engine.topology.distance

    def on_transmission(
        self, env: Envelope, receivers: Tuple[Coord, ...]
    ) -> None:
        """Count one transmission against its round and its sender."""
        self.transmissions += 1
        self.tx_by_round[env.round] = self.tx_by_round.get(env.round, 0) + 1
        self.tx_by_node[env.sender] = self.tx_by_node.get(env.sender, 0) + 1

    def on_delivery(self, node: Coord, env: Envelope) -> None:
        """Count one actual reception; advance the delivery wave-front."""
        self.deliveries += 1
        self.deliveries_by_round[env.round] = (
            self.deliveries_by_round.get(env.round, 0) + 1
        )
        self.rx_by_node[node] = self.rx_by_node.get(node, 0) + 1
        if self._distance is not None:
            d = self._distance(self.source, node)
            if d > self._delivery_radius:
                self._delivery_radius = d

    def on_commit(self, node: Coord, round_: int, value: Any) -> None:
        """Record the commit round; advance the commit wave-front."""
        self.commits += 1
        self.commit_round[node] = round_
        self.commits_by_round[round_] = (
            self.commits_by_round.get(round_, 0) + 1
        )
        if self._distance is not None:
            d = self._distance(self.source, node)
            if d > self._commit_radius:
                self._commit_radius = d

    def on_crash(self, node: Coord, round_: int) -> None:
        """Count one crash becoming effective."""
        self.crashes += 1

    def on_round_end(self, round_: int) -> None:
        """Snapshot the cumulative wave-front radii for this round."""
        self.rounds = max(self.rounds, round_ + 1)
        if self._distance is not None:
            self.commit_wavefront_by_round[round_] = self._commit_radius
            self.delivery_wavefront_by_round[round_] = self._delivery_radius

    def on_run_end(self, result: "SimulationResult") -> None:
        """Copy end-of-run facts the counters cannot see."""
        self.quiescent = result.quiescent
        self.rounds = max(self.rounds, result.rounds)

    # -- bulk ingestion (fastpath backend) -------------------------------

    def ingest_run(
        self,
        *,
        source: Optional[Coord],
        transmissions: int,
        deliveries: int,
        crashes: int,
        rounds: int,
        quiescent: Optional[bool],
        tx_by_round: Dict[int, int],
        deliveries_by_round: Dict[int, int],
        commits_by_round: Dict[int, int],
        tx_by_node: Dict[Coord, int],
        rx_by_node: Dict[Coord, int],
        commit_round: Dict[Coord, int],
        commit_wavefront_by_round: Dict[int, float],
        delivery_wavefront_by_round: Dict[int, float],
    ) -> None:
        """Load a whole run's metrics at once, instead of hook by hook.

        The fastpath engine (:mod:`repro.radio.fastpath`) accumulates
        the same counters the observer hooks would have built and hands
        them over here; every argument is plain Python data (no numpy
        scalars) with exactly the shapes the hooks produce, so
        :func:`repro.obs.export.metrics_summary` of an ingested run is
        byte-identical to the reference engine's hook-driven run.
        ``source`` must already be canonical (the fastpath runner
        canonicalizes it, mirroring :meth:`on_run_start`).
        """
        self.source = source
        self.transmissions = transmissions
        self.deliveries = deliveries
        self.commits = len(commit_round)
        self.crashes = crashes
        self.rounds = rounds
        self.quiescent = quiescent
        self.tx_by_round = tx_by_round
        self.deliveries_by_round = deliveries_by_round
        self.commits_by_round = commits_by_round
        self.tx_by_node = tx_by_node
        self.rx_by_node = rx_by_node
        self.commit_round = commit_round
        self.commit_wavefront_by_round = commit_wavefront_by_round
        self.delivery_wavefront_by_round = delivery_wavefront_by_round
        if commit_wavefront_by_round:
            self._commit_radius = max(commit_wavefront_by_round.values())
        if delivery_wavefront_by_round:
            self._delivery_radius = max(
                delivery_wavefront_by_round.values()
            )

    # -- derived views ---------------------------------------------------

    def commit_latency_histogram(self) -> Dict[int, int]:
        """Commit round -> number of nodes whose commit was observed then."""
        hist: Dict[int, int] = {}
        for rnd in sorted(self.commit_round.values()):
            hist[rnd] = hist.get(rnd, 0) + 1
        return hist

    def summary(self) -> Dict[str, Any]:
        """The stable JSON-ready summary (see
        :func:`repro.obs.export.metrics_summary`)."""
        from repro.obs.export import metrics_summary

        return metrics_summary(self)
