"""Prometheus text exposition: deterministic rendering and a strict
parser.

The ``repro serve`` ``/metrics`` endpoint speaks the Prometheus text
format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers followed by
``name{label="value"} 1.0`` samples.  This module is the single place
that format lives:

- :func:`render_metrics` turns :class:`MetricFamily` objects into
  exposition text.  Output is deterministic -- families render in the
  order given, samples in the order added, floats via :func:`repr` --
  so two scrapes of the same state are byte-identical (same property
  the rest of the repo holds for result files).
- :func:`parse_metrics` / :func:`validate_metrics_text` read the format
  back and *enforce* it: metric-name and label grammar, declared types,
  samples matching their family, finite-or-sentinel values.  CI's
  ``serve-smoke`` job round-trips a live scrape through the parser, so
  a malformed exposition fails the build rather than a dashboard.

Only counters and gauges are emitted today; the grammar accepts the
other official types so foreign expositions still validate.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Metric types legal in a ``# TYPE`` line (exposition format 0.0.4).
METRIC_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


class PromFormatError(ValueError):
    """The text is not valid Prometheus exposition format."""


@dataclass
class Sample:
    """One sample line: a (possibly labeled) value of a family."""

    #: sample metric name (equals the family name for counters/gauges)
    name: str
    #: label key/value pairs, rendered in insertion order
    labels: Dict[str, str] = field(default_factory=dict)
    #: the observed value
    value: float = 0.0


@dataclass
class MetricFamily:
    """One metric family: HELP + TYPE header and its sample lines."""

    #: family name (``repro_`` prefix by convention here)
    name: str
    #: one of :data:`METRIC_TYPES`
    mtype: str
    #: free-text HELP line (newlines/backslashes are escaped on render)
    help: str
    #: sample lines, rendered in order
    samples: List[Sample] = field(default_factory=list)

    def add(
        self,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        name: Optional[str] = None,
    ) -> "MetricFamily":
        """Append one sample (chainable); ``name`` defaults to the
        family name."""
        self.samples.append(
            Sample(
                name=name or self.name,
                labels=dict(labels or {}),
                value=float(value),
            )
        )
        return self


def _escape_help(text: str) -> str:
    """Escape backslashes and newlines for a HELP line."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition grammar."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value (+Inf/-Inf/NaN sentinels, repr floats,
    bare ints)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_metrics(families: List[MetricFamily]) -> str:
    """Render families to exposition text (trailing newline included).

    Raises :class:`PromFormatError` on an invalid family/label name or
    metric type, so a typo fails at render time rather than at scrape
    time.
    """
    lines: List[str] = []
    for fam in families:
        if not _NAME_RE.match(fam.name):
            raise PromFormatError(f"invalid metric name {fam.name!r}")
        if fam.mtype not in METRIC_TYPES:
            raise PromFormatError(
                f"invalid metric type {fam.mtype!r} for {fam.name}"
            )
        lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.mtype}")
        for sample in fam.samples:
            if not _NAME_RE.match(sample.name):
                raise PromFormatError(
                    f"invalid sample name {sample.name!r}"
                )
            label_text = ""
            if sample.labels:
                for key in sample.labels:
                    if not _LABEL_RE.match(key):
                        raise PromFormatError(f"invalid label name {key!r}")
                pairs = ",".join(
                    f'{k}="{_escape_label(str(v))}"'
                    for k, v in sample.labels.items()
                )
                label_text = "{" + pairs + "}"
            lines.append(
                f"{sample.name}{label_text} {_format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(token: str, context: str) -> float:
    """Parse a sample value token (accepts the Inf/NaN sentinels)."""
    try:
        return float(token)
    except ValueError:
        raise PromFormatError(
            f"{context}: unparseable value {token!r}"
        ) from None


def _parse_labels(raw: str, context: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block."""
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR_RE.match(raw, pos)
        if not match:
            raise PromFormatError(
                f"{context}: malformed labels {raw!r}"
            )
        value = match.group("value")
        value = (
            value.replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        labels[match.group("key")] = value
        pos = match.end()
    return labels


def parse_metrics(text: str) -> Dict[str, MetricFamily]:
    """Parse exposition text into families keyed by name.

    Strict: raises :class:`PromFormatError` on malformed HELP/TYPE
    lines, bad names, duplicate TYPE declarations, unparseable values,
    or samples whose name does not belong to a declared family (a
    ``_bucket``/``_sum``/``_count`` suffix of a histogram/summary
    family counts as belonging).  Undeclared bare samples become
    ``untyped`` families, as the format allows.
    """
    families: Dict[str, MetricFamily] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        context = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _NAME_RE.match(name):
                raise PromFormatError(f"{context}: bad HELP name {name!r}")
            fam = families.setdefault(
                name, MetricFamily(name=name, mtype="untyped", help="")
            )
            fam.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise PromFormatError(f"{context}: malformed TYPE line")
            name, mtype = parts
            if not _NAME_RE.match(name):
                raise PromFormatError(f"{context}: bad TYPE name {name!r}")
            if mtype not in METRIC_TYPES:
                raise PromFormatError(
                    f"{context}: unknown metric type {mtype!r}"
                )
            fam = families.setdefault(
                name, MetricFamily(name=name, mtype="untyped", help="")
            )
            if fam.mtype != "untyped" and fam.samples:
                raise PromFormatError(
                    f"{context}: duplicate TYPE for {name}"
                )
            fam.mtype = mtype
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line.strip())
        if not match:
            raise PromFormatError(f"{context}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", context)
        value = _parse_value(match.group("value"), context)
        fam = _family_for_sample(families, name)
        if fam is None:
            fam = families.setdefault(
                name, MetricFamily(name=name, mtype="untyped", help="")
            )
        fam.samples.append(Sample(name=name, labels=labels, value=value))
    return families


def _family_for_sample(
    families: Dict[str, MetricFamily], sample_name: str
) -> Optional[MetricFamily]:
    """Find the declared family a sample line belongs to, if any."""
    if sample_name in families:
        return families[sample_name]
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            fam = families.get(base)
            if fam is not None and fam.mtype in ("histogram", "summary"):
                return fam
    return None


def validate_metrics_text(text: str) -> Tuple[int, int]:
    """Validate exposition text; returns ``(families, samples)`` counts.

    The CI round-trip check: raises :class:`PromFormatError` with the
    offending line on any violation, additionally requiring at least
    one family and every declared family to carry at least one sample.
    """
    families = parse_metrics(text)
    if not families:
        raise PromFormatError("no metric families found")
    for fam in families.values():
        if not fam.samples:
            raise PromFormatError(f"family {fam.name} has no samples")
    return len(families), sum(len(f.samples) for f in families.values())
