"""``repro.obs``: structured observability for simulation runs.

The engine's contract is deterministic execution; this package makes the
execution *legible* without perturbing it.  Three pieces:

- :mod:`repro.obs.metrics` -- the :class:`EngineObserver` hook protocol
  and :class:`RunMetrics`, a collector of per-round / per-node counters,
  commit-latency histograms, and broadcast wave-front radii;
- :mod:`repro.obs.export` -- deterministic JSONL event export
  (:class:`JsonlRecorder`) and the schema-versioned
  :func:`metrics_summary` (byte-reproducible given the same seed);
- :mod:`repro.obs.profile` -- :class:`PhaseProfiler`, opt-in wall-clock
  phase accounting of the engine hot loop;
- :mod:`repro.obs.prom` -- Prometheus text exposition (deterministic
  rendering + strict parsing) backing the ``repro serve`` ``/metrics``
  endpoint.

Observers are pure listeners: the engine emits events at its
transmission / delivery / commit / crash points and never reads anything
back, so an observed run and an unobserved run execute identically (the
golden-trace suite pins this).  When no observers are attached the
engine allocates no collectors and the hot loop pays only a tuple
truthiness check.

See ``docs/OBSERVABILITY.md`` for the observer API, the JSONL schema,
and profiling usage; ``repro trace`` is the CLI entry point.
"""

from repro.obs.export import (
    OBS_SCHEMA_VERSION,
    JsonlRecorder,
    canonical_json,
    metrics_summary,
    validate_event,
    validate_jsonl,
)
from repro.obs.metrics import EngineObserver, RunMetrics
from repro.obs.profile import PhaseProfiler
from repro.obs.prom import (
    MetricFamily,
    PromFormatError,
    Sample,
    parse_metrics,
    render_metrics,
    validate_metrics_text,
)

__all__ = [
    "OBS_SCHEMA_VERSION",
    "EngineObserver",
    "JsonlRecorder",
    "MetricFamily",
    "PhaseProfiler",
    "PromFormatError",
    "RunMetrics",
    "Sample",
    "canonical_json",
    "metrics_summary",
    "parse_metrics",
    "render_metrics",
    "validate_event",
    "validate_jsonl",
]
