"""Mechanical verification of constructive witnesses.

A :class:`~repro.core.paths.PathFamily` claims four properties; this
module checks each one against the metric, raising
:class:`~repro.errors.WitnessError` with a precise diagnosis on failure:

1. **endpoints**: every path runs from ``n`` to ``p``;
2. **adjacency**: consecutive path nodes are within distance ``r``;
3. **internal disjointness**: no relay appears on two paths, and no relay
   equals an endpoint (the paper's "node-disjoint paths" share only their
   endpoints);
4. **containment**: every node of every path -- endpoints included -- lies
   within distance ``r`` of the family's declared neighborhood center.

The verification is the executable form of Theorem 3's case analysis: if
:func:`verify_family` passes for every node of region M (and the counts
match ``r(2r+1)``), the inductive step's connectivity claim holds for that
instance.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.paths import PathFamily
from repro.errors import WitnessError
from repro.geometry.coords import Coord
from repro.geometry.metrics import get_metric


def verify_family(
    family: PathFamily,
    r: int,
    metric="linf",
    expected_count: Optional[int] = None,
) -> None:
    """Verify one path family; raise :class:`WitnessError` on any defect."""
    m = get_metric(metric)
    if expected_count is not None and family.count != expected_count:
        raise WitnessError(
            f"family {family.n}->{family.p} has {family.count} paths, "
            f"expected {expected_count}"
        )
    seen_relays: Set[Coord] = set()
    endpoints = {family.n, family.p}
    for idx, path in enumerate(family.paths):
        if len(path) < 2:
            raise WitnessError(f"path #{idx} has fewer than two nodes: {path}")
        if path[0] != family.n or path[-1] != family.p:
            raise WitnessError(
                f"path #{idx} endpoints {path[0]}..{path[-1]} do not match "
                f"family endpoints {family.n}..{family.p}"
            )
        for u, v in zip(path, path[1:]):
            if u == v:
                raise WitnessError(f"path #{idx} repeats node {u}")
            if not m.within(u, v, r):
                raise WitnessError(
                    f"path #{idx} hop {u}->{v} exceeds radius {r} "
                    f"({m.name} distance {m.distance(u, v)})"
                )
        for relay in path[1:-1]:
            if relay in endpoints:
                raise WitnessError(
                    f"path #{idx} uses endpoint {relay} as a relay"
                )
            if relay in seen_relays:
                raise WitnessError(
                    f"relay {relay} appears on two paths (family not "
                    "node-disjoint)"
                )
            seen_relays.add(relay)
        if family.center is not None:
            for node in path:
                if not m.within(node, family.center, r):
                    raise WitnessError(
                        f"path #{idx} node {node} lies outside the claimed "
                        f"neighborhood nbd({family.center}, r={r})"
                    )


def verify_connectivity_map(
    families: Dict[Coord, PathFamily],
    r: int,
    metric="linf",
    required_nodes: Optional[int] = None,
    required_paths_each: Optional[int] = None,
) -> None:
    """Verify a whole node -> family map (a Theorem 3 instance).

    ``required_nodes`` checks the map's breadth (``r(2r+1)`` for the
    inductive step); ``required_paths_each`` checks each *indirect*
    family's path count (direct families always have exactly one path --
    hearing the node itself needs no corroboration).
    """
    if required_nodes is not None and len(families) < required_nodes:
        raise WitnessError(
            f"connectivity map covers {len(families)} nodes, "
            f"needs {required_nodes}"
        )
    for node, family in families.items():
        if family.n != node:
            raise WitnessError(
                f"map key {node} does not match family endpoint {family.n}"
            )
        expected = (
            None
            if family.kind == "direct"
            else required_paths_each
        )
        verify_family(family, r, metric=metric, expected_count=expected)


def family_relay_population(family: PathFamily) -> Set[Coord]:
    """All relay nodes a family uses (diagnostics / earmarking)."""
    return {
        relay for path in family.paths for relay in path[1:-1]
    }
