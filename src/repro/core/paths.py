"""Explicit node-disjoint path constructions (Figs. 4-7).

These functions *materialize* the proof of Theorem 3: for every node ``N``
whose commitment the corner frontier node ``P`` must reliably determine,
they emit the full family of ``r(2r+1)`` node-disjoint relay paths the
paper constructs, together with the single neighborhood center containing
them.  :mod:`repro.core.witnesses` then verifies every claimed property
mechanically, and the "earmarked messages" protocol optimization reads the
exact reports to watch for straight off these families.

Path representation: a tuple of lattice points ``(N, relay..., P)`` --
zero to three relays, matching the protocol's HEARD depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.regions import (
    corner_P,
    region_R,
    region_S1,
    region_S2,
    region_U,
    table1_S1_regions,
    table1_U_regions,
)
from repro.geometry.coords import Coord

Path = Tuple[Coord, ...]


@dataclass(frozen=True)
class PathFamily:
    """A family of relay paths from ``n`` to ``p`` plus the neighborhood
    center that the proof claims contains every path entirely.

    ``direct`` families (N adjacent to P, Fig. 2's region R) have a single
    two-node path and no containment obligation beyond adjacency; their
    ``center`` is ``None``.
    """

    n: Coord
    p: Coord
    paths: Tuple[Path, ...]
    center: Optional[Coord]
    kind: str  # "direct" | "U" | "S1" | "S2"

    @property
    def count(self) -> int:
        """Number of paths in the family."""
        return len(self.paths)


def direct_family(n: Coord, p: Coord) -> PathFamily:
    """The trivial family for a directly-heard node (region R)."""
    return PathFamily(n=n, p=p, paths=((n, p),), center=None, kind="direct")


def u_node_paths(a: int, b: int, r: int, p: int, q: int) -> PathFamily:
    """Fig. 5's construction: ``r(2r+1)`` node-disjoint paths between
    ``N = (a+p, b+q)`` and ``P = (a-r, b+r+1)``, all inside
    ``nbd((a, b+r+1))``.

    - ``N -> A -> P`` (one relay) for every node of region A;
    - ``N -> B1 -> B2 -> P`` pairing ``(x, y) <-> (x - r, y)``;
    - ``N -> C1 -> C2 -> P`` pairing ``(x, y) <-> (x - r, y + r)``;
    - ``N -> D1 -> D2 -> D3 -> P`` with an arbitrary D1/D2 bijection (every
      cross pair is adjacent) and ``(x, y) <-> (x - r, y)`` into D3.
    """
    regions = table1_U_regions(a, b, r, p, q)
    n: Coord = (a + p, b + q)
    pt: Coord = corner_P(a, b, r)
    paths: List[Path] = []
    for node in regions["A"]:
        paths.append((n, node, pt))
    for x, y in regions["B1"]:
        paths.append((n, (x, y), (x - r, y), pt))
    for x, y in regions["C1"]:
        paths.append((n, (x, y), (x - r, y + r), pt))
    d1 = regions["D1"].points()
    d2 = regions["D2"].points()
    if len(d1) != len(d2):  # pragma: no cover - Table I guarantees this
        raise AssertionError(
            f"D1/D2 cardinality mismatch: {len(d1)} vs {len(d2)}"
        )
    for (x1, y1), (x2, y2) in zip(d1, d2):
        paths.append((n, (x1, y1), (x2, y2), (x2 - r, y2), pt))
    return PathFamily(
        n=n, p=pt, paths=tuple(paths), center=(a, b + r + 1), kind="U"
    )


def s1_node_paths(a: int, b: int, r: int, p: int) -> PathFamily:
    """Fig. 6's construction: ``r(2r+1)`` node-disjoint paths between
    ``N = (a-r, b-p)`` and ``P``, all inside ``nbd((a-r, b+1))``.

    - ``N -> J -> P`` for every node of region J (common neighbors);
    - ``N -> K1 -> K2 -> P`` pairing ``(x, y) <-> (x, y + r)``.
    """
    regions = table1_S1_regions(a, b, r, p)
    n: Coord = (a - r, b - p)
    pt: Coord = corner_P(a, b, r)
    paths: List[Path] = []
    for node in regions["J"]:
        paths.append((n, node, pt))
    for x, y in regions["K1"]:
        paths.append((n, (x, y), (x, y + r), pt))
    return PathFamily(
        n=n, p=pt, paths=tuple(paths), center=(a - r, b + 1), kind="S1"
    )


def _reflect_about_antidiagonal(pivot: Coord) -> Callable[[Coord], Coord]:
    """The axial symmetry about OO' (Fig. 3): reflection across the
    anti-diagonal line through ``pivot`` (displacement ``(dx, dy) ->
    (-dy, -dx)``).  It fixes P and maps region U onto region S2."""
    px, py = pivot

    def reflect(z: Coord) -> Coord:
        dx, dy = z[0] - px, z[1] - py
        return (px - dy, py - dx)

    return reflect


def s2_node_paths(a: int, b: int, r: int, qq: int, pp: int) -> PathFamily:
    """Paths for the S2 node ``N = (a - qq, b - pp)``
    (``r-1 >= qq > pp >= 0``), obtained -- exactly as the paper argues --
    by reflecting the U-node construction across the anti-diagonal through
    P.

    The S2 node ``(a-qq, b-pp)`` has the same position relative to P as
    the U node ``(a + (pp+1), b + (qq+1))``; the reflection maps that
    node's entire path family (paths and containing neighborhood alike)
    onto a family for the S2 node, and lattice symmetry preserves
    adjacency, disjointness and containment.
    """
    if not (r - 1 >= qq > pp >= 0):
        raise ValueError(
            f"S2 parameters must satisfy r-1 >= q > p >= 0, got "
            f"q={qq}, p={pp}, r={r}"
        )
    base = u_node_paths(a, b, r, pp + 1, qq + 1)
    reflect = _reflect_about_antidiagonal(corner_P(a, b, r))
    n_expected: Coord = (a - qq, b - pp)
    n_mapped = reflect(base.n)
    if n_mapped != n_expected:  # pragma: no cover - algebra guarantees this
        raise AssertionError(
            f"reflection maps {base.n} to {n_mapped}, expected {n_expected}"
        )
    return PathFamily(
        n=n_expected,
        p=base.p,
        paths=tuple(
            tuple(reflect(z) for z in path) for path in base.paths
        ),
        center=reflect(base.center) if base.center else None,
        kind="S2",
    )


def corner_connectivity(a: int, b: int, r: int) -> Dict[Coord, PathFamily]:
    """The complete Theorem 3 witness for the corner node P: one
    :class:`PathFamily` per node of region M (``r(2r+1)`` nodes total).

    Region R nodes get direct families; U, S1 and S2 nodes get their
    constructions.  Keys are the region-M node coordinates.
    """
    pt = corner_P(a, b, r)
    families: Dict[Coord, PathFamily] = {}
    for node in region_R(a, b, r):
        families[node] = direct_family(node, pt)
    for node in region_U(a, b, r):
        p, q = node[0] - a, node[1] - b
        families[node] = u_node_paths(a, b, r, p, q)
    for node in region_S1(a, b, r):
        families[node] = s1_node_paths(a, b, r, b - node[1])
    for node in region_S2(a, b, r):
        families[node] = s2_node_paths(a, b, r, a - node[0], b - node[1])
    return families


def translated_family(family: PathFamily, dx: int, dy: int) -> PathFamily:
    """Translate a whole family (lattice translation preserves every
    property the witness checks)."""
    return PathFamily(
        n=(family.n[0] + dx, family.n[1] + dy),
        p=(family.p[0] + dx, family.p[1] + dy),
        paths=tuple(
            tuple((z[0] + dx, z[1] + dy) for z in path)
            for path in family.paths
        ),
        center=(
            (family.center[0] + dx, family.center[1] + dy)
            if family.center
            else None
        ),
        kind=family.kind,
    )


def arbitrary_p_connectivity(
    a: int, b: int, r: int, l: int
) -> Dict[Coord, PathFamily]:
    """Fig. 7: connectivity for the non-corner top-edge frontier node
    ``P_l = (a-r+l, b+r+1)`` with ``0 <= l <= r`` (all other positions
    follow by symmetry; see :func:`frontier_connectivity`).

    The construction translates the corner families right by ``l`` and
    keeps those whose endpoint still lies in ``nbd(a, b)``; the direct
    region R grows to ``r(r+l+1)`` nodes, over-compensating the
    ``l(l-1)/2`` U-nodes that slide out (the paper's counting).  The
    returned map covers at least ``r(2r+1)`` nodes of ``nbd(a, b)``.
    """
    if not 0 <= l <= r:
        raise ValueError(f"l must satisfy 0 <= l <= r, got {l}")
    pt: Coord = (a - r + l, b + r + 1)
    families: Dict[Coord, PathFamily] = {}
    # Direct block: everything in nbd(a,b) within distance r of P_l and
    # above the row y=b (the paper's enlarged region R).
    for x in range(a - r, min(a + l, a + r) + 1):
        for y in range(b + 1, b + r + 1):
            families[(x, y)] = direct_family((x, y), pt)
    # Translated indirect families, endpoint still inside nbd(a,b).
    base = corner_connectivity(a, b, r)
    for node, fam in base.items():
        if fam.kind == "direct":
            continue
        shifted = translated_family(fam, l, 0)
        nx, ny = shifted.n
        if abs(nx - a) <= r and abs(ny - b) <= r and shifted.n not in families:
            families[shifted.n] = shifted
    return families
