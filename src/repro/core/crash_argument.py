"""The staged crash-stop propagation argument of Theorem 5 (Figs. 9-10).

The proof of Theorem 5 walks the broadcast from ``nbd(a, b)`` to
``pnbd(a, b)`` in two stages:

- **Stage 1** (Fig. 9): split the committed square ABCD by its horizontal
  and vertical mid-axes.  Fewer than ``r(2r+1)`` faults total means one
  half of each split has at most ``r^2 + r/2 < r(r+1)`` faults; every node
  of the adjacent frontier segment (PQ above, VW left, plus the half
  segments RR' and TT') has ``r(r+1)`` neighbors inside that half, so each
  hears at least one correct committed node.
- **Stage 2** (Fig. 10): the remaining frontier segments (U'U, S'S).  If
  the shaded ``r x r`` quadrant next to such a segment has any correct
  node, done; otherwise those ``r^2 + r`` faults leave fewer than ``r^2``
  faults elsewhere in ``nbd((a, b-r-1))`` -- not enough to cut the
  segment's nodes from the committed half, via the chain of regions
  WH'T'T -> TT'J'J -> U'UK'K.

This module exposes the proof's *quantities* (so the tests can check each
inequality on arbitrary placements) and an executable inductive step
(:func:`crash_inductive_step_holds`) that performs the localized
reachability claim directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry.coords import Coord
from repro.geometry.regions import rect_from_extents
from repro.grid.neighborhoods import nbd, pnbd_frontier


@dataclass(frozen=True)
class StageOneSplit:
    """Fig. 9's four half-neighborhood fault tallies.

    The proof needs: ``min(top, bottom) < r(r+1)`` and
    ``min(left, right) < r(r+1)`` (both follow from the total being
    ``< r(2r+1)``; rows on the split axes are excluded from both halves,
    which only helps).
    """

    top: int
    bottom: int
    left: int
    right: int
    r: int

    @property
    def bound(self) -> int:
        """The per-half budget the argument needs: ``r(r+1)``."""
        return self.r * (self.r + 1)

    @property
    def horizontal_ok(self) -> bool:
        """One of the top/bottom halves is under the budget."""
        return min(self.top, self.bottom) < self.bound

    @property
    def vertical_ok(self) -> bool:
        """One of the left/right halves is under the budget."""
        return min(self.left, self.right) < self.bound


def stage_one_split(
    faulty: Iterable[Coord], a: int, b: int, r: int
) -> StageOneSplit:
    """Tally faults in the four open half-squares of ``nbd(a, b)``.

    Nodes exactly on a split axis belong to neither half ("these nodes do
    not play a role in the proof argument").
    """
    top = rect_from_extents(a - r, a + r, b + 1, b + r)
    bottom = rect_from_extents(a - r, a + r, b - r, b - 1)
    left = rect_from_extents(a - r, a - 1, b - r, b + r)
    right = rect_from_extents(a + 1, a + r, b - r, b + r)
    fs = set(faulty)
    return StageOneSplit(
        top=sum(1 for f in fs if f in top),
        bottom=sum(1 for f in fs if f in bottom),
        left=sum(1 for f in fs if f in left),
        right=sum(1 for f in fs if f in right),
        r=r,
    )


def frontier_segments(a: int, b: int, r: int) -> Dict[str, List[Coord]]:
    """The frontier of ``pnbd(a, b)`` split into the proof's named
    segments (Fig. 9): the full edges PQ/VW/RR'-style segments on each
    side.  Keys: ``top``, ``bottom``, ``left``, ``right``."""
    return {
        "top": [(x, b + r + 1) for x in range(a - r, a + r + 1)],
        "bottom": [(x, b - r - 1) for x in range(a - r, a + r + 1)],
        "left": [(a - r - 1, y) for y in range(b - r, b + r + 1)],
        "right": [(a + r + 1, y) for y in range(b - r, b + r + 1)],
    }


def neighbors_in_half(
    node: Coord, a: int, b: int, r: int, half: str
) -> List[Coord]:
    """A frontier node's neighbors inside a named half of ``nbd(a, b)``.

    The proof's counting claim: for a node on the top frontier segment,
    the intersection with the *top* half is exactly ``r(r+1)`` nodes
    (and symmetrically for the other sides).
    """
    halves = {
        "top": rect_from_extents(a - r, a + r, b + 1, b + r),
        "bottom": rect_from_extents(a - r, a + r, b - r, b - 1),
        "left": rect_from_extents(a - r, a - 1, b - r, b + r),
        "right": rect_from_extents(a + 1, a + r, b - r, b + r),
    }
    box = halves[half]
    x0, y0 = node
    return [
        (x, y)
        for (x, y) in box
        if abs(x - x0) <= r and abs(y - y0) <= r
    ]


def crash_inductive_step_holds(
    faulty: Iterable[Coord],
    a: int,
    b: int,
    r: int,
    metric="linf",
) -> Tuple[bool, List[Coord]]:
    """Executable form of Theorem 5's inductive step.

    Assume every *correct* node of ``nbd(a, b)`` has the value.  Using
    relays drawn only from the step's locality -- ``nbd(a, b)`` and the
    frontier ring itself plus the stage-2 auxiliary neighborhoods (all
    within L-infinity distance ``2r + 1`` of ``(a, b)``) -- can every
    correct frontier node receive it?

    Returns ``(holds, stuck_nodes)``.  The locality restriction matters:
    this demonstrates the *inductive step*, not global reachability, which
    is exactly the claim the proof makes (and the claim that fails at
    ``t = r(2r+1)``).
    """
    fs = set(faulty)
    committed: Set[Coord] = {
        n for n in nbd((a, b), r, metric) + [(a, b)] if n not in fs
    }
    frontier = [n for n in pnbd_frontier((a, b), r, metric) if n not in fs]
    # Locality: the proof only ever uses nodes within the perturbed
    # neighborhoods' union and the stage-2 auxiliary neighborhood; a box of
    # half-width 2r+1 around (a, b) contains all of them.
    locality = rect_from_extents(
        a - 2 * r - 1, a + 2 * r + 1, b - 2 * r - 1, b + 2 * r + 1
    )
    from repro.geometry.metrics import get_metric

    m = get_metric(metric)
    # BFS from the committed set over correct nodes inside the locality.
    reached: Set[Coord] = set(committed)
    frontier_wave: List[Coord] = list(committed)
    while frontier_wave:
        nxt: List[Coord] = []
        for u in frontier_wave:
            ux, uy = u
            for dx, dy in m.offsets(r):
                v = (ux + dx, uy + dy)
                if v in reached or v in fs or v not in locality:
                    continue
                reached.add(v)
                nxt.append(v)
        frontier_wave = nxt
    stuck = [n for n in frontier if n not in reached]
    return (not stuck, stuck)
