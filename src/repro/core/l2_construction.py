"""The Euclidean-metric argument of Section VIII (Figs. 11-12).

The paper refrains from exact L2 thresholds ("it is difficult to precisely
determine lattice points falling in areas bounded by circular arcs") and
instead argues with areas: for the worst frontier pair -- nodes ``P`` and
``Q`` at distance ``~ r * sqrt(2)`` -- the regions A, B, C, D, E of
Fig. 12 pack about ``1.47 r^2 = 0.47 pi r^2`` node-disjoint paths inside
the single neighborhood centered at the midpoint ``M`` of ``PQ``, which
exceeds ``2 * (0.23 pi r^2) + 1``.

We make this executable two ways:

- :func:`l2_disjoint_path_count` *measures* the true maximum number of
  internally vertex-disjoint P-Q paths through ``nbd(M)`` on the lattice,
  via the vertex-capacitated max-flow engine -- no area approximations;
- :func:`l2_argument_row` compares the measurement against the paper's
  area estimate and against the ``2t + 1`` requirement for
  ``t < 0.23 pi r^2``, reproducing Fig. 12's claim numerically for a
  sweep of radii.

The impossibility side (Fig. 13) lives in
:mod:`repro.faults.constructions` (the half-density strip evaluated under
the L2 metric) and its bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.flows import max_vertex_disjoint_paths
from repro.geometry.coords import Coord
from repro.geometry.metrics import L2


def worst_case_pq(r: int) -> Tuple[Coord, Coord, Coord]:
    """The rotated worst-case configuration of Fig. 12: ``P`` at the
    origin, ``Q`` on the x-axis at the largest lattice distance not
    exceeding ``r * sqrt(2)``, and the midpoint ``M`` (rounded to the
    lattice) as the candidate neighborhood center."""
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    d = math.floor(r * math.sqrt(2))
    p: Coord = (0, 0)
    q: Coord = (d, 0)
    m: Coord = (d // 2, 0)
    return p, q, m


def disc_points(center: Coord, r: int) -> List[Coord]:
    """All lattice points within Euclidean distance ``r`` of ``center``
    (center included)."""
    cx, cy = center
    rr = r * r
    return [
        (cx + dx, cy + dy)
        for dx in range(-r, r + 1)
        for dy in range(-r, r + 1)
        if dx * dx + dy * dy <= rr
    ]


def l2_disjoint_path_count(r: int, cap: int = 0) -> int:
    """Exact maximum internally vertex-disjoint P-Q path count with every
    vertex (endpoints included) inside ``nbd(M)`` under L2.

    ``cap`` > 0 stops the flow early once that many paths are found (the
    benches only need to beat ``2t + 1``).
    """
    p, q, m = worst_case_pq(r)
    allowed = disc_points(m, r)
    allowed_set = set(allowed)
    adj = {
        u: tuple(
            v for v in allowed if v != u and L2.within(u, v, r)
        )
        for u in allowed
    }
    if p not in allowed_set or q not in allowed_set:
        return 0
    return max_vertex_disjoint_paths(
        adj, p, q, allowed=allowed_set, cap=cap if cap > 0 else None
    )


@dataclass(frozen=True)
class L2ArgumentRow:
    """One radius of the Section VIII comparison."""

    r: int
    measured_paths: int
    paper_area_estimate: float  # 1.47 r^2 (~= 0.47 pi r^2)
    required_for_threshold: int  # 2 * floor(0.23 pi r^2 ... ) + 1
    t_star: int  # largest t with t < 0.23 pi r^2

    @property
    def argument_holds(self) -> bool:
        """Measured connectivity meets the ``2t + 1`` requirement."""
        return self.measured_paths >= self.required_for_threshold


def l2_argument_row(r: int) -> L2ArgumentRow:
    """Measure one radius and compare with the paper's estimate."""
    t_star = math.ceil(0.23 * math.pi * r * r) - 1  # largest t < 0.23*pi*r^2
    t_star = max(t_star, 0)
    required = 2 * t_star + 1
    measured = l2_disjoint_path_count(r, cap=required)
    return L2ArgumentRow(
        r=r,
        measured_paths=measured,
        paper_area_estimate=1.47 * r * r,
        required_for_threshold=required,
        t_star=t_star,
    )


def l2_argument_table(radii: List[int]) -> List[Dict[str, float]]:
    """Fig. 12's claim as a table over radii (bench EXP-F11_12)."""
    rows = []
    for r in radii:
        row = l2_argument_row(r)
        rows.append(
            {
                "r": r,
                "t_star": row.t_star,
                "required_2t_plus_1": row.required_for_threshold,
                "measured_disjoint_paths": row.measured_paths,
                "paper_estimate_1.47r^2": row.paper_area_estimate,
                "argument_holds": row.argument_holds,
            }
        )
    return rows
