"""Every fault-tolerance bound stated in the paper.

Real-valued *thresholds* are the exact expressions from the theorems;
integer ``max_t`` helpers give the largest admissible fault budget, which
is what simulations and benches actually instantiate.

Summary (L-infinity unless noted):

===============================  ==========================================
Result                           Bound
===============================  ==========================================
Theorem 1 (BV achievability)     ``t < r(2r+1)/2``
Koo impossibility (from [1])     ``t >= ceil(r(2r+1)/2)``
Theorem 4 (crash impossibility)  ``t >= r(2r+1)``
Theorem 5 (crash achievability)  ``t < r(2r+1)``
Theorem 6 (CPA achievability)    ``t <= (2/3) r^2``
Koo CPA achievability (from [1]) ``t < (r(r + sqrt(r/2) + 1))/2``
Koo CPA achievability, L2        ``t < (r(r + sqrt(r/2) + 1))/4 - 2``
Section VIII, Byzantine L2       achievable ~``t < 0.23 pi r^2``;
                                 impossible ~``t >= 0.3 pi r^2``
Section VIII, crash L2           achievable ~``t < 0.46 pi r^2``;
                                 impossible ~``t >= 0.6 pi r^2``
===============================  ==========================================
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.geometry.balls import linf_ball_size


def _require_radius(r: int) -> None:
    if r < 1:
        raise ValueError(f"transmission radius must be >= 1, got {r}")


def linf_nbd_size(r: int) -> int:
    """L-infinity neighborhood population, ``(2r+1)^2 - 1``.

    Useful context: the Byzantine threshold ``r(2r+1)/2`` is "slightly
    less than one-fourth" of this, the crash threshold "slightly less
    than half".
    """
    _require_radius(r)
    return linf_ball_size(r)


# -- Byzantine, L-infinity ---------------------------------------------------


def byzantine_linf_threshold(r: int) -> float:
    """Theorem 1's strict upper bound: broadcast achievable iff
    ``t <`` this value (``r(2r+1)/2``)."""
    _require_radius(r)
    return r * (2 * r + 1) / 2


def byzantine_linf_max_t(r: int) -> int:
    """Largest integer ``t`` satisfying Theorem 1 (``t < r(2r+1)/2``)."""
    _require_radius(r)
    n = r * (2 * r + 1)
    # strict bound at n/2: max integer below it
    return (n - 1) // 2


def koo_impossibility_bound(r: int) -> int:
    """Koo's lower bound from [1]: broadcast impossible once
    ``t >= ceil(r(2r+1)/2)``.  Matches Theorem 1 exactly: the threshold is
    tight."""
    _require_radius(r)
    n = r * (2 * r + 1)
    return -(-n // 2)  # ceil(n / 2)


# -- crash-stop, L-infinity ----------------------------------------------------


def crash_linf_threshold(r: int) -> int:
    """Theorems 4/5: crash-stop broadcast achievable iff
    ``t < r(2r+1)``."""
    _require_radius(r)
    return r * (2 * r + 1)


def crash_linf_max_t(r: int) -> int:
    """Largest tolerable crash budget, ``r(2r+1) - 1``."""
    _require_radius(r)
    return r * (2 * r + 1) - 1


# -- the simple protocol (CPA), L-infinity --------------------------------------


def koo_cpa_linf_bound(r: int) -> float:
    """Koo's CPA achievability bound from [1] (L-infinity):
    ``t < (r(r + sqrt(r/2) + 1))/2``."""
    _require_radius(r)
    return (r * (r + math.sqrt(r / 2) + 1)) / 2


def koo_cpa_l2_bound(r: int) -> float:
    """Koo's CPA achievability bound from [1] (L2):
    ``t < (r(r + sqrt(r/2) + 1))/4 - 2``."""
    _require_radius(r)
    return (r * (r + math.sqrt(r / 2) + 1)) / 4 - 2


def cpa_linf_bound(r: int) -> float:
    """Theorem 6: CPA achieves broadcast for ``t <= (2/3) r^2``
    (asymptotically dominating Koo's bound)."""
    _require_radius(r)
    return 2 * r * r / 3


def cpa_linf_max_t(r: int) -> int:
    """Largest integer budget Theorem 6 certifies for CPA:
    ``floor(2 r^2 / 3)``.

    Note Theorem 6's inequality is non-strict (``t <= 2r^2/3``), so the
    floor is admissible.  For small ``r`` Koo's bound can exceed this (the
    paper's claim is asymptotic domination); :func:`cpa_best_known_max_t`
    takes the max of both.
    """
    _require_radius(r)
    return (2 * r * r) // 3


def cpa_best_known_max_t(r: int) -> int:
    """The best fault budget either CPA analysis certifies.

    The paper's ``2r^2/3`` dominates for all sufficiently large ``r``;
    Koo's bound is better for ``r <= 4`` (the benches report the
    crossover).  Koo's bound is strict, Theorem 6's is not.
    """
    _require_radius(r)
    koo = koo_cpa_linf_bound(r)
    koo_max = math.ceil(koo) - 1  # strict: largest integer < bound
    return max(koo_max, cpa_linf_max_t(r))


# -- Euclidean (Section VIII, informal) ----------------------------------------


def l2_byzantine_achievable_estimate(r: int) -> float:
    """Section VIII's working value: achievability argued for
    ``t < 0.23 pi r^2`` (up to ``O(r)`` lattice corrections)."""
    _require_radius(r)
    return 0.23 * math.pi * r * r


def l2_byzantine_impossible_estimate(r: int) -> float:
    """Section VIII: impossibility argued around ``t >= 0.3 pi r^2``."""
    _require_radius(r)
    return 0.3 * math.pi * r * r


def l2_crash_achievable_estimate(r: int) -> float:
    """Section VIII: crash-stop tolerable up to ``2t = 0.46 pi r^2``."""
    _require_radius(r)
    return 0.46 * math.pi * r * r


def l2_crash_impossible_estimate(r: int) -> float:
    """Section VIII: around ``0.6 pi r^2`` crash failures per neighborhood
    render broadcast impossible."""
    _require_radius(r)
    return 0.6 * math.pi * r * r


# -- report helper ---------------------------------------------------------------


def threshold_table(radii: List[int]) -> List[Dict[str, float]]:
    """One row per radius with every bound -- the shape the paper's
    abstract describes and the benches print."""
    rows: List[Dict[str, float]] = []
    for r in radii:
        rows.append(
            {
                "r": r,
                "nbd_size": linf_nbd_size(r),
                "byz_linf_threshold": byzantine_linf_threshold(r),
                "byz_linf_max_t": byzantine_linf_max_t(r),
                "koo_impossibility": koo_impossibility_bound(r),
                "crash_linf_threshold": crash_linf_threshold(r),
                "crash_linf_max_t": crash_linf_max_t(r),
                "koo_cpa_linf": koo_cpa_linf_bound(r),
                "cpa_linf_bound": cpa_linf_bound(r),
                "cpa_linf_max_t": cpa_linf_max_t(r),
                "cpa_best_known_max_t": cpa_best_known_max_t(r),
                "l2_byz_achievable": l2_byzantine_achievable_estimate(r),
                "l2_byz_impossible": l2_byzantine_impossible_estimate(r),
                "l2_crash_achievable": l2_crash_achievable_estimate(r),
                "l2_crash_impossible": l2_crash_impossible_estimate(r),
            }
        )
    return rows
