"""The paper's analytical contribution, as executable mathematics.

- :mod:`repro.core.thresholds` -- every bound stated in the paper;
- :mod:`repro.core.regions` -- Table I and the Figures 1-3 region
  inventory for the Theorem 1/3 construction;
- :mod:`repro.core.paths` -- the explicit node-disjoint path
  constructions of Figures 4-7;
- :mod:`repro.core.witnesses` -- checkers that verify a claimed path
  family is disjoint, plausible and neighborhood-contained;
- :mod:`repro.core.crash_argument` -- the staged propagation argument of
  Theorem 5 (Figures 9-10);
- :mod:`repro.core.l2_construction` -- the approximate Euclidean
  construction of Section VIII (Figures 11-12);
- :mod:`repro.core.cpa_argument` -- the stage inequalities of Theorem 6
  (Figures 14-19).
"""

from repro.core.regions import (
    region_M,
    region_R,
    region_U,
    region_S1,
    region_S2,
    corner_P,
    table1_U_regions,
    table1_S1_regions,
    expected_region_sizes,
)
from repro.core.paths import (
    PathFamily,
    corner_connectivity,
    arbitrary_p_connectivity,
    u_node_paths,
    s1_node_paths,
    s2_node_paths,
)
from repro.core.witnesses import verify_family, verify_connectivity_map
from repro.core.crash_argument import (
    crash_inductive_step_holds,
    stage_one_split,
)
from repro.core.l2_construction import (
    l2_disjoint_path_count,
    l2_argument_row,
    l2_argument_table,
)
from repro.core.cpa_argument import theorem6_row, theorem6_table
from repro.core.thresholds import (
    linf_nbd_size,
    byzantine_linf_threshold,
    byzantine_linf_max_t,
    koo_impossibility_bound,
    crash_linf_threshold,
    crash_linf_max_t,
    koo_cpa_linf_bound,
    koo_cpa_l2_bound,
    cpa_linf_bound,
    cpa_linf_max_t,
    l2_byzantine_achievable_estimate,
    l2_byzantine_impossible_estimate,
    l2_crash_achievable_estimate,
    l2_crash_impossible_estimate,
    threshold_table,
)

__all__ = [
    "region_M",
    "region_R",
    "region_U",
    "region_S1",
    "region_S2",
    "corner_P",
    "table1_U_regions",
    "table1_S1_regions",
    "expected_region_sizes",
    "PathFamily",
    "corner_connectivity",
    "arbitrary_p_connectivity",
    "u_node_paths",
    "s1_node_paths",
    "s2_node_paths",
    "verify_family",
    "verify_connectivity_map",
    "crash_inductive_step_holds",
    "stage_one_split",
    "l2_disjoint_path_count",
    "l2_argument_row",
    "l2_argument_table",
    "theorem6_row",
    "theorem6_table",
    "linf_nbd_size",
    "byzantine_linf_threshold",
    "byzantine_linf_max_t",
    "koo_impossibility_bound",
    "crash_linf_threshold",
    "crash_linf_max_t",
    "koo_cpa_linf_bound",
    "koo_cpa_l2_bound",
    "cpa_linf_bound",
    "cpa_linf_max_t",
    "l2_byzantine_achievable_estimate",
    "l2_byzantine_impossible_estimate",
    "l2_crash_achievable_estimate",
    "l2_crash_impossible_estimate",
    "threshold_table",
]
