"""The stage analysis of Theorem 6 (Figs. 14-19): CPA tolerates
``t <= (2/3) r^2``.

The proof tracks how commitment spreads outward from a committed central
square under the simple protocol, one "row" at a time:

- **Stage 1** (Figs. 14-16): along each edge of the committed square,
  ``2 ceil(r/2) + 1`` nodes commit immediately (their committed-neighbor
  count is at least ``(r + 1 + r/2) r > (4/3) r^2 + 1 = 2t + 1``); then
  row ``i`` commits given rows ``< i``, as long as

  ``(ceil(3r/2) + 1)(r + 1 - i) + (i - 1)(2 ceil(r/2) + 1)
  + (i - 1)(ceil(r/2) - i + 1) >= (4/3) r^2 + 1``

  which the paper shows holds up to ``i <= floor(r / sqrt(6))``, letting
  the stack reach ``floor(r/3)`` rows.
- **Stage 2** (Figs. 17-19): 8 corner-adjacent nodes then commit
  (``>= (r + 1 + ceil(r/2)) r + 2 ceil(r/2) floor(r/3) >= 11r^2/6``), and
  after them every remaining node has at least
  ``(r + 1) r + 2 ceil(r/2) floor(r/3) + 4 > (4/3) r^2`` committed
  neighbors.

This module implements each inequality verbatim so the tests can sweep
``r`` and the bench can print the stage table; the simulation-level
confirmation (CPA actually succeeding at ``t = floor(2 r^2 / 3)``) lives
in the protocol tests and the Theorem 6 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


def _ceil_half(r: int) -> int:
    return -(-r // 2)


def commit_threshold(r: int) -> float:
    """The ``2t + 1`` requirement at ``t = (2/3) r^2``: ``(4/3) r^2 + 1``."""
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    return 4 * r * r / 3 + 1


def stage1_initial_support(r: int) -> int:
    """Committed-neighbor count of the first ``2 ceil(r/2) + 1`` nodes per
    edge (Fig. 14's shaded region): ``(r + 1 + ceil(r/2)) * r``."""
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    return (r + 1 + _ceil_half(r)) * r


def stage1_row_support(r: int, i: int) -> int:
    """The left side of the row-``i`` inequality (``i >= 1``), as printed
    in the paper."""
    if i < 1:
        raise ValueError(f"row index must be >= 1, got {i}")
    ceil_3r2 = -(-3 * r // 2)
    return (
        (ceil_3r2 + 1) * (r + 1 - i)
        + (i - 1) * (2 * _ceil_half(r) + 1)
        + (i - 1) * (_ceil_half(r) - i + 1)
    )


def stage1_row_commits(r: int, i: int) -> bool:
    """Whether row ``i`` satisfies the stage-1 inequality."""
    return stage1_row_support(r, i) >= commit_threshold(r)


def stage1_max_row(r: int) -> int:
    """Largest contiguous row the stage-1 inequality certifies.

    The paper claims this is at least ``floor(r / sqrt(6))`` for
    ``r >= 2`` and in particular at least ``floor(r/3)``.
    """
    i = 0
    while stage1_row_commits(r, i + 1):
        i += 1
        if i > 2 * r:  # pragma: no cover - inequality fails long before
            break
    return i


def paper_stage1_claim(r: int) -> int:
    """The paper's certified depth ``floor(r / sqrt(6))``."""
    return math.floor(r / math.sqrt(6))


def stage2_corner_support(r: int) -> int:
    """Committed-neighbor count of the 8 post-stage-1 corner nodes
    (Fig. 17): ``(r + 1 + ceil(r/2)) r + 2 ceil(r/2) floor(r/3)``."""
    return (r + 1 + _ceil_half(r)) * r + 2 * _ceil_half(r) * (r // 3)


def stage2_remaining_support(r: int) -> int:
    """Committed-neighbor floor for every remaining node (Fig. 17's shaded
    count): ``(r + 1) r + 2 ceil(r/2) floor(r/3) + 4``."""
    return (r + 1) * r + 2 * _ceil_half(r) * (r // 3) + 4


@dataclass(frozen=True)
class Theorem6Row:
    """One radius of the Theorem 6 stage table."""

    r: int
    t: int  # floor(2 r^2 / 3)
    threshold: float  # (4/3) r^2 + 1
    initial_support: int
    stage1_rows_certified: int
    paper_stage1_claim: int
    stage2_corner_support: int
    stage2_remaining_support: int

    @property
    def all_inequalities_hold(self) -> bool:
        """Theorem 6's chain of inequalities for this radius (``r >= 2``;
        the paper proves the stage bounds for ``r >= 2``)."""
        return (
            self.initial_support > self.threshold - 1
            and self.stage1_rows_certified >= self.paper_stage1_claim
            and self.stage1_rows_certified >= self.r // 3
            and self.stage2_corner_support >= self.threshold
            and self.stage2_remaining_support > 4 * self.r * self.r / 3
        )


def theorem6_row(r: int) -> Theorem6Row:
    """Evaluate every Theorem 6 inequality at radius ``r``."""
    return Theorem6Row(
        r=r,
        t=(2 * r * r) // 3,
        threshold=commit_threshold(r),
        initial_support=stage1_initial_support(r),
        stage1_rows_certified=stage1_max_row(r),
        paper_stage1_claim=paper_stage1_claim(r),
        stage2_corner_support=stage2_corner_support(r),
        stage2_remaining_support=stage2_remaining_support(r),
    )


def theorem6_table(radii: List[int]) -> List[Dict[str, object]]:
    """The Fig. 14-19 stage table over radii (bench EXP-F14_19)."""
    rows: List[Dict[str, object]] = []
    for r in radii:
        row = theorem6_row(r)
        rows.append(
            {
                "r": r,
                "t=floor(2r^2/3)": row.t,
                "2t+1": row.threshold,
                "first_nodes_support": row.initial_support,
                "stage1_rows": row.stage1_rows_certified,
                "paper_claim_r/sqrt6": row.paper_stage1_claim,
                "corner_support": row.stage2_corner_support,
                "remaining_support": row.stage2_remaining_support,
                "holds": row.all_inequalities_hold,
            }
        )
    return rows
