"""The region inventory of the Theorem 1/3 construction (Figs. 1-3, Table I).

Setting: the inductive step assumes all honest nodes in ``nbd(a, b)`` have
committed and must show the *corner* frontier node ``P = (a-r, b+r+1)``
(the worst case) can reliably determine the commitments of ``r(2r+1)``
nodes of ``nbd(a, b)``.

The determinable set is the staircase region **M** (Fig. 1); it splits as

- **R** (Fig. 2): ``r(r+1)`` nodes P hears directly;
- **U** (Fig. 3): the upper triangle, ``r(r-1)/2`` nodes, each reached via
  the Table I construction (regions A, B1/B2, C1/C2, D1/D2/D3, Figs 4-5);
- **S1** (Fig. 3): ``r`` nodes on the column ``x = a-r``, each reached via
  regions J, K1, K2 (Fig. 6);
- **S2** (Fig. 3): the lower triangle, ``r(r-1)/2`` nodes, handled by the
  axial symmetry about OO' (the anti-diagonal through P).

Every region is produced exactly as the paper's Table I writes it, so the
tests can check the claimed cardinalities, containments and disjointness
verbatim.
"""

from __future__ import annotations

from typing import Dict, List

from repro.geometry.coords import Coord
from repro.geometry.regions import Rect, rect_from_extents


def _check_rpq(r: int, p: int, q: int) -> None:
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    if not (r >= q > p >= 1):
        raise ValueError(
            f"U-region parameters must satisfy r >= q > p >= 1, got "
            f"r={r}, p={p}, q={q}"
        )


# -- Figure 1-3 point sets ----------------------------------------------------


def region_M(a: int, b: int, r: int) -> List[Coord]:
    """Fig. 1's shaded staircase: ``{(a-r+p, b-r+q) | 2r >= q > p >= 0}``.

    Exactly ``r(2r+1)`` nodes of ``nbd(a, b)`` -- the ``2t+1`` committed
    nodes P taps when ``t`` is maximal.
    """
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    return [
        (a - r + p, b - r + q)
        for q in range(0, 2 * r + 1)
        for p in range(0, q)
    ]


def region_R(a: int, b: int, r: int) -> Rect:
    """Fig. 2's direct-hearing block: ``[a-r, a] x [b+1, b+r]``,
    ``r(r+1)`` nodes all adjacent to P."""
    return rect_from_extents(a - r, a, b + 1, b + r, name="R")


def region_U(a: int, b: int, r: int) -> List[Coord]:
    """Fig. 3's upper triangle ``{(a+p, b+q) | r >= q > p >= 1}``
    (``r(r-1)/2`` nodes)."""
    return [
        (a + p, b + q) for q in range(1, r + 1) for p in range(1, q)
    ]


def region_S1(a: int, b: int, r: int) -> List[Coord]:
    """Fig. 3's left column ``{(a-r, b-p) | 0 <= p <= r-1}`` (``r``
    nodes)."""
    return [(a - r, b - p) for p in range(0, r)]


def region_S2(a: int, b: int, r: int) -> List[Coord]:
    """Fig. 3's lower triangle ``{(a-q, b-p) | r-1 >= q > p >= 0}``
    (``r(r-1)/2`` nodes)."""
    return [
        (a - q, b - p) for q in range(0, r) for p in range(0, q)
    ]


def corner_P(a: int, b: int, r: int) -> Coord:
    """The worst-case frontier node ``P = (a-r, b+r+1)``."""
    return (a - r, b + r + 1)


# -- Table I ----------------------------------------------------------------------


def table1_U_regions(
    a: int, b: int, r: int, p: int, q: int
) -> Dict[str, Rect]:
    """Table I's rows for a U-region node ``N = (a+p, b+q)``
    (``r >= q > p >= 1``): the relay regions of Figs. 4-5.

    Keys: ``A, B1, B2, C1, C2, D1, D2, D3`` with extents copied verbatim
    from the paper's table.
    """
    _check_rpq(r, p, q)
    return {
        "A": rect_from_extents(a + p - r, a, b + 1, b + q + r),
        "B1": rect_from_extents(a + 1, a + p - 1, b + 1, b + q + r),
        "B2": rect_from_extents(a + 1 - r, a + p - 1 - r, b + 1, b + q + r),
        "C1": rect_from_extents(a + p + 1, a + r, b + q + 1, b + r + 1),
        "C2": rect_from_extents(
            a + p + 1 - r, a, b + q + 1 + r, b + 1 + 2 * r
        ),
        "D1": rect_from_extents(
            a + p, a + p + r - q, b + r + q - p + 1, b + r + q
        ),
        "D2": rect_from_extents(a + 1, a + p, b + 1 + r + q, b + 1 + 2 * r),
        "D3": rect_from_extents(
            a + 1 - r, a + p - r, b + 1 + r + q, b + 1 + 2 * r
        ),
    }


def table1_S1_regions(a: int, b: int, r: int, p: int) -> Dict[str, Rect]:
    """Table I's rows for an S1 node ``N = (a-r, b-p)``
    (``0 <= p <= r-1``): the relay regions of Fig. 6 (J, K1, K2)."""
    if r < 1:
        raise ValueError(f"radius must be >= 1, got {r}")
    if not 0 <= p <= r - 1:
        raise ValueError(
            f"S1 parameter must satisfy 0 <= p <= r-1, got p={p}, r={r}"
        )
    return {
        "J": rect_from_extents(a - 2 * r, a, b + 1, b - p + r),
        "K1": rect_from_extents(a - 2 * r, a, b - p + 1, b),
        "K2": rect_from_extents(a - 2 * r, a, b - p + r + 1, b + r),
    }


# -- claimed cardinalities (for the Table I bench) ------------------------------------


def expected_U_path_counts(r: int, p: int, q: int) -> Dict[str, int]:
    """The per-family path counts the proof claims for a U node.

    ``A``: ``(r-p+1)(r+q)``; ``B``: ``(p-1)(r+q)``; ``C``:
    ``(r-p)(r-q+1)``; ``D``: ``p(r-q+1)``; total ``r(2r+1)``.
    """
    _check_rpq(r, p, q)
    counts = {
        "A": (r - p + 1) * (r + q),
        "B": (p - 1) * (r + q),
        "C": (r - p) * (r - q + 1),
        "D": p * (r - q + 1),
    }
    counts["total"] = sum(counts.values())
    return counts


def expected_S1_path_counts(r: int, p: int) -> Dict[str, int]:
    """Fig. 6's claim: ``(r-p)(2r+1)`` one-relay paths via J plus
    ``p(2r+1)`` two-relay paths via K1/K2, totalling ``r(2r+1)``."""
    counts = {
        "J": (r - p) * (2 * r + 1),
        "K": p * (2 * r + 1),
    }
    counts["total"] = sum(counts.values())
    return counts


def expected_region_sizes(r: int) -> Dict[str, int]:
    """Figure 1-3 cardinalities as stated in the prose."""
    return {
        "M": r * (2 * r + 1),
        "R": r * (r + 1),
        "U": r * (r - 1) // 2,
        "S1": r,
        "S2": r * (r - 1) // 2,
    }
