"""Earmarked messages: the state-reduction the completeness proof enables.

The paper (Section VI): "This state may be reduced further by earmarking
exact messages that a node should lookout for, and this shall become clear
from our constructive proof" -- i.e. with known topology, a frontier node
``P`` need not track arbitrary HEARD traffic; the construction tells it
*exactly* which relay chains to await for each of the ``r(2r+1)`` nodes it
must determine.

Two layers live here:

- the *watch-list extraction* (:func:`earmarked_reports`,
  :func:`family_watchlist`): turn a constructive witness into the chains
  as the watching node receives them;
- the *frame selection* (:func:`choose_frame`,
  :func:`watchlist_for_node`): for an arbitrary node, pick which
  neighborhood's inductive step it should ride (the L1-closest-to-source
  one) and in which of the eight lattice orientations, then instantiate
  the Fig. 7 construction there.  This is what the
  :class:`~repro.protocols.bv_earmarked.BVEarmarkedProtocol` calls at
  startup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.paths import (
    PathFamily,
    arbitrary_p_connectivity,
    corner_connectivity,
)
from repro.geometry.coords import Coord
from repro.geometry.symmetry import DIHEDRAL_TRANSFORMS

RelayChain = Tuple[Coord, ...]
"""A relay chain as the watching node sees it: nearest relay first, the
relay adjacent to the origin last.  Empty = direct hearing."""

Transform = Callable[[Coord], Coord]


def family_watchlist(family: PathFamily) -> List[RelayChain]:
    """The relay chains of one family, oriented for the watcher ``P``.

    A stored path reads ``(N, relay..., P)``; ``P`` receives the report
    from the *last* relay, so the watch order is the reverse of the
    relay segment.
    """
    chains: List[RelayChain] = []
    for path in family.paths:
        relays = path[1:-1]
        chains.append(tuple(reversed(relays)))
    return chains


def earmarked_reports(
    a: int, b: int, r: int, l: int = 0
) -> Dict[Coord, List[RelayChain]]:
    """The full watch-list for frontier node ``P_l = (a-r+l, b+r+1)``.

    Maps each determinable origin ``N`` (the region-M nodes, shifted per
    Fig. 7 when ``l > 0``) to its expected relay chains.  Memory footprint
    of the earmarked protocol is the total number of chains:
    ``r(2r+1)`` origins x ``r(2r+1)`` chains each in the corner case, as
    opposed to tracking every HEARD in a four-hop halo.
    """
    families = (
        corner_connectivity(a, b, r)
        if l == 0
        else arbitrary_p_connectivity(a, b, r, l)
    )
    return {n: family_watchlist(fam) for n, fam in families.items()}


def watchlist_size(watchlist: Dict[Coord, List[RelayChain]]) -> int:
    """Total chain count -- the earmarked node's state bound."""
    return sum(len(chains) for chains in watchlist.values())


# -- per-node frame selection (for the earmarked protocol) --------------------


def _inverse_of(transform: Transform) -> Transform:
    """Invert a D4 transform by probing (the inverse is in the group)."""
    probes = ((1, 0), (0, 1))
    for candidate in DIHEDRAL_TRANSFORMS.values():
        if all(candidate(transform(p)) == p for p in probes):
            return candidate
    raise AssertionError("D4 transform without inverse (impossible)")


def choose_frame(
    dp: Coord, r: int
) -> Optional[Tuple[Coord, Transform, Transform, int]]:
    """Pick the induction frame for a node at displacement ``dp`` from
    the source.

    Returns ``(center, transform, inverse, l)``: ``center`` is the chosen
    neighborhood center (source-relative); ``transform`` maps
    center-relative coordinates into the canonical orientation in which
    the node sits at the top-edge frontier position ``(-r+l, r+1)`` with
    ``0 <= l <= r``; ``inverse`` undoes it.

    Among all centers whose perturbed-neighborhood frontier contains the
    node, the L1-closest-to-source one is chosen -- the executable form
    of the paper's "one can cover the entire infinite grid by moving up,
    down, left and right": the chosen neighborhood commits strictly
    earlier in the commit wave.

    Returns ``None`` for nodes within distance ``r`` of the source (they
    hear the source directly and need no frame).
    """
    if max(abs(dp[0]), abs(dp[1])) <= r:
        return None
    best: Optional[Tuple[tuple, Coord, str, bool, int]] = None
    for axis_name in ("identity", "rot90", "rot180", "rot270"):
        g_axis = DIHEDRAL_TRANSFORMS[axis_name]
        g_axis_inv = _inverse_of(g_axis)
        qx, qy = g_axis(dp)
        if qy < r + 1:
            continue  # this rotation does not put the node above a center
        for e in range(-r, r + 1):
            # canonical frame: node at (e, r+1) relative to the center
            center = g_axis_inv((qx - e, qy - (r + 1)))
            tau = abs(center[0]) + abs(center[1])
            if e <= 0:
                mirror_needed = False
                l = e + r
            else:
                # right half of the edge: mirror across the vertical axis
                mirror_needed = True
                l = r - e
            key = (tau, axis_name, mirror_needed, e)
            if best is None or key < best[0]:
                best = (key, center, axis_name, mirror_needed, l)
    if best is None:  # pragma: no cover - unreachable for |dp| > r
        raise AssertionError(f"no frame found for dp={dp}, r={r}")
    _, center, axis_name, mirror_needed, l = best
    g_axis = DIHEDRAL_TRANSFORMS[axis_name]
    if mirror_needed:
        mirror = DIHEDRAL_TRANSFORMS["mirror_y"]

        def transform(p: Coord) -> Coord:
            return mirror(g_axis(p))

    else:
        transform = g_axis
    return (center, transform, _inverse_of(transform), l)


def watchlist_for_node(
    node: Coord, source: Coord, r: int
) -> Optional[Dict[Coord, List[RelayChain]]]:
    """The earmarked watch-list for an arbitrary node, absolute coords.

    Chooses the induction frame (:func:`choose_frame`), instantiates the
    Fig. 7 construction in canonical orientation, and maps everything
    back.  Returns ``None`` for the source and its direct neighbors.

    The returned map sends each watched origin (a node of the chosen
    committed neighborhood) to its expected relay chains, oriented
    nearest-relay-first as the watcher receives them.  All origins lie
    within the chosen single neighborhood, so the earmarked commit rule
    needs no covering-center search.
    """
    dp = (node[0] - source[0], node[1] - source[1])
    relative = _watchlist_relative(dp, r)
    if relative is None:
        return None
    sx, sy = source
    return {
        (ox + sx, oy + sy): [
            tuple((fx + sx, fy + sy) for fx, fy in chain)
            for chain in chains
        ]
        for (ox, oy), chains in relative.items()
    }


from functools import lru_cache  # noqa: E402


@lru_cache(maxsize=4096)
def _watchlist_relative(
    dp: Coord, r: int
) -> Optional[Dict[Coord, List[RelayChain]]]:
    """Watch-list in source-relative coordinates, memoized per (dp, r).

    Every node at the same displacement from the source shares this
    structure, so large simulations build each shape once.
    """
    frame = choose_frame(dp, r)
    if frame is None:
        return None
    center, transform, inverse, l = frame
    families = arbitrary_p_connectivity(0, 0, r, l)
    cx, cy = center

    def to_relative(p: Coord) -> Coord:
        ix, iy = inverse(p)
        return (ix + cx, iy + cy)

    watchlist: Dict[Coord, List[RelayChain]] = {}
    for origin, family in families.items():
        chains = [
            tuple(to_relative(f) for f in chain)
            for chain in family_watchlist(family)
        ]
        watchlist[to_relative(origin)] = chains
    return watchlist
