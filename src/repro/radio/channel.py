"""Channel imperfections: the knobs Section X talks about.

The paper's results assume a *perfect* channel: no address spoofing, no
collisions, loss-free reliable local broadcast.  Section X discusses what
breaks when those assumptions fall; this module makes the discussion
executable.  A :class:`ChannelImperfections` object configures the
engine with any mix of:

- **spoofing** (``allow_spoofing``): Byzantine processes may stamp a
  forged sender on their transmissions
  (:meth:`repro.radio.node.Context.broadcast_as`).  With the default
  (``False``) the engine *enforces* the paper's assumption: a forgery
  attempt raises :class:`~repro.errors.SpoofingError`.
- **deliberate collisions** (``allow_jamming``): a process may jam its
  neighborhood for the current round (:meth:`Context.jam`): every
  receiver within its radius hears only noise.  ``max_jam_rounds_per_node``
  bounds the attack (the paper: with *bounded* collisions, retransmission
  recovers; unbounded collisions make broadcast impossible).
- **random loss** (``loss_rate``): each (transmission, receiver) delivery
  is independently dropped -- the "probabilistic local broadcast" regime
  the paper sketches for real wireless channels.  ``tx_copies``
  retransmits every payload that many times, the standard counter-measure
  (per-receiver delivery probability becomes ``1 - loss_rate**tx_copies``).

Determinism: loss draws come from a private generator seeded by ``seed``,
so runs remain reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelImperfections:
    """Configuration of channel-model deviations (all off by default)."""

    allow_spoofing: bool = False
    allow_jamming: bool = False
    loss_rate: float = 0.0
    tx_copies: int = 1
    seed: int = 0
    max_jam_rounds_per_node: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.tx_copies < 1:
            raise ConfigurationError(
                f"tx_copies must be >= 1, got {self.tx_copies}"
            )
        if (
            self.max_jam_rounds_per_node is not None
            and self.max_jam_rounds_per_node < 0
        ):
            raise ConfigurationError("max_jam_rounds_per_node must be >= 0")

    @property
    def is_perfect(self) -> bool:
        """Whether this configuration equals the paper's ideal channel."""
        return (
            not self.allow_spoofing
            and not self.allow_jamming
            and self.loss_rate == 0.0
            and self.tx_copies == 1
        )

    def make_rng(self) -> random.Random:
        """The private loss generator for one engine run.

        Seeded through :func:`repro.exec.seeds.derive_seed` so the loss
        stream is process-independent and statistically unrelated to any
        scenario stream sharing the same integer seed.
        """
        from repro.exec.seeds import derive_seed

        return random.Random(derive_seed(self.seed, "channel-loss", 0))


PERFECT_CHANNEL = ChannelImperfections()
"""The paper's channel: the engine default."""


#: The named channel-model factor levels scenario specs range over (the
#: orthogonal "channel" axis of the run-table harness).  Strings, not
#: :class:`ChannelImperfections` objects, so they can sit in frozen spec
#: dataclasses and JSON cache keys.
CHANNEL_MODELS = ("ideal", "lossy", "jammed")

#: the "lossy" level: Section X's probabilistic local broadcast with the
#: standard retransmission counter-measure -- per-receiver delivery
#: probability ``1 - 0.2**6 ~= 0.99994``
LOSSY_LOSS_RATE = 0.2
LOSSY_TX_COPIES = 6

#: the "jammed" level: deliberate collisions are *permitted* but bounded
#: (the paper: bounded collisions are recoverable by retransmission;
#: unbounded ones make broadcast impossible)
JAMMED_MAX_JAM_ROUNDS = 2


def make_channel_model(
    name: str, seed: int = 0
) -> Optional[ChannelImperfections]:
    """Materialize a named channel-model level.

    ``"ideal"`` returns ``None`` (the engine's perfect-channel default,
    and the only level the fastpath backend accepts); ``"lossy"`` and
    ``"jammed"`` return the configurations described above, with the
    private randomness stream derived from ``seed``.
    """
    if name == "ideal":
        return None
    if name == "lossy":
        return ChannelImperfections(
            loss_rate=LOSSY_LOSS_RATE, tx_copies=LOSSY_TX_COPIES, seed=seed
        )
    if name == "jammed":
        return ChannelImperfections(
            allow_jamming=True,
            max_jam_rounds_per_node=JAMMED_MAX_JAM_ROUNDS,
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown channel model {name!r}; expected one of {CHANNEL_MODELS}"
    )
