"""The simulation backend registry: names and validation.

Kept free of heavy imports (no numpy, no engine machinery) so the spec
layer (:mod:`repro.exec.specs`) can validate an ``engine=`` field
without paying for the simulator stack.  The backends themselves:

- ``"reference"`` -- the per-node object engine
  (:class:`repro.radio.engine.Engine`), the semantic ground truth;
- ``"fastpath"`` -- the vectorized array-kernel engine
  (:mod:`repro.radio.fastpath`), observationally identical for the
  protocols it supports and ~100x faster on large tori.

Because the two backends must be observationally identical (enforced by
``tests/test_fastpath_differential.py``), the engine choice is *not*
part of a scenario's identity: it is excluded from
``ScenarioSpec.scenario_key()`` and from the work-unit cache key, so
rows computed on either backend are interchangeable.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Selectable simulation backends.
ENGINES = ("reference", "fastpath")

#: Protocols with a fastpath kernel.  Everything else is reference-only.
FASTPATH_PROTOCOLS = ("crash-flood", "bv-two-hop", "cpa")

#: Protocols whose fastpath kernel can host Byzantine processes.  The
#: crash-flood and bv-two-hop kernels model crash faults only.
FASTPATH_BYZANTINE_PROTOCOLS = ("cpa",)

#: Byzantine strategies the fastpath engine can express as fixed
#: per-slot message plans (see :mod:`repro.radio.fastpath.byzantine`).
#: Strategies outside this set -- ``"noise"`` and any user-defined
#: process class -- run arbitrary node code and hard-gate to the
#: reference engine.
FASTPATH_FIXED_STRATEGIES = ("silent", "liar", "duplicitous", "fabricator")


def validate_engine(engine: str) -> str:
    """Check an engine name; returns it unchanged or raises
    :class:`~repro.errors.ConfigurationError`."""
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine
