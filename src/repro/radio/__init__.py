"""Radio-network simulation engine.

Implements the paper's idealized channel model (Section II):

- **reliable local broadcast**: a transmission by node ``u`` is heard,
  correctly and atomically, by *every* node within distance ``r`` of ``u``;
- **per-sender ordering**: if ``u`` transmits ``m1`` before ``m2``, every
  neighbor receives them in that order;
- **no spoofing**: receivers learn the true sender identity (the engine
  stamps it; node code cannot forge it);
- **no collisions**: nodes transmit in a pre-determined TDMA schedule.

The engine is a deterministic synchronous-round simulator: each round runs
one TDMA frame; in its slot a node drains its outbox (configurable), and
each transmission is delivered to the full neighborhood immediately.
Crash-stop faults are an engine-level concern (a crashed node stops
transmitting); Byzantine faults are a process-level concern (the node runs
an adversarial :class:`~repro.radio.node.NodeProcess`).
"""

from repro.radio.channel import ChannelImperfections, PERFECT_CHANNEL
from repro.radio.messages import Envelope
from repro.radio.node import NodeProcess, Context, SilentProcess
from repro.radio.trace import Trace, TraceEvent
from repro.radio.engine import Engine, SimulationResult
from repro.radio.resilience import RetransmittingProcess
from repro.radio.run import run_broadcast, BroadcastOutcome

__all__ = [
    "ChannelImperfections",
    "PERFECT_CHANNEL",
    "Envelope",
    "NodeProcess",
    "Context",
    "SilentProcess",
    "Trace",
    "TraceEvent",
    "Engine",
    "SimulationResult",
    "RetransmittingProcess",
    "run_broadcast",
    "BroadcastOutcome",
]
