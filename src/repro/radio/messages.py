"""The on-air message envelope.

The engine wraps every payload a process transmits in an
:class:`Envelope` stamping the true sender identity and a global sequence
number.  Receivers see envelopes; the sender field is trustworthy by the
paper's no-spoofing assumption (Section II), which the engine enforces by
construction -- process code never builds envelopes itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.geometry.coords import Coord


@dataclass(frozen=True)
class Envelope:
    """A single on-air transmission.

    Attributes
    ----------
    sender:
        Canonical coordinate of the transmitting node (engine-stamped;
        unforgeable in this model).
    payload:
        The protocol-level message.  Protocols define their own payload
        types (see :mod:`repro.protocols.base`); the engine treats payloads
        as opaque.
    seq:
        Global transmission sequence number, strictly increasing in
        transmission order.  Because the channel preserves per-sender
        order and delivers atomically, ``seq`` totally orders all
        transmissions as every receiver observes them.
    round:
        Index of the round (TDMA frame) in which the transmission was made.
    slot:
        Index of the TDMA slot within the frame.
    """

    sender: Coord
    payload: Any
    seq: int
    round: int
    slot: int

    def __repr__(self) -> str:  # compact, log-friendly
        return (
            f"Envelope(#{self.seq} r{self.round}s{self.slot} "
            f"from {self.sender}: {self.payload!r})"
        )
