"""Retransmission: the paper's counter-measure to disruption.

Section X: "If the adversary uses collisions to merely disrupt
communication, the problem is trivially solved by re-transmitting
messages a sufficient number of times."  Likewise Section II sketches a
probabilistic local-broadcast primitive for lossy channels.

:class:`RetransmittingProcess` wraps any protocol process and repeats
each of its broadcasts over ``repeats`` consecutive rounds.  Receivers
need no changes: every protocol in this library already de-duplicates
(first announcement per sender wins; evidence chains are sets).  A halt
requested by the inner protocol is deferred until all scheduled repeats
have been transmitted, so the final ``COMMITTED`` survives jamming too.

With a jam budget of ``B`` rounds per attacker (or i.i.d. loss ``p``),
``repeats = B + 1`` (resp. enough copies that ``p**repeats`` is
negligible) restores delivery -- bench EXP-SECX demonstrates both.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.radio.messages import Envelope
from repro.radio.node import Context, NodeProcess


class _RepeatingContext:
    """Context proxy: records broadcasts for repetition, defers halt."""

    def __init__(self, ctx: Context, owner: "RetransmittingProcess") -> None:
        self._ctx = ctx
        self._owner = owner

    def __getattr__(self, name: str) -> Any:
        return getattr(self._ctx, name)

    @property
    def node(self):
        return self._ctx.node

    def broadcast(self, payload: Any) -> None:
        self._ctx.broadcast(payload)
        if self._owner.repeats > 1:
            self._owner._pending.append((payload, self._owner.repeats - 1))

    def halt(self) -> None:
        self._owner._halt_requested = True
        # real halt happens once every repeat has been queued


class RetransmittingProcess(NodeProcess):
    """Wrap ``inner`` so each broadcast is repeated across rounds."""

    def __init__(self, inner: NodeProcess, repeats: int = 2) -> None:
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        self.inner = inner
        self.repeats = repeats
        self._pending: List[Tuple[Any, int]] = []
        self._halt_requested = False

    # -- delegation --------------------------------------------------------

    def _wrap(self, ctx: Context) -> _RepeatingContext:
        return _RepeatingContext(ctx, self)

    def on_start(self, ctx: Context) -> None:
        self.inner.on_start(self._wrap(ctx))

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        self.inner.on_receive(self._wrap(ctx), env)

    def on_round(self, ctx: Context) -> None:
        # queue this round's repeats first, then let the inner run
        still_pending: List[Tuple[Any, int]] = []
        for payload, remaining in self._pending:
            ctx.broadcast(payload)
            if remaining > 1:
                still_pending.append((payload, remaining - 1))
        self._pending = still_pending
        self.inner.on_round(self._wrap(ctx))
        self._maybe_halt(ctx)

    def on_round_end(self, ctx: Context) -> None:
        self.inner.on_round_end(self._wrap(ctx))
        self._maybe_halt(ctx)

    def _maybe_halt(self, ctx: Context) -> None:
        if self._halt_requested and not self._pending:
            ctx.halt()

    # -- introspection -------------------------------------------------------

    def committed_value(self) -> Optional[Any]:
        return self.inner.committed_value()
