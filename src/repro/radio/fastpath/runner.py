"""Fastpath entry point: gating, dispatch, and result assembly.

:func:`run_fastpath_broadcast` is the backend's one public door.  It
refuses -- with a :class:`~repro.errors.ConfigurationError` naming the
reason -- any scenario or instrumentation the kernels cannot reproduce
*exactly* (the equivalence contract in ``docs/ENGINES.md`` is byte-level
and unconditional: there is no "approximately supported" tier), runs
the protocol kernel, and assembles the same artifact set the reference
path produces: a populated :class:`~repro.radio.trace.Trace`, populated
:class:`~repro.obs.metrics.RunMetrics` observers, a
:class:`~repro.radio.engine.SimulationResult`-compatible result, and a
graded :class:`~repro.radio.run.BroadcastOutcome`.
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.torus import Torus
from repro.obs.metrics import RunMetrics
from repro.radio.engines import (
    ENGINES,
    FASTPATH_BYZANTINE_PROTOCOLS,
    FASTPATH_PROTOCOLS,
    validate_engine,
)
from repro.radio.fastpath.bv_two_hop import run_bv_two_hop_kernel
from repro.radio.fastpath.byzantine import (
    build_plans,
    classify_unsupported_reason,
)
from repro.radio.fastpath.compat import require_numpy
from repro.radio.fastpath.cpa import run_cpa_kernel
from repro.radio.fastpath.crash_flood import run_crash_flood_kernel
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.result import (
    FastSimulationResult,
    build_processes,
    build_trace,
)
from repro.radio.fastpath.stats import SourceTracker
from repro.radio.run import BroadcastOutcome, grade_outcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import BroadcastScenario

__all__ = [
    "ENGINES",
    "FASTPATH_PROTOCOLS",
    "fastpath_unsupported_reason",
    "get_lattice",
    "run_fastpath_broadcast",
    "validate_engine",
]

#: Crash-round sentinel for nodes that never crash (any value above
#: every reachable round works; rounds are bounded by max_rounds).
_NEVER = 2**62

#: Memoized lattices keyed by torus shape (the tables are pure geometry
#: and dominate setup cost for repeated runs on the same torus).
_LATTICE_CACHE: Dict[Tuple[int, int, int, str], Lattice] = {}
_LATTICE_CACHE_MAX = 4


def get_lattice(topology: Torus) -> Lattice:
    """The (memoized) :class:`Lattice` for a torus."""
    key = (topology.width, topology.height, topology.r, topology.metric.name)
    lattice = _LATTICE_CACHE.get(key)
    if lattice is None:
        lattice = Lattice(topology)
        if len(_LATTICE_CACHE) >= _LATTICE_CACHE_MAX:
            # repro: lint-ok[fork-safety] pure-geometry memo; a worker that misses recomputes the identical tables
            _LATTICE_CACHE.pop(next(iter(_LATTICE_CACHE)))
        # repro: lint-ok[fork-safety] pure-geometry memo; a worker that misses recomputes the identical tables
        _LATTICE_CACHE[key] = lattice
    return lattice


def fastpath_unsupported_reason(
    scenario: "BroadcastScenario",
) -> Optional[str]:
    """Why ``scenario`` cannot run on the fastpath backend, or ``None``.

    The checks cover scenario *structure*; per-run instrumentation
    (event recording, profilers, non-RunMetrics observers) is checked
    at :func:`run_fastpath_broadcast` time.
    """
    if scenario.protocol not in FASTPATH_PROTOCOLS:
        return (
            f"protocol {scenario.protocol!r} has no fastpath kernel "
            f"(supported: {FASTPATH_PROTOCOLS})"
        )
    if scenario.byzantine_processes:
        if scenario.protocol not in FASTPATH_BYZANTINE_PROTOCOLS:
            return (
                f"protocol {scenario.protocol!r} has no "
                "Byzantine-capable fastpath kernel (supported: "
                f"{FASTPATH_BYZANTINE_PROTOCOLS}); Byzantine scenarios "
                "for other protocols need the reference engine"
            )
        reason = classify_unsupported_reason(scenario.byzantine_processes)
        if reason is not None:
            return reason
    if scenario.channel is not None:
        return "channel imperfections require the reference engine"
    if scenario.delivery != "immediate":
        return (
            f'delivery={scenario.delivery!r} is not vectorized; only '
            '"immediate" is'
        )
    if scenario.protocol_kwargs:
        return (
            "protocol_kwargs "
            f"{sorted(scenario.protocol_kwargs)} are not supported by "
            "the fastpath kernels"
        )
    if not isinstance(scenario.topology, Torus):
        return (
            "the fastpath engine supports only Torus topologies, got "
            f"{type(scenario.topology).__name__}"
        )
    return None


def _check_run_args(
    scenario: "BroadcastScenario",
    record_events: bool,
    observers: Optional[Sequence[object]],
    profiler: Optional[object],
) -> List[RunMetrics]:
    reason = fastpath_unsupported_reason(scenario)
    if reason is not None:
        raise ConfigurationError(f'engine="fastpath" cannot run this scenario: {reason}')
    # same guard (and message) the reference engine raises at
    # construction time -- rejection parity is part of the contract
    if scenario.max_rounds < 1:
        raise ConfigurationError(
            f"max_rounds must be >= 1, got {scenario.max_rounds}"
        )
    # same error the reference source process raises in on_start --
    # a None source value means "not the source" to every protocol
    if scenario.value is None:
        raise ConfigurationError(
            f"source node {scenario.source} has no source_value"
        )
    if record_events:
        raise ConfigurationError(
            'engine="fastpath" does not record per-event traces; use '
            'engine="reference" for record_events/JSONL runs'
        )
    if profiler is not None:
        raise ConfigurationError(
            'engine="fastpath" has no phase profiler; use '
            'engine="reference" to profile'
        )
    checked: List[RunMetrics] = []
    for obs in observers or ():
        # exact-type check: a RunMetrics *subclass* may override hooks
        # the fastpath never calls, silently collecting nothing
        if type(obs) is not RunMetrics:
            raise ConfigurationError(
                'engine="fastpath" supports only plain RunMetrics '
                f"observers, got {type(obs).__name__}"
            )
        checked.append(obs)
    return checked


def run_fastpath_broadcast(
    scenario: "BroadcastScenario",
    record_events: bool = False,
    observers: Optional[Sequence[object]] = None,
    profiler: Optional[object] = None,
) -> BroadcastOutcome:
    """Run ``scenario`` on the fastpath backend and grade the outcome.

    Drop-in equivalent of the reference path taken by
    :meth:`repro.experiments.scenarios.BroadcastScenario.run`: same
    grading, same trace aggregates, same observer contents -- enforced
    byte-for-byte by the differential suite.
    """
    np = require_numpy()
    metrics_observers = _check_run_args(
        scenario, record_events, observers, profiler
    )
    lattice = get_lattice(scenario.topology)
    n = lattice.num_nodes

    canon = scenario.topology.canonical
    height = lattice.height
    correct_mask = np.ones(n, dtype=bool)
    for node in sorted(scenario.faulty_nodes):
        x, y = canon(node)
        correct_mask[x * height + y] = False
    crash_rounds = np.full(n, _NEVER, dtype=np.int64)
    for node, rnd in scenario.crash_round.items():
        x, y = canon(node)
        crash_rounds[x * height + y] = rnd
    source_idx = lattice.flat(scenario.source)

    trackers_by_source: Dict[Coord, SourceTracker] = {}
    for obs in metrics_observers:
        if obs.source is None:
            continue
        src = scenario.topology.canonical(obs.source)
        if src not in trackers_by_source:
            trackers_by_source[src] = SourceTracker(
                src, lattice.distance_from(src)
            )
    trackers = list(trackers_by_source.values())

    if scenario.protocol == "crash-flood":
        stats = run_crash_flood_kernel(
            lattice,
            source_idx=source_idx,
            correct=correct_mask,
            crash_rounds=crash_rounds,
            max_rounds=scenario.max_rounds,
            max_messages=scenario.max_messages,
            trackers=trackers,
        )
    elif scenario.protocol == "cpa":
        plans = build_plans(
            scenario.byzantine_processes, scenario.topology.r
        )
        stats = run_cpa_kernel(
            lattice,
            source_idx=source_idx,
            value=scenario.value,
            t=scenario.t,
            correct=correct_mask,
            crash_rounds=crash_rounds,
            byz_plans={
                lattice.flat(node): plan for node, plan in plans.items()
            },
            max_rounds=scenario.max_rounds,
            max_messages=scenario.max_messages,
            trackers=trackers,
        )
    else:
        stats = run_bv_two_hop_kernel(
            lattice,
            source_idx=source_idx,
            value=scenario.value,
            t=scenario.t,
            correct=correct_mask,
            crash_rounds=crash_rounds,
            max_rounds=scenario.max_rounds,
            max_messages=scenario.max_messages,
            trackers=trackers,
        )

    trace = build_trace(
        rounds=stats.rounds,
        transmissions=stats.transmissions,
        deliveries=stats.fanout_deliveries,
        crashes=stats.crashes,
        tx_by_node=stats.tx_by_node,
        tx_by_round=stats.tx_by_round,
    )
    result = FastSimulationResult(
        rounds=stats.rounds,
        quiescent=stats.quiescent,
        hit_round_limit=stats.hit_round_limit,
        hit_message_limit=stats.hit_message_limit,
        trace=trace,
        processes=build_processes(
            lattice.coords_all,
            stats.committed_mask,
            scenario.value,
            stats.wrong_values,
        ),
        crash_round=dict(scenario.crash_round),
    )

    for obs in metrics_observers:
        src = (
            scenario.topology.canonical(obs.source)
            if obs.source is not None
            else None
        )
        tracker = trackers_by_source.get(src) if src is not None else None
        obs.ingest_run(
            source=src,
            transmissions=stats.transmissions,
            deliveries=stats.obs_deliveries,
            crashes=stats.crashes,
            rounds=stats.rounds,
            quiescent=stats.quiescent,
            tx_by_round=dict(stats.tx_by_round),
            deliveries_by_round=dict(stats.deliveries_by_round),
            commits_by_round=dict(stats.commits_by_round),
            tx_by_node=dict(stats.tx_by_node),
            rx_by_node=dict(stats.rx_by_node),
            commit_round=dict(stats.commit_round),
            commit_wavefront_by_round=(
                dict(tracker.commit_wavefront) if tracker else {}
            ),
            delivery_wavefront_by_round=(
                dict(tracker.delivery_wavefront) if tracker else {}
            ),
        )

    # same set as scenario.correct_nodes, built from the mask instead of
    # a 40k-node generator walk (grading is on the hot sweep path)
    correct_nodes = set(compress(lattice.coords_all, correct_mask.tolist()))
    return grade_outcome(result, scenario.value, correct_nodes)
