"""Vectorized CPA (Certified Propagation Algorithm) kernel.

CPA state per correct node is a tally of first announcements per value:
commit on a direct ``SourceMsg`` from the true source, or when some
value's tally reaches ``t + 1``; then announce once and halt.  The
kernel keeps that state in dense arrays:

- ``tally``: an ``(N, V)`` counter matrix over the run's *value table*
  -- every value any process can ever announce is known before round 0
  (the source value plus the fixed Byzantine plan values), and value
  identity follows Python dict equality exactly as the reference
  protocol's ``_tally`` dict does (``1``, ``True`` and ``1.0`` share a
  bucket);
- ``cpa_active``: a :class:`PackedBits` bitset -- correct and not yet
  halted, i.e. the nodes whose ``on_receive`` still runs;
- ``committed_vid``: each node's committed value id (or -1).

Three message kinds flow: ``SRC`` (the source's one-time broadcast),
``CMT(vid, counts)`` (a ``CommittedMsg``; ``counts`` is False for a
duplicitous sender's repeat or an unhashable value, both of which the
reference receive path ignores), and ``JUNK`` (any ``HeardMsg`` --
CPA never reads them, so fabricator floods reduce to delivery counters
plus the fabricator's own reaction rule).

Two sender classes keep the hot path vectorized: *relays* (exactly one
counting ``CMT``: every committing correct node, and eager liars) fire
per slot as one batched stencil gather; *special* senders (the source's
``SRC + CMT`` burst, duplicitous two-value bursts, fabricator bursts
and reactions) are few and fire per node over a single ``(K,)`` ball.

Per-sender repeat-announcement state is *global*, not per receiver: if
a receiver processes a sender's second ``CMT`` it must have processed
the first (crash and halt are monotone, balls are static, and a budget
stop ends the whole run), so the repeat never counts for anyone --
``counts`` can be precompiled into the plan.

The within-slot ordering freedoms are the same as the crash-flood
kernel's: co-slotted senders have disjoint balls (>= 2r+1 apart), so
batch-vs-special order inside a slot is unobservable, and a slot that
would overrun the message budget falls back to a per-message scalar
replay in node order, stopping exactly where the reference engine's
pre-send check stops.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, Dict, List, Optional, Tuple

from repro.radio.fastpath.bitset import PackedBits
from repro.radio.fastpath.byzantine import ByzantinePlan
from repro.radio.fastpath.compat import require_numpy
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.stats import KernelStats, SourceTracker


def run_cpa_kernel(
    lattice: Lattice,
    *,
    source_idx: int,
    value: Any,
    t: int,
    correct,
    crash_rounds,
    byz_plans: Dict[int, ByzantinePlan],
    max_rounds: int,
    max_messages: Optional[int],
    trackers: List[SourceTracker],
) -> KernelStats:
    """Simulate CPA on ``lattice`` and return its statistics.

    ``byz_plans`` maps flat indices to compiled
    :class:`~repro.radio.fastpath.byzantine.ByzantinePlan` bursts
    (silent Byzantine nodes are absent -- they only receive).
    """
    np = require_numpy()
    stats = KernelStats()
    n = lattice.num_nodes
    K = lattice.ball_size
    coords = lattice.coords_all
    slot_of = lattice.slot_of
    num_slots = len(lattice.slot_groups)
    commit_at = t + 1

    # -- value table: id 0 is the source value; Byzantine plan values
    # follow in sorted-node, burst order.  Unhashable values get id -1
    # (dropped by the hardened receive path; still a CommittedMsg for
    # fabricator reaction purposes).
    values: List[Any] = [value]
    table: Dict[Any, int] = {value: 0}

    def vid_of(v: Any) -> int:
        try:
            known = table.get(v)
        except TypeError:
            return -1  # unhashable: cannot key a tally bucket
        if known is None:
            known = len(values)
            table[v] = known
            values.append(v)
        return known

    # compile plan bursts to kernel messages: ("SRC",) /
    # ("CMT", vid, counts) / ("JUNK",); first *hashable* CMT per sender
    # counts (a dropped unhashable value does not consume the sender's
    # first-announcement slot)
    spec_bursts: Dict[int, Tuple[Tuple, ...]] = {}
    liar_idxs: List[int] = []
    liar_vids: List[int] = []
    is_fab = np.zeros(n, dtype=bool)
    for idx in sorted(byz_plans):
        plan = byz_plans[idx]
        if plan.reactive_junk:
            is_fab[idx] = True
        msgs: List[Tuple] = []
        announced = False
        for msg in plan.start_msgs:
            if msg[0] == "CMT":
                vid = vid_of(msg[1])
                counts = vid >= 0 and not announced
                announced = announced or vid >= 0
                msgs.append(("CMT", vid, counts))
            else:
                msgs.append(("JUNK",))
        if len(msgs) == 1 and msgs[0][0] == "CMT" and msgs[0][2]:
            # single counting announcement: ride the batched relay path
            liar_idxs.append(idx)
            liar_vids.append(msgs[0][1])
        elif msgs:
            spec_bursts[idx] = tuple(msgs)

    num_values = len(values)
    values_not_none = np.asarray(
        [v is not None for v in values], dtype=bool
    )
    tally = np.zeros((n, num_values), dtype=np.int32)
    cpa_active = PackedBits(n)
    cpa_active.set_true(np.flatnonzero(correct))
    committed_vid = np.full(n, -1, dtype=np.int64)
    tx_arr = np.zeros(n, dtype=np.int64)
    rx_arr = np.zeros(n, dtype=np.int64)

    # per-slot ready queues, two frames deep (this frame / next frame):
    # relays carry (idx_array, vid_array) pairs, specials carry
    # (idx, messages) bursts appended in enqueue (= reference outbox)
    # order
    relay_queue: List[List] = []
    relay_next: List[List] = [[] for _ in range(num_slots)]
    spec_queue: List[List] = []
    spec_next: List[List] = [[] for _ in range(num_slots)]
    pending_total = 0

    def route_relays(idxs, vids, current_slot: int) -> None:
        """Bucket fresh single-CMT relays by slot: own slot after
        ``current_slot`` fires this frame, at-or-before rolls over
        (equal is impossible -- co-slotted nodes are out of range)."""
        fslots = slot_of[idxs]
        order = np.argsort(fslots)
        si = idxs[order]
        vi = vids[order]
        ss = fslots[order]
        bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
        starts = [0, *bounds.tolist()]
        ends = [*bounds.tolist(), len(ss)]
        for a, b in zip(starts, ends):
            s2 = int(ss[a])
            target = relay_queue if s2 > current_slot else relay_next
            target[s2].append((si[a:b], vi[a:b]))

    def route_special(idx: int, msgs: Tuple, current_slot: int) -> None:
        s2 = int(slot_of[idx])
        target = spec_queue if s2 > current_slot else spec_next
        target[s2].append((idx, msgs))

    def do_commits(idxs, vids, round_: int, slot: int) -> int:
        """Commit ``idxs`` to ``vids``: halt, record (None-valued
        commits halt and announce but are observably undecided, so
        they stay out of the commit statistics), and enqueue the
        one-time ``COMMITTED`` relay.  Returns messages enqueued."""
        cpa_active.set_false(idxs)
        committed_vid[idxs] = vids
        rec = idxs[values_not_none[vids]]
        if rec.size:
            lst = rec.tolist()
            stats.commit_round.update(
                zip([coords[i] for i in lst], repeat(round_))
            )
            stats.commits_by_round[round_] = stats.commits_by_round.get(
                round_, 0
            ) + len(lst)
            for tr in trackers:
                tr.on_committed(rec)
        route_relays(idxs, vids, slot)
        return int(idxs.size)

    # -- start phase (round -1): the source broadcasts SRC + COMMITTED
    # and commits; Byzantine bursts are queued; dead-from-start crashes
    # are announced.
    src_arr = np.asarray([source_idx], dtype=np.int64)
    cpa_active.set_false(src_arr)
    committed_vid[source_idx] = 0
    stats.commit_round[coords[source_idx]] = -1
    stats.commits_by_round[-1] = 1
    for tr in trackers:
        tr.on_committed(src_arr)
    spec_next[int(slot_of[source_idx])].append(
        (source_idx, (("SRC",), ("CMT", 0, True)))
    )
    pending_total += 2
    if liar_idxs:
        la = np.asarray(liar_idxs, dtype=np.int64)
        lv = np.asarray(liar_vids, dtype=np.int64)
        pending_total += len(liar_idxs)
        # current_slot=-1: everything fires next frame (frame 0)
        fslots = slot_of[la]
        order = np.argsort(fslots)
        si, vi, ss = la[order], lv[order], fslots[order]
        bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
        starts = [0, *bounds.tolist()]
        ends = [*bounds.tolist(), len(ss)]
        for a, b in zip(starts, ends):
            relay_next[int(ss[a])].append((si[a:b], vi[a:b]))
    for idx, msgs in spec_bursts.items():
        spec_next[int(slot_of[idx])].append((idx, msgs))
        pending_total += len(msgs)
    stats.crashes = int((crash_rounds == 0).sum())

    budget = max_messages
    tx_total = 0
    rounds = 0
    quiescent = False
    hit_rounds = False
    hit_messages = False
    obs_del_round = 0

    def fire_message(
        idx: int, ball, delivered, msg: Tuple, r: int, s: int
    ) -> None:
        """Deliver one special-burst message (statistics + protocol)."""
        nonlocal obs_del_round, pending_total
        tx_arr[idx] += 1
        stats.fanout_deliveries += K
        if not delivered.size:
            return
        obs_del_round += int(delivered.size)
        rx_arr[delivered] += 1
        for tr in trackers:
            tr.on_delivered(delivered)
        kind = msg[0]
        if kind == "JUNK":
            return  # HeardMsg: CPA ignores it; fabricators ignore it too
        if kind == "CMT":
            # fabricators re-frame every CommittedMsg they overhear,
            # counting or not (an unhashable value is still a
            # CommittedMsg to them)
            fabs = delivered[is_fab[delivered]]
            for fi in fabs.tolist():
                route_special(fi, (("JUNK",),), s)
                pending_total += 1
            if not msg[2]:
                return  # repeat or unhashable: never tallies
            vid = msg[1]
            elig = delivered[cpa_active.get(delivered)]
            if elig.size:
                tally[elig, vid] += 1
                fresh = elig[tally[elig, vid] >= commit_at]
                if fresh.size:
                    pending_total += do_commits(
                        fresh,
                        np.full(fresh.size, vid, dtype=np.int64),
                        r,
                        s,
                    )
            return
        # SRC: only the true source ever sends it; direct receipt
        # commits every active receiver to the source value
        elig = delivered[cpa_active.get(delivered)]
        if elig.size:
            pending_total += do_commits(
                elig, np.zeros(elig.size, dtype=np.int64), r, s
            )

    r = 0
    while True:
        if r >= max_rounds:
            hit_rounds = True
            break
        if r > 0:
            stats.crashes += int((crash_rounds == r).sum())
        relay_queue = relay_next
        relay_next = [[] for _ in range(num_slots)]
        spec_queue = spec_next
        spec_next = [[] for _ in range(num_slots)]
        tx_round = 0
        obs_del_round = 0
        tripped = False
        for s in range(num_slots):
            rparts = relay_queue[s]
            sparts = spec_queue[s]
            if not rparts and not sparts:
                continue
            relay_demand = sum(p[0].size for p in rparts)
            spec_demand = sum(len(p[1]) for p in sparts)
            demand = relay_demand + spec_demand
            if budget is None or tx_total + demand <= budget:
                # the whole slot fits in the budget: batch the relays,
                # then walk the (few) special bursts
                tx_total += demand
                tx_round += demand
                pending_total -= demand
                if rparts:
                    if len(rparts) == 1:
                        txers, vids = rparts[0]
                    else:
                        txers = np.concatenate([p[0] for p in rparts])
                        vids = np.concatenate([p[1] for p in rparts])
                    m = txers.size
                    stats.fanout_deliveries += m * K
                    tx_arr[txers] += 1
                    balls = lattice.balls_of(txers)
                    alive = crash_rounds[balls] > r
                    delivered = balls[alive]
                    if delivered.size:
                        obs_del_round += int(delivered.size)
                        rx_arr[delivered] += 1
                        for tr in trackers:
                            tr.on_delivered(delivered)
                        fabs = delivered[is_fab[delivered]]
                        for fi in fabs.tolist():
                            route_special(fi, (("JUNK",),), s)
                            pending_total += 1
                        act = alive & cpa_active.get(balls)
                        recv = balls[act]
                        if recv.size:
                            rvids = np.broadcast_to(
                                vids[:, None], balls.shape
                            )[act]
                            # ball disjointness makes recv unique, so
                            # fancy-index += is exact
                            tally[recv, rvids] += 1
                            hit = tally[recv, rvids] >= commit_at
                            fresh = recv[hit]
                            if fresh.size:
                                pending_total += do_commits(
                                    fresh, rvids[hit], r, s
                                )
                for idx, msgs in sparts:
                    ball = lattice.ball_of(idx)
                    delivered = ball[crash_rounds[ball] > r]
                    for msg in msgs:
                        fire_message(idx, ball, delivered, msg, r, s)
            else:
                # budget trips inside this slot: replay it per message
                # in node order, stopping exactly where the reference
                # engine's pre-send check stops
                by_idx: Dict[int, List[Tuple]] = {}
                for arr, vids in rparts:
                    for i, v in zip(arr.tolist(), vids.tolist()):
                        by_idx.setdefault(i, []).append(("CMT", v, True))
                for idx, msgs in sparts:
                    by_idx.setdefault(idx, []).extend(msgs)
                for idx in sorted(by_idx):
                    ball = lattice.ball_of(idx)
                    delivered = ball[crash_rounds[ball] > r]
                    for msg in by_idx[idx]:
                        if tx_total >= budget:
                            tripped = True
                            break
                        tx_total += 1
                        tx_round += 1
                        pending_total -= 1
                        fire_message(idx, ball, delivered, msg, r, s)
                    if tripped:
                        break
            if tripped:
                break
        if tx_round:
            stats.tx_by_round[r] = tx_round
        if obs_del_round:
            stats.deliveries_by_round[r] = obs_del_round
        for tr in trackers:
            tr.snapshot(r)
        rounds = r + 1
        if tripped:
            hit_messages = True
            break
        if tx_round == 0 and pending_total == 0:
            quiescent = True
            break
        r += 1

    stats.rounds = rounds
    stats.quiescent = quiescent
    stats.hit_round_limit = hit_rounds
    stats.hit_message_limit = hit_messages
    stats.transmissions = tx_total
    stats.obs_deliveries = sum(stats.deliveries_by_round.values())
    nz = np.flatnonzero(tx_arr).tolist()
    stats.tx_by_node = dict(zip([coords[i] for i in nz], tx_arr[nz].tolist()))
    nz = np.flatnonzero(rx_arr).tolist()
    stats.rx_by_node = dict(zip([coords[i] for i in nz], rx_arr[nz].tolist()))
    decided = np.flatnonzero(committed_vid >= 0)
    decided = decided[values_not_none[committed_vid[decided]]]
    mask = np.zeros(n, dtype=bool)
    mask[decided] = True
    stats.committed_mask = mask.tolist()
    wrong = decided[committed_vid[decided] != 0]
    stats.wrong_values = {
        coords[i]: values[int(committed_vid[i])] for i in wrong.tolist()
    }
    return stats
