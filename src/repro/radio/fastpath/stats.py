"""Kernel output: run statistics and per-source wave-front trackers.

The fastpath kernels do not emit observer events; they accumulate the
*effects* those events would have had -- the same counters the reference
engine's :class:`~repro.radio.trace.Trace` and
:class:`~repro.obs.metrics.RunMetrics` build up hook by hook -- and hand
them back in one :class:`KernelStats`.  The runner then populates real
``Trace`` / ``RunMetrics`` objects from it, so downstream consumers see
byte-identical summaries.

Two delivery counts coexist on purpose, mirroring the reference split:

- ``fanout_deliveries`` -- channel-level fanout (every transmission
  counts its full neighborhood), what ``Trace.deliveries`` records;
- ``obs_deliveries`` -- actual receptions by live nodes, what
  ``RunMetrics.deliveries`` records (crashed receivers excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry.coords import Coord


class SourceTracker:
    """Cumulative wave-front radii measured from one source node.

    Mirrors :class:`~repro.obs.metrics.RunMetrics` exactly: the radii
    are cumulative maxima updated on every delivery / commit, and a
    snapshot of both is taken at the end of every executed round
    (partial budget-truncated rounds included, round -1 excluded).
    """

    __slots__ = (
        "source",
        "dist",
        "dist_list",
        "commit_radius",
        "delivery_radius",
        "commit_wavefront",
        "delivery_wavefront",
    )

    def __init__(self, source: Coord, dist) -> None:
        self.source = source
        self.dist = dist  # (N,) float64, exact torus metric distances
        self.dist_list = dist.tolist()  # scalar-indexing twin for bv
        self.commit_radius = 0.0
        self.delivery_radius = 0.0
        self.commit_wavefront: Dict[int, float] = {}
        self.delivery_wavefront: Dict[int, float] = {}

    # -- vectorized updates (crash-flood kernel) ------------------------

    def on_delivered(self, idxs) -> None:
        """Advance the delivery radius over an array of receiver indices."""
        if idxs.size:
            d = float(self.dist[idxs].max())
            if d > self.delivery_radius:
                self.delivery_radius = d

    def on_committed(self, idxs) -> None:
        """Advance the commit radius over an array of committer indices."""
        if idxs.size:
            d = float(self.dist[idxs].max())
            if d > self.commit_radius:
                self.commit_radius = d

    # -- scalar updates (bv kernel hot loop) ----------------------------

    def on_delivered_one(self, idx: int) -> None:
        """Widen the delivery wave-front to node ``idx`` if farther."""
        d = self.dist_list[idx]
        if d > self.delivery_radius:
            self.delivery_radius = d

    def on_committed_one(self, idx: int) -> None:
        """Widen the commit wave-front to node ``idx`` if farther."""
        d = self.dist_list[idx]
        if d > self.commit_radius:
            self.commit_radius = d

    def snapshot(self, round_: int) -> None:
        """Record this round's cumulative radii (the round-end hook)."""
        self.commit_wavefront[round_] = self.commit_radius
        self.delivery_wavefront[round_] = self.delivery_radius


@dataclass
class KernelStats:
    """Everything a kernel run produces, in plain Python data.

    ``commit_round`` maps canonical coordinates to the round their
    commit was observed (-1 for the source's ``on_start`` commit);
    its key set is exactly the set of committed nodes.
    """

    rounds: int = 0
    quiescent: bool = False
    hit_round_limit: bool = False
    hit_message_limit: bool = False
    transmissions: int = 0
    fanout_deliveries: int = 0
    obs_deliveries: int = 0
    crashes: int = 0
    tx_by_node: Dict[Coord, int] = field(default_factory=dict)
    tx_by_round: Dict[int, int] = field(default_factory=dict)
    deliveries_by_round: Dict[int, int] = field(default_factory=dict)
    rx_by_node: Dict[Coord, int] = field(default_factory=dict)
    commit_round: Dict[Coord, int] = field(default_factory=dict)
    commits_by_round: Dict[int, int] = field(default_factory=dict)
    #: per-flat-index commit flags, aligned with ``Lattice.coords_all``
    #: (lets the runner build the processes map with one zip instead of
    #: N set probes).  A flag is set only for commits to a non-``None``
    #: value: a ``None``-valued commit halts and announces but is
    #: observably undecided, exactly like the reference protocol.
    committed_mask: Optional[List[bool]] = None
    #: nodes whose committed value differs from the scenario value
    #: (possible only under Byzantine value faults); the runner patches
    #: these into the processes map so grading sees the wrong commits
    wrong_values: Dict[Coord, object] = field(default_factory=dict)

    @property
    def committed_nodes(self) -> Tuple[Coord, ...]:
        """Canonical coordinates of every node that committed."""
        return tuple(self.commit_round)
