"""Fixed-strategy Byzantine plans for the vectorized kernels.

The reference engine hosts a Byzantine node as an arbitrary
:class:`~repro.radio.node.NodeProcess` -- it can run any code.  The
fastpath engine cannot execute arbitrary code inside an array kernel,
but the library's *fixed* strategies (silent, liar, duplicitous,
fabricator) need none: their entire behavior is a message burst known
before the run starts, plus -- for the fabricator -- a reactive rule
("one fake ``HEARD`` per ``COMMITTED`` overheard") that is a pure
counter because no supported kernel protocol reads ``HeardMsg``
payloads at all (CPA ignores them entirely).

:func:`classify_unsupported_reason` decides, by *exact* process type,
whether a scenario's Byzantine population is plan-expressible;
:func:`build_plans` compiles it into per-node :class:`ByzantinePlan`
bursts.  Anything else -- ``RandomNoiseByzantine`` (seeded RNG driving
``on_round``) or a user-defined subclass -- hard-gates to the reference
engine with a named :class:`~repro.errors.ConfigurationError` upstream.

Message encoding: ``("CMT", value)`` for a ``CommittedMsg`` (the raw,
possibly unhashable value -- the kernel maps it to a value id and
treats unhashable values as garbage, mirroring the hardened reference
receive path) and ``("JUNK",)`` for any ``HeardMsg`` (junk to CPA:
it only moves delivery counters and fabricator reaction counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.byzantine import (
    DuplicitousByzantine,
    EagerLiarByzantine,
    FabricatingByzantine,
    RandomNoiseByzantine,
    SilentByzantine,
)
from repro.geometry.coords import Coord
from repro.radio.engines import FASTPATH_FIXED_STRATEGIES
from repro.radio.node import NodeProcess, SilentProcess

#: exact process types expressible as fixed plans.  A plain
#: ``SilentProcess`` is accepted too: it is behaviorally identical to
#: ``SilentByzantine`` (transmits nothing, reacts to nothing).
_PLAN_TYPES = (
    SilentByzantine,
    SilentProcess,
    EagerLiarByzantine,
    DuplicitousByzantine,
    FabricatingByzantine,
)


@dataclass(frozen=True)
class ByzantinePlan:
    """One Byzantine node's compiled behavior.

    ``start_msgs`` is the ``on_start`` burst, in broadcast order;
    ``reactive_junk`` marks a fabricator: one extra ``("JUNK",)``
    broadcast is enqueued for every ``CommittedMsg`` delivered to it.
    """

    start_msgs: Tuple[Tuple, ...]
    reactive_junk: bool = False


def classify_unsupported_reason(
    processes: Dict[Coord, NodeProcess],
) -> Optional[str]:
    """Why this Byzantine population cannot run on fastpath, or None.

    Classification is by exact type: a *subclass* of a fixed strategy
    may override hooks with arbitrary code, so it gates to reference.
    """
    for node in sorted(processes):
        tp = type(processes[node])
        if tp in _PLAN_TYPES:
            continue
        if tp is RandomNoiseByzantine:
            return (
                "Byzantine strategy 'noise' runs arbitrary node code "
                "(no fixed-strategy kernel; supported: "
                f'{FASTPATH_FIXED_STRATEGIES}); use engine="reference"'
            )
        return (
            f"Byzantine process {tp.__name__} at {node} runs arbitrary "
            "node code (no fixed-strategy kernel; supported: "
            f'{FASTPATH_FIXED_STRATEGIES}); use engine="reference"'
        )
    return None


def _fabricator_start_junk(p: FabricatingByzantine, r: int) -> int:
    """How many ``HeardMsg`` fabrications ``p.on_start`` broadcasts.

    Replicates :meth:`FabricatingByzantine.on_start` message by
    message: one direct frame per radius-``r`` neighbor, then -- under
    deep fabrication -- per ``2r``-annulus origin, one frame per valid
    intermediate relay up to ``max_fabrications_per_origin``.  The
    counts depend only on the node's *own* metric and the radius (every
    term is translation-invariant), never on its position.
    """
    metric = p.metric
    count = len(metric.offsets(r))
    if not p.deep_fabrication:
        return count
    for off in metric.offsets(2 * r):
        if metric.within((0, 0), off, r):
            continue  # already framed directly
        fabricated = 0
        for roff in metric.offsets(r):
            if roff == off:
                continue
            if not metric.within(roff, off, r):
                continue
            fabricated += 1
            if fabricated >= p.max_fabrications_per_origin:
                break
        count += fabricated
    return count


def build_plans(
    processes: Dict[Coord, NodeProcess], r: int
) -> Dict[Coord, ByzantinePlan]:
    """Compile a (pre-classified) Byzantine population into plans.

    Silent nodes are omitted: they transmit nothing and react to
    nothing, so the kernel only ever sees them as receivers (which
    needs no plan).  Callers must have run
    :func:`classify_unsupported_reason` first.
    """
    plans: Dict[Coord, ByzantinePlan] = {}
    junk_cache: Dict[Tuple, int] = {}
    for node, p in processes.items():
        tp = type(p)
        if tp is EagerLiarByzantine:
            plans[node] = ByzantinePlan((("CMT", p.wrong_value),))
        elif tp is DuplicitousByzantine:
            plans[node] = ByzantinePlan(
                (("CMT", p.first), ("CMT", p.second))
            )
        elif tp is FabricatingByzantine:
            key = (
                p.metric.name,
                r,
                p.deep_fabrication,
                p.max_fabrications_per_origin,
            )
            junk = junk_cache.get(key)
            if junk is None:
                junk = _fabricator_start_junk(p, r)
                junk_cache[key] = junk
            plans[node] = ByzantinePlan(
                (("CMT", p.wrong_value),) + (("JUNK",),) * junk,
                reactive_junk=True,
            )
        # silent types: no plan entry
    return plans
