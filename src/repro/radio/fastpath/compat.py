"""Optional-dependency gate for the fastpath backend.

numpy ships in the ``fast`` extra (``pip install repro[fast]``), not in
the core install: every reference-engine code path must keep working on
a bare interpreter.  Fastpath entry points call :func:`require_numpy`
first, so a missing dependency surfaces as a
:class:`~repro.errors.ConfigurationError` naming the fix, not as an
``ImportError`` from deep inside a kernel.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised only by environment
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised only without numpy
    _numpy = None

#: whether the fastpath backend is importable in this environment
HAVE_NUMPY: bool = _numpy is not None


def require_numpy():
    """The ``numpy`` module, or a clean configuration error.

    :raises ConfigurationError: when numpy is not installed (the
        ``engine="fastpath"`` backend needs the ``fast`` extra).
    """
    if _numpy is None:
        raise ConfigurationError(
            'engine="fastpath" requires numpy, which is not installed; '
            'install the optional dependency (pip install "repro[fast]") '
            'or use engine="reference"'
        )
    return _numpy
