"""Transport-optimized bv-two-hop kernel.

bv-two-hop's evidence state (per-value, per-center chain indexes with a
set-packing commit rule) is irreducibly per-node, so unlike crash-flood
it cannot be expressed as whole-lattice array updates.  What *can* be
precomputed and flattened is everything the reference engine spends its
time on around that state: envelope objects, context indirection,
per-delivery observer dispatch, coordinate canonicalization and
localization.  This kernel runs the same per-message state machine over
flat integer indices and precomputed ball/offset tables, reusing the
reference evidence machinery (:class:`~repro.protocols.evidence.
CenterIndex`, :func:`~repro.analysis.packing.has_packing_of_size`)
verbatim so commit decisions -- including packing-search order and
budget behavior -- are identical by construction.

Message encoding (value is run-constant, so payloads carry none):

- ``_SRC`` -- the source's initial broadcast;
- ``_CMT`` -- a ``COMMITTED`` announcement;
- ``("HEARD", origin)`` -- a two-hop report with the canonical
  coordinate of the announcer.

Localization exactness: a ball neighbor at offset ``o`` from receiver
``P`` localizes to ``P - o`` (offsets are wrap-unique because the torus
side is >= 2r+1); arbitrary coordinates inside ``HEARD`` payloads go
through the same shortest-wrapped-delta arithmetic as
:meth:`repro.radio.node.Context.localize`, including its distortion on
small tori -- the plausibility filter must misfire in exactly the same
cases as the reference.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.analysis.packing import PackingBudgetExceeded, has_packing_of_size
from repro.protocols.evidence import CenterIndex
from repro.radio.fastpath.compat import require_numpy
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.stats import KernelStats, SourceTracker

_SRC = ("SRC",)
_CMT = ("CMT",)


class _BVState:
    """Per-node protocol state (correct nodes only)."""

    __slots__ = ("committed", "index", "reports_seen", "outbox")

    def __init__(self) -> None:
        self.committed = False
        self.index: Optional[CenterIndex] = None
        self.reports_seen = set()
        self.outbox = deque()


def run_bv_two_hop_kernel(
    lattice: Lattice,
    *,
    source_idx: int,
    value,
    t: int,
    correct,
    crash_rounds,
    max_rounds: int,
    max_messages: Optional[int],
    trackers: List[SourceTracker],
) -> KernelStats:
    """Simulate bv-two-hop on ``lattice`` and return its statistics.

    Arguments match :func:`~repro.radio.fastpath.crash_flood.
    run_crash_flood_kernel`, plus the protocol's fault budget ``t`` and
    the broadcast ``value`` (needed because the evidence index keys
    chains by value, exactly as the reference protocol does).
    """
    require_numpy()  # fail the same way as the vectorized kernels
    stats = KernelStats()
    metric = lattice.metric
    rr = lattice.r
    t1 = t + 1
    K = lattice.ball_size
    num_nodes = lattice.num_nodes
    width, height = lattice.width, lattice.height
    half_w, half_h = width // 2, height // 2
    nbr_lists = lattice.nbr_idx.tolist()
    offsets = metric.offsets(rr)
    coords = lattice.coords_all
    crash_list = crash_rounds.tolist()
    correct_list = correct.tolist()

    states: Dict[int, _BVState] = {
        i: _BVState() for i in range(num_nodes) if correct_list[i]
    }
    correct_order = sorted(states)  # flat order == canonical node order
    tx_by_node = [0] * num_nodes
    rx_by_node = [0] * num_nodes
    pending_total = 0

    def commit(st: _BVState, idx: int, round_: int) -> None:
        nonlocal pending_total
        st.committed = True
        st.outbox.append(_CMT)
        pending_total += 1
        stats.commit_round[coords[idx]] = round_
        stats.commits_by_round[round_] = (
            stats.commits_by_round.get(round_, 0) + 1
        )
        for tr in trackers:
            tr.on_committed_one(idx)

    # -- start phase (round -1): the source broadcasts SRC and commits
    src_state = states[source_idx]
    src_state.outbox.append(_SRC)
    pending_total += 1
    commit(src_state, source_idx, -1)
    stats.crashes = sum(1 for c in crash_list if c == 0)

    budget = max_messages
    tx_total = 0
    obs_deliveries = 0
    rounds = 0
    quiescent = False
    hit_rounds = False
    hit_messages = False
    slot_groups = [g.tolist() for g in lattice.slot_groups]
    r = 0
    while True:
        if r >= max_rounds:
            hit_rounds = True
            break
        if r > 0:
            stats.crashes += sum(1 for c in crash_list if c == r)
        tx_round = 0
        del_round = 0
        tripped = False
        for group in slot_groups:
            for sender in group:
                st = states.get(sender)
                if st is None or not st.outbox:
                    continue  # faulty nodes never queue anything
                outbox = st.outbox
                ball = nbr_lists[sender]
                sender_coord = coords[sender]
                while outbox:
                    if budget is not None and tx_total >= budget:
                        tripped = True
                        break
                    payload = outbox.popleft()
                    pending_total -= 1
                    tx_total += 1
                    tx_round += 1
                    tx_by_node[sender] += 1
                    stats.fanout_deliveries += K
                    kind = payload[0]
                    for j, p in enumerate(ball):
                        if crash_list[p] <= r:
                            continue  # dead receivers hear nothing
                        del_round += 1
                        rx_by_node[p] += 1
                        for tr in trackers:
                            tr.on_delivered_one(p)
                        rst = states.get(p)
                        if rst is None:
                            continue  # live faulty node: silent observer
                        if kind == "CMT":
                            # receivers always relay a two-hop report,
                            # even post-commit (others may need it)
                            rst.outbox.append(("HEARD", sender_coord))
                            pending_total += 1
                            if not rst.committed:
                                px, py = coords[p]
                                ox, oy = offsets[j]
                                if rst.index is None:
                                    rst.index = CenterIndex(rr, metric)
                                rst.index.add(
                                    value,
                                    frozenset(((px - ox, py - oy),)),
                                )
                        elif kind == "HEARD":
                            if rst.committed:
                                continue
                            px, py = coords[p]
                            ox, oy = offsets[j]
                            reporter = (px - ox, py - oy)
                            # localize the origin: shortest wrapped delta
                            gx, gy = payload[1]
                            dx = (gx - px) % width
                            if dx > half_w:
                                dx -= width
                            dy = (gy - py) % height
                            if dy > half_h:
                                dy -= height
                            origin = (px + dx, py + dy)
                            if origin == reporter or origin == (px, py):
                                continue
                            if (reporter, origin) in rst.reports_seen:
                                continue
                            if not metric.within(reporter, origin, rr):
                                continue
                            rst.reports_seen.add((reporter, origin))
                            if rst.index is None:
                                rst.index = CenterIndex(rr, metric)
                            rst.index.add(
                                value, frozenset((origin, reporter))
                            )
                        else:  # SRC: trusted only from the true source
                            if sender == source_idx and not rst.committed:
                                commit(rst, p, r)
                if tripped:
                    break
            if tripped:
                break
        if not tripped:
            # round-end hook: evaluate the commit rule for every live
            # uncommitted node with fresh evidence, in canonical order
            for p in correct_order:
                st = states[p]
                if st.committed or st.index is None:
                    continue
                for key, center in st.index.pop_dirty():
                    chains = st.index.chains_at(key, center)
                    if len(chains) < t1:
                        continue
                    try:
                        if has_packing_of_size(chains, t1):
                            commit(st, p, r)
                            break
                    except PackingBudgetExceeded:
                        continue  # cannot determine yet; same as reference
        # close the round (partial budget-truncated rounds still count)
        if tx_round:
            stats.tx_by_round[r] = tx_round
        if del_round:
            stats.deliveries_by_round[r] = del_round
        obs_deliveries += del_round
        for tr in trackers:
            tr.snapshot(r)
        rounds = r + 1
        if tripped:
            hit_messages = True
            break
        if tx_round == 0 and pending_total == 0:
            quiescent = True
            break
        r += 1

    stats.rounds = rounds
    stats.quiescent = quiescent
    stats.hit_round_limit = hit_rounds
    stats.hit_message_limit = hit_messages
    stats.transmissions = tx_total
    stats.obs_deliveries = obs_deliveries
    for i, n in enumerate(tx_by_node):
        if n:
            stats.tx_by_node[coords[i]] = n
    for i, n in enumerate(rx_by_node):
        if n:
            stats.rx_by_node[coords[i]] = n
    stats.committed_mask = [
        i in states and states[i].committed for i in range(num_nodes)
    ]
    return stats
