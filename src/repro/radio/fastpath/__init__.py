"""``repro.radio.fastpath``: the vectorized array-kernel engine.

A second simulation backend for protocols whose per-round state is a
small per-node lattice (crash-flood and bv-two-hop today): node state
lives in dense numpy arrays, neighborhood delivery is a precomputed
gather over flat ball-index tables (torus wrap folded into the table),
and crash faults are boolean masks.  The backend is selected per
scenario via ``ScenarioSpec(engine="fastpath")`` /
``BroadcastScenario(engine="fastpath")`` and must be *observationally
identical* to the reference engine: the differential harness
(``tests/test_fastpath_differential.py``) pins byte-equal
``metrics_summary`` JSON and identical per-node commit maps between
backends.  See ``docs/ENGINES.md`` for the equivalence contract.

numpy is an optional dependency (the ``fast`` extra); requesting the
backend without it raises :class:`~repro.errors.ConfigurationError`,
never a bare ``ImportError``.
"""

from repro.radio.fastpath.compat import HAVE_NUMPY, require_numpy
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.result import FastSimulationResult
from repro.radio.fastpath.runner import (
    ENGINES,
    FASTPATH_PROTOCOLS,
    fastpath_unsupported_reason,
    run_fastpath_broadcast,
    validate_engine,
)

__all__ = [
    "ENGINES",
    "FASTPATH_PROTOCOLS",
    "FastSimulationResult",
    "HAVE_NUMPY",
    "Lattice",
    "fastpath_unsupported_reason",
    "require_numpy",
    "run_fastpath_broadcast",
    "validate_engine",
]
