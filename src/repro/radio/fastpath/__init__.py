"""``repro.radio.fastpath``: the vectorized array-kernel engine.

A second simulation backend for protocols whose per-round state is a
small per-node lattice (crash-flood, bv-two-hop, and CPA today): node
state lives in dense numpy arrays and packed bitsets, neighborhood
delivery is an on-the-fly ball-stencil gather (torus wrap folded into
the arithmetic), crash faults are boolean masks, and fixed-strategy
Byzantine value faults (silent / liar / duplicitous / fabricator, on
CPA) are compiled message plans.  The backend is selected per
scenario via ``ScenarioSpec(engine="fastpath")`` /
``BroadcastScenario(engine="fastpath")`` and must be *observationally
identical* to the reference engine: the differential harness
(``tests/test_fastpath_differential.py``) pins byte-equal
``metrics_summary`` JSON and identical per-node commit maps between
backends.  See ``docs/ENGINES.md`` for the equivalence contract.

numpy is an optional dependency (the ``fast`` extra); requesting the
backend without it raises :class:`~repro.errors.ConfigurationError`,
never a bare ``ImportError``.
"""

from repro.radio.engines import (
    FASTPATH_BYZANTINE_PROTOCOLS,
    FASTPATH_FIXED_STRATEGIES,
)
from repro.radio.fastpath.bitset import PackedBits
from repro.radio.fastpath.compat import HAVE_NUMPY, require_numpy
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.result import FastSimulationResult
from repro.radio.fastpath.runner import (
    ENGINES,
    FASTPATH_PROTOCOLS,
    fastpath_unsupported_reason,
    run_fastpath_broadcast,
    validate_engine,
)

__all__ = [
    "ENGINES",
    "FASTPATH_BYZANTINE_PROTOCOLS",
    "FASTPATH_FIXED_STRATEGIES",
    "FASTPATH_PROTOCOLS",
    "FastSimulationResult",
    "HAVE_NUMPY",
    "Lattice",
    "PackedBits",
    "fastpath_unsupported_reason",
    "require_numpy",
    "run_fastpath_broadcast",
    "validate_engine",
]
