"""Dense array geometry for a torus: flat indices, ball stencils, slots.

The kernels never touch coordinate tuples in their hot loops.  A
:class:`Lattice` flattens the torus once -- node ``(x, y)`` becomes flat
index ``x * height + y``, which preserves the engine's canonical sorted
node order -- and precomputes:

- the radius-``r`` ball *stencil*: the metric's offset list split into
  ``dx`` / ``dy`` component arrays.  :meth:`balls_of` applies the
  stencil to any batch of transmitters on the fly (two adds, two mods,
  one fused flat-index computation), so delivery needs no per-node
  table.  On small tori -- where the ``(N, K)`` int64 ``nbr_idx`` table
  fits :data:`_TABLE_MAX_ENTRIES` -- :meth:`balls_of` materializes the
  table once and gathers from it instead (a plain fancy-index is ~25%
  faster than the stencil arithmetic); above the cap the stencil avoids
  the table's O(N*K) footprint entirely (192 MB at torus side 1000 with
  ``r=2``, where peak kernel RSS is the whole budget);
- the TDMA slot structure, built by a vectorized twin of
  :func:`repro.grid.tdma.make_schedule` (same groups, same order --
  pinned by ``tests/test_fastpath_differential.py``), so a side-1000
  torus does not pay for a million-entry schedule dict;
- metric distance-from-source fields for wave-front accounting.

Everything here is geometry; no simulation state lives on the lattice,
so one lattice can serve many runs over the same torus.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.torus import Torus
from repro.radio.fastpath.compat import require_numpy

#: largest ``N * K`` for which :meth:`Lattice.balls_of` gathers from the
#: materialized neighbor table (64 MB of int64) instead of applying the
#: stencil arithmetic; side 200 at r=2 linf is 1M entries (well under),
#: side 1000 is 25M (well over).
_TABLE_MAX_ENTRIES = 8_000_000


class Lattice:
    """Flattened geometry of a :class:`~repro.grid.torus.Torus`.

    Attributes
    ----------
    width / height / num_nodes / r / ball_size:
        Torus shape, radius, and neighborhood population ``K``.
    slot_groups:
        One sorted flat-index array per TDMA slot, in slot order --
        exactly :func:`~repro.grid.tdma.make_schedule`'s frame.
    slot_of:
        ``(N,)`` array: each node's slot index.
    """

    def __init__(self, topology: Torus) -> None:
        np = require_numpy()
        if not isinstance(topology, Torus):
            raise ConfigurationError(
                "the fastpath engine supports only Torus topologies, got "
                f"{type(topology).__name__}"
            )
        self.topology = topology
        self.metric = topology.metric
        self.width = topology.width
        self.height = topology.height
        self.r = topology.r
        self.num_nodes = topology.num_nodes
        w, h, n = self.width, self.height, self.num_nodes

        offsets = self.metric.offsets(self.r)
        self.ball_size = len(offsets)
        xs = np.repeat(np.arange(w, dtype=np.int64), h)
        ys = np.tile(np.arange(h, dtype=np.int64), w)
        self.xs = xs
        self.ys = ys
        # ball stencil: offset components, applied on the fly in
        # balls_of() (offset order of metric.offsets(r), which is also
        # Torus.neighbors order)
        self._off_dx = np.asarray([dx for dx, _ in offsets], dtype=np.int64)
        self._off_dy = np.asarray([dy for _, dy in offsets], dtype=np.int64)
        self._nbr_idx = None  # built lazily; see nbr_idx
        self._use_table = n * self.ball_size <= _TABLE_MAX_ENTRIES

        # TDMA frame, vectorized (same slots in the same order as
        # make_schedule): coloring by residue class when both sides are
        # divisible by k = 2r+1 -- slot of (x, y) is the row-major rank
        # of ((x % k), (y % k)), members ascending (flat order equals
        # sorted coordinate order) -- else one node per slot, sorted.
        k = 2 * self.r + 1
        if w % k == 0 and h % k == 0:
            slot_of = (xs % k) * k + (ys % k)
            counts = np.bincount(slot_of, minlength=k * k)
            order = np.argsort(slot_of, kind="stable")
            self.slot_groups: Tuple = tuple(
                np.split(order, np.cumsum(counts)[:-1])
            )
        else:
            slot_of = np.arange(n, dtype=np.int64)
            self.slot_groups = tuple(
                np.split(np.arange(n, dtype=np.int64), np.arange(1, n))
            )
        self.slot_of = slot_of
        self._coords_all: Optional[List[Coord]] = None
        self._dist_cache: dict = {}

    # -- index mapping -----------------------------------------------------

    def flat(self, node: Coord) -> int:
        """Flat index of a canonical coordinate."""
        x, y = self.topology.canonical(node)
        return x * self.height + y

    def coord(self, idx: int) -> Coord:
        """Canonical coordinate of a flat index."""
        return (int(idx) // self.height, int(idx) % self.height)

    def coords(self, idxs) -> List[Coord]:
        """Canonical coordinates for an iterable of flat indices."""
        return [self.coord(i) for i in idxs]

    @property
    def coords_all(self) -> List[Coord]:
        """Canonical coordinate per flat index (flat order == sorted
        node order); one C-speed zip instead of N coord() calls, built
        on first use and kept (result assembly needs it every run)."""
        if self._coords_all is None:
            self._coords_all = list(
                zip(self.xs.tolist(), self.ys.tolist())
            )
        return self._coords_all

    # -- neighborhoods -----------------------------------------------------

    @property
    def nbr_idx(self):
        """``(N, K)`` flat-index ball table (offset order), built lazily.

        Only the scalar bv-two-hop kernel still wants the full table
        (it walks per-node Python lists); the vectorized kernels use
        :meth:`balls_of` and never materialize O(N*K) memory.
        """
        if self._nbr_idx is None:
            np = require_numpy()
            n = self.num_nodes
            nbr = np.empty((n, self.ball_size), dtype=np.int64)
            w, h = self.width, self.height
            for j in range(self.ball_size):
                dx = int(self._off_dx[j])
                dy = int(self._off_dy[j])
                nbr[:, j] = ((self.xs + dx) % w) * h + ((self.ys + dy) % h)
            self._nbr_idx = nbr
        return self._nbr_idx

    def balls_of(self, idxs):
        """``(m, K)`` receiver flat indices for transmitters ``idxs``.

        Exactly ``nbr_idx[idxs]`` either way: a table gather when the
        table is small enough to keep (:data:`_TABLE_MAX_ENTRIES`), else
        the on-the-fly stencil -- O(m*K) work and memory, independent
        of N.
        """
        if self._use_table:
            return self.nbr_idx[idxs]
        x = self.xs[idxs][:, None] + self._off_dx
        y = self.ys[idxs][:, None] + self._off_dy
        return (x % self.width) * self.height + (y % self.height)

    def ball_of(self, idx: int):
        """``(K,)`` receiver flat indices for one transmitter."""
        if self._use_table:
            return self.nbr_idx[idx]
        x = self.xs[idx] + self._off_dx
        y = self.ys[idx] + self._off_dy
        return (x % self.width) * self.height + (y % self.height)

    # -- derived fields ----------------------------------------------------

    def distance_from(self, source: Coord):
        """``(N,)`` float array of torus metric distance from ``source``.

        Matches :meth:`repro.grid.torus.Torus.distance` exactly: shortest
        wrapped displacement per axis, then the metric norm.  Memoized
        per canonical source (callers must treat the array as
        read-only).
        """
        np = require_numpy()
        sx, sy = self.topology.canonical(source)
        cached = self._dist_cache.get((sx, sy))
        if cached is not None:
            return cached
        dx = np.abs(self.xs - sx)
        dx = np.minimum(dx, self.width - dx)
        dy = np.abs(self.ys - sy)
        dy = np.minimum(dy, self.height - dy)
        name = self.metric.name
        if name == "linf":
            dist = np.maximum(dx, dy).astype(np.float64)
        elif name == "l1":
            dist = (dx + dy).astype(np.float64)
        elif name == "l2":
            # math.hypot, not np.hypot: the reference path goes through
            # Metric.distance and the two can differ in the last ulp --
            # wave-front floats must match bit-for-bit.
            dist = np.fromiter(
                (
                    math.hypot(a, b)
                    for a, b in zip(dx.tolist(), dy.tolist())
                ),
                dtype=np.float64,
                count=self.num_nodes,
            )
        else:
            raise ConfigurationError(
                f"fastpath has no distance kernel for metric {name!r}"
            )
        if len(self._dist_cache) >= 8:
            self._dist_cache.pop(next(iter(self._dist_cache)))
        self._dist_cache[(sx, sy)] = dist
        return dist

    def localize(self, node: Coord, other: Coord) -> Coord:
        """``other`` in ``node``'s unwrapped local frame (the fastpath
        twin of :meth:`repro.radio.node.Context.localize`)."""
        dx, dy = self.topology.toroidal_delta(node, other)
        return (node[0] + dx, node[1] + dy)
