"""Dense array geometry for a torus: flat indices, ball tables, slots.

The kernels never touch coordinate tuples in their hot loops.  A
:class:`Lattice` flattens the torus once -- node ``(x, y)`` becomes flat
index ``x * height + y``, which preserves the engine's canonical sorted
node order -- and precomputes:

- ``nbr_idx``: an ``(N, K)`` table mapping each node to the flat indices
  of its radius-``r`` ball (torus wrap folded in), so "deliver to the
  whole neighborhood" is one numpy gather;
- the TDMA slot structure, taken verbatim from
  :func:`repro.grid.tdma.make_schedule` -- the fastpath engine must fire
  the *same* slots in the *same* order as the reference engine, so it
  reuses the reference construction rather than reimplementing it;
- metric distance-from-source fields for wave-front accounting.

Everything here is geometry; no simulation state lives on the lattice,
so one lattice can serve many runs over the same torus.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.tdma import make_schedule
from repro.grid.torus import Torus
from repro.radio.fastpath.compat import require_numpy


class Lattice:
    """Flattened geometry of a :class:`~repro.grid.torus.Torus`.

    Attributes
    ----------
    width / height / num_nodes / r / ball_size:
        Torus shape, radius, and neighborhood population ``K``.
    nbr_idx:
        ``(N, K)`` array: row ``i`` holds the flat indices of node
        ``i``'s neighbors (offset order of ``metric.offsets(r)``).
    slot_groups:
        One sorted flat-index array per TDMA slot, in slot order --
        exactly :func:`~repro.grid.tdma.make_schedule`'s frame.
    slot_of:
        ``(N,)`` array: each node's slot index.
    """

    def __init__(self, topology: Torus) -> None:
        np = require_numpy()
        if not isinstance(topology, Torus):
            raise ConfigurationError(
                "the fastpath engine supports only Torus topologies, got "
                f"{type(topology).__name__}"
            )
        self.topology = topology
        self.metric = topology.metric
        self.width = topology.width
        self.height = topology.height
        self.r = topology.r
        self.num_nodes = topology.num_nodes
        w, h, n = self.width, self.height, self.num_nodes

        offsets = self.metric.offsets(self.r)
        self.ball_size = len(offsets)
        xs = np.repeat(np.arange(w, dtype=np.int64), h)
        ys = np.tile(np.arange(h, dtype=np.int64), w)
        self.xs = xs
        self.ys = ys
        nbr = np.empty((n, self.ball_size), dtype=np.int64)
        for j, (dx, dy) in enumerate(offsets):
            nbr[:, j] = ((xs + dx) % w) * h + ((ys + dy) % h)
        self.nbr_idx = nbr

        schedule = make_schedule(topology)
        self.schedule = schedule
        self.slot_groups: Tuple = tuple(
            np.asarray([self.flat(node) for node in group], dtype=np.int64)
            for group in schedule.slots
        )
        slot_of = np.empty(n, dtype=np.int64)
        for s, group in enumerate(self.slot_groups):
            slot_of[group] = s
        self.slot_of = slot_of
        #: canonical coordinate per flat index (flat order == sorted
        #: node order); one C-speed zip instead of N coord() calls
        self.coords_all: List[Coord] = list(zip(xs.tolist(), ys.tolist()))
        self._dist_cache: dict = {}

    # -- index mapping -----------------------------------------------------

    def flat(self, node: Coord) -> int:
        """Flat index of a canonical coordinate."""
        x, y = self.topology.canonical(node)
        return x * self.height + y

    def coord(self, idx: int) -> Coord:
        """Canonical coordinate of a flat index."""
        return (int(idx) // self.height, int(idx) % self.height)

    def coords(self, idxs) -> List[Coord]:
        """Canonical coordinates for an iterable of flat indices."""
        return [self.coord(i) for i in idxs]

    # -- derived fields ----------------------------------------------------

    def distance_from(self, source: Coord):
        """``(N,)`` float array of torus metric distance from ``source``.

        Matches :meth:`repro.grid.torus.Torus.distance` exactly: shortest
        wrapped displacement per axis, then the metric norm.  Memoized
        per canonical source (callers must treat the array as
        read-only).
        """
        np = require_numpy()
        sx, sy = self.topology.canonical(source)
        cached = self._dist_cache.get((sx, sy))
        if cached is not None:
            return cached
        dx = np.abs(self.xs - sx)
        dx = np.minimum(dx, self.width - dx)
        dy = np.abs(self.ys - sy)
        dy = np.minimum(dy, self.height - dy)
        name = self.metric.name
        if name == "linf":
            dist = np.maximum(dx, dy).astype(np.float64)
        elif name == "l1":
            dist = (dx + dy).astype(np.float64)
        elif name == "l2":
            # math.hypot, not np.hypot: the reference path goes through
            # Metric.distance and the two can differ in the last ulp --
            # wave-front floats must match bit-for-bit.
            dist = np.fromiter(
                (
                    math.hypot(a, b)
                    for a, b in zip(dx.tolist(), dy.tolist())
                ),
                dtype=np.float64,
                count=self.num_nodes,
            )
        else:
            raise ConfigurationError(
                f"fastpath has no distance kernel for metric {name!r}"
            )
        if len(self._dist_cache) >= 8:
            self._dist_cache.pop(next(iter(self._dist_cache)))
        self._dist_cache[(sx, sy)] = dist
        return dist

    def localize(self, node: Coord, other: Coord) -> Coord:
        """``other`` in ``node``'s unwrapped local frame (the fastpath
        twin of :meth:`repro.radio.node.Context.localize`)."""
        dx, dy = self.topology.toroidal_delta(node, other)
        return (node[0] + dx, node[1] + dy)
