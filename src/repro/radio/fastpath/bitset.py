"""Packed boolean node state for the vectorized kernels.

A side-1000 torus has a million nodes; the kernels track several
per-node booleans (committed, protocol-active, announced).  A numpy
``bool_`` array spends a full byte per flag -- tolerable alone, but the
flags are the *mutable* state that must live alongside the tally
matrices, and the memory budget at side 1000+ is the point of this
module.  :class:`PackedBits` stores eight flags per byte and exposes
exactly the three operations the kernels need: a vectorized gather
(``get``), a duplicate-safe scatter (``set_true`` / ``set_false``), and
a full unpack for result assembly.

The scatter uses ``np.bitwise_or.at`` / ``np.bitwise_and.at`` -- the
unbuffered ufunc forms -- so several indices landing in the same byte
(or the same index twice) all take effect.
"""

from __future__ import annotations

from repro.radio.fastpath.compat import require_numpy


class PackedBits:
    """``n`` boolean flags packed 8-per-byte (little-endian bit order)."""

    __slots__ = ("n", "words", "_np")

    def __init__(self, n: int, fill: bool = False) -> None:
        np = require_numpy()
        self._np = np
        self.n = int(n)
        nwords = (self.n + 7) >> 3
        self.words = np.full(
            nwords, 0xFF if fill else 0x00, dtype=np.uint8
        )

    def get(self, idxs):
        """Flag values at ``idxs`` (any integer array shape) as bool."""
        np = self._np
        return (
            (self.words[idxs >> 3] >> (idxs & 7).astype(np.uint8)) & 1
        ).astype(bool)

    def set_true(self, idxs) -> None:
        """Set the flags at ``idxs`` (duplicates allowed)."""
        np = self._np
        np.bitwise_or.at(
            self.words,
            idxs >> 3,
            np.left_shift(
                np.uint8(1), (idxs & 7).astype(np.uint8)
            ),
        )

    def set_false(self, idxs) -> None:
        """Clear the flags at ``idxs`` (duplicates allowed)."""
        np = self._np
        np.bitwise_and.at(
            self.words,
            idxs >> 3,
            np.invert(
                np.left_shift(
                    np.uint8(1), (idxs & 7).astype(np.uint8)
                )
            ),
        )

    def to_list(self):
        """All ``n`` flags as a plain Python ``list[bool]``."""
        np = self._np
        bits = np.unpackbits(self.words, bitorder="little")[: self.n]
        return bits.astype(bool).tolist()

    def to_array(self):
        """All ``n`` flags as a numpy bool array (a fresh copy)."""
        np = self._np
        return (
            np.unpackbits(self.words, bitorder="little")[: self.n]
        ).astype(bool)
