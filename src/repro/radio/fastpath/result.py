"""Result types for fastpath runs.

The reference engine's :class:`~repro.radio.engine.SimulationResult`
exposes per-node :class:`~repro.radio.node.NodeProcess` objects; the
fastpath kernels keep no such objects.  To stay drop-in compatible with
:func:`~repro.radio.run.grade_outcome` and every downstream consumer,
a fastpath run materializes a ``processes`` map of tiny *views*: every
committed node shares one flyweight carrying the broadcast value, every
undecided node shares another.  Two objects total, regardless of grid
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from repro.geometry.coords import Coord
from repro.radio.engine import SimulationResult
from repro.radio.trace import Trace


class _CommitView:
    """Read-only stand-in for a :class:`NodeProcess` after a run.

    Supports exactly the post-mortem surface ``SimulationResult`` and
    ``grade_outcome`` use: :meth:`committed_value` / :meth:`is_decided`.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Any) -> None:
        self._value = value

    def committed_value(self) -> Any:
        return self._value

    def is_decided(self) -> bool:
        return self._value is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_CommitView(value={self._value!r})"


@dataclass
class FastSimulationResult(SimulationResult):
    """A :class:`SimulationResult` produced by the fastpath backend.

    Identical shape and semantics; the subclass exists so callers (and
    tests) can tell which backend produced a result without an extra
    field changing equality or serialization.
    """

    engine: str = "fastpath"


def build_processes(
    all_nodes: Iterable[Coord],
    committed_flags: Iterable[bool],
    value: Any,
    wrong_values: Optional[Dict[Coord, Any]] = None,
) -> Dict[Coord, _CommitView]:
    """The post-mortem ``processes`` map: shared views, not node objects.

    ``all_nodes`` and ``committed_flags`` are aligned (flat-index
    order); flagged nodes commit to ``value``, every other node
    (including faulty ones, mirroring the reference engine's
    ``SilentProcess`` entries) reports undecided.  ``wrong_values``
    patches in the (Byzantine-induced) exceptions: nodes that committed
    some other value get a view of their own.
    """
    committed_view = _CommitView(value)
    undecided_view = _CommitView(None)
    processes = {
        node: committed_view if flag else undecided_view
        for node, flag in zip(all_nodes, committed_flags)
    }
    for node, wrong in (wrong_values or {}).items():
        processes[node] = _CommitView(wrong)
    return processes


def build_trace(
    *,
    rounds: int,
    transmissions: int,
    deliveries: int,
    crashes: int,
    tx_by_node: Dict[Coord, int],
    tx_by_round: Dict[int, int],
) -> Trace:
    """A populated aggregate-only :class:`Trace` (no per-event log).

    The fastpath backend never records individual events (it refuses
    ``record_events=True`` at validation time), but fills every
    aggregate the reference engine would have filled so
    ``trace.summary()`` and the cost benchmarks agree byte-for-byte.
    """
    trace = Trace(record_events=False)
    trace.rounds = rounds
    trace.transmissions = transmissions
    trace.deliveries = deliveries
    trace.crashes = crashes
    trace.tx_by_node = dict(tx_by_node)
    trace.tx_by_round = dict(tx_by_round)
    return trace
