"""Fully vectorized crash-flood kernel.

Why this protocol collapses to array updates: under crash-stop faults
every message on the air carries the source's value (only the true
source sends ``SourceMsg``; everything else is a ``COMMITTED`` relay),
so *every* delivered message commits any correct, uncommitted receiver.
Per-node state is just two lattices -- ``committed`` (bool) and
``pending`` (outbox depth: 2 for the source's SRC+COMMITTED burst, 1
for a relay, 0 otherwise) -- and one TDMA slot is one gather/scatter
over the on-the-fly ball stencil (:meth:`Lattice.balls_of`); the
``committed`` flags live in a :class:`PackedBits` bitset.

Exactness relies on a schedule invariant the reference engine also
depends on: nodes sharing a TDMA slot are >= 2r+1 apart, so their
delivery balls are disjoint (under every metric, since L1/L2 >= Linf)
and each receiver hears at most one transmitter per slot.  Firing a
slot as one batch therefore preserves the reference engine's exact
per-receiver message order, and a single forward pass over the slots
reproduces the in-round commit cascade (a node committing in slot s
relays in its own slot s' > s within the same frame; s' < s rolls to
the next frame; s' == s is impossible because co-slotted nodes are out
of each other's range).

The slot loop is frontier-driven: instead of scanning every slot group
for pending transmitters each round (O(N) per slot), freshly committed
relays are bucketed into per-slot ready queues the moment they commit,
so each round costs O(active transmitters), not O(N x slots).  Only
correct nodes ever enter a queue (faulty nodes run ``SilentProcess``
in the reference engine and never relay; the designated source is
validated correct), so no crash check is needed on transmitters.

The message budget keeps the reference semantics: the check fires
*before* each send, so a slot that fits entirely within the remaining
budget is fired as one batch, and only the slot that would overrun it
falls back to a per-message scalar loop (in node order) to stop at
exactly the same message the reference engine stops at.
"""

from __future__ import annotations

from itertools import repeat
from typing import List, Optional

from repro.radio.fastpath.bitset import PackedBits
from repro.radio.fastpath.compat import require_numpy
from repro.radio.fastpath.lattice import Lattice
from repro.radio.fastpath.stats import KernelStats, SourceTracker


def run_crash_flood_kernel(
    lattice: Lattice,
    *,
    source_idx: int,
    correct,
    crash_rounds,
    max_rounds: int,
    max_messages: Optional[int],
    trackers: List[SourceTracker],
) -> KernelStats:
    """Simulate crash-flood on ``lattice`` and return its statistics.

    Parameters
    ----------
    correct:
        ``(N,)`` bool mask of correct nodes.
    crash_rounds:
        ``(N,)`` int64 crash round per node; a huge sentinel (anything
        above ``max_rounds``) for nodes that never crash.  A node is
        dead during round ``x`` iff ``crash_rounds[node] <= x``.
    trackers:
        One :class:`SourceTracker` per distinct observer source (empty
        when no observer needs wave-fronts).
    """
    np = require_numpy()
    stats = KernelStats()
    K = lattice.ball_size
    coords = lattice.coords_all
    slot_of = lattice.slot_of
    num_slots = len(lattice.slot_groups)

    committed = PackedBits(lattice.num_nodes)
    pending = np.zeros(lattice.num_nodes, dtype=np.int64)
    tx_arr = np.zeros(lattice.num_nodes, dtype=np.int64)
    rx_arr = np.zeros(lattice.num_nodes, dtype=np.int64)

    def record_commits(idxs, round_: int) -> None:
        """Commit the nodes in ``idxs`` with observation round ``round_``."""
        committed.set_true(idxs)
        lst = idxs.tolist()
        stats.commit_round.update(
            zip([coords[i] for i in lst], repeat(round_))
        )
        stats.commits_by_round[round_] = stats.commits_by_round.get(
            round_, 0
        ) + len(lst)
        for tr in trackers:
            tr.on_committed(idxs)

    # per-slot ready queues: ``queue`` is the frame being fired,
    # ``ready_next`` the frame after it; route() buckets fresh relays
    queue: List[List] = []
    ready_next: List[List] = [[] for _ in range(num_slots)]

    def route(idxs, current_slot: int) -> None:
        """Enqueue fresh relays: own slot after ``current_slot`` fires
        this frame, at-or-before rolls to the next frame (equal is
        impossible -- co-slotted nodes are out of range).  One argsort
        plus boundary slicing; within-bucket order is irrelevant (the
        batch path is order-free and the scalar fallback re-sorts)."""
        fslots = slot_of[idxs]
        order = np.argsort(fslots)
        si = idxs[order]
        ss = fslots[order]
        bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
        starts = [0, *bounds.tolist()]
        ends = [*bounds.tolist(), len(ss)]
        for a, b in zip(starts, ends):
            s2 = int(ss[a])
            (queue if s2 > current_slot else ready_next)[s2].append(
                si[a:b]
            )

    # -- start phase (round -1): the source broadcasts SRC + COMMITTED
    # and commits; dead-from-start crashes are announced.
    record_commits(np.asarray([source_idx], dtype=np.int64), -1)
    pending[source_idx] = 2
    pending_total = 2
    ready_next[int(slot_of[source_idx])].append(
        np.asarray([source_idx], dtype=np.int64)
    )
    stats.crashes = int((crash_rounds == 0).sum())

    budget = max_messages
    tx_total = 0
    rounds = 0
    quiescent = False
    hit_rounds = False
    hit_messages = False
    r = 0
    while True:
        if r >= max_rounds:
            hit_rounds = True
            break
        if r > 0:
            # crash_rounds == 0 nodes were announced during the start
            # phase; later crashes announce when their round executes
            stats.crashes += int((crash_rounds == r).sum())
        queue = ready_next
        ready_next = [[] for _ in range(num_slots)]
        tx_round = 0
        obs_del_round = 0
        tripped = False
        for s in range(num_slots):
            parts = queue[s]
            if not parts:
                continue
            txers = parts[0] if len(parts) == 1 else np.concatenate(parts)
            msgs = pending[txers]
            demand = int(msgs.sum())
            if budget is None or tx_total + demand <= budget:
                # the whole slot fits in the budget: fire it as a batch
                tx_total += demand
                tx_round += demand
                pending_total -= demand
                stats.fanout_deliveries += demand * K
                tx_arr[txers] += msgs
                pending[txers] = 0
                balls = lattice.balls_of(txers)  # (m, K) receiver indices
                alive = crash_rounds[balls] > r
                delivered = balls[alive]
                if delivered.size:
                    # each receiver hears its (single) in-range sender's
                    # whole burst: weight = that sender's message count.
                    # Ball disjointness makes `delivered` duplicate-free,
                    # so fancy-index += is exact.
                    if demand == txers.size:  # all single-message relays
                        obs_del_round += int(delivered.size)
                        rx_arr[delivered] += 1
                    else:
                        weights = np.broadcast_to(
                            msgs[:, None], balls.shape
                        )[alive]
                        obs_del_round += int(weights.sum())
                        rx_arr[delivered] += weights
                    for tr in trackers:
                        tr.on_delivered(delivered)
                    fresh = delivered[
                        correct[delivered] & ~committed.get(delivered)
                    ]
                    if fresh.size:
                        record_commits(fresh, r)
                        pending[fresh] = 1
                        pending_total += int(fresh.size)
                        route(fresh, s)
            else:
                # budget trips inside this slot: replay it per message,
                # in node order, stopping exactly where the reference
                # engine's pre-send check stops
                for txer in np.sort(txers).tolist():
                    while pending[txer] > 0:
                        if tx_total >= budget:
                            tripped = True
                            break
                        pending[txer] -= 1
                        pending_total -= 1
                        tx_total += 1
                        tx_round += 1
                        stats.fanout_deliveries += K
                        tx_arr[txer] += 1
                        ball = lattice.ball_of(txer)
                        delivered = ball[crash_rounds[ball] > r]
                        if delivered.size:
                            obs_del_round += int(delivered.size)
                            rx_arr[delivered] += 1
                            for tr in trackers:
                                tr.on_delivered(delivered)
                            fresh = delivered[
                                correct[delivered]
                                & ~committed.get(delivered)
                            ]
                            if fresh.size:
                                record_commits(fresh, r)
                                pending[fresh] = 1
                                pending_total += int(fresh.size)
                                route(fresh, s)
                    if tripped:
                        break
            if tripped:
                break
        # close the round: budget-truncated partial rounds still count
        if tx_round:
            stats.tx_by_round[r] = tx_round
        if obs_del_round:
            stats.deliveries_by_round[r] = obs_del_round
        for tr in trackers:
            tr.snapshot(r)
        rounds = r + 1
        if tripped:
            hit_messages = True
            break
        if tx_round == 0 and pending_total == 0:
            quiescent = True
            break
        r += 1

    stats.rounds = rounds
    stats.quiescent = quiescent
    stats.hit_round_limit = hit_rounds
    stats.hit_message_limit = hit_messages
    stats.transmissions = tx_total
    stats.obs_deliveries = sum(stats.deliveries_by_round.values())
    nz = np.flatnonzero(tx_arr).tolist()
    stats.tx_by_node = dict(
        zip([coords[i] for i in nz], tx_arr[nz].tolist())
    )
    nz = np.flatnonzero(rx_arr).tolist()
    stats.rx_by_node = dict(
        zip([coords[i] for i in nz], rx_arr[nz].tolist())
    )
    stats.committed_mask = committed.to_list()
    return stats
