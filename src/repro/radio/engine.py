"""The synchronous TDMA simulation engine.

One engine ``run()`` simulates the paper's channel model to quiescence:

1. every process gets ``on_start`` (round -1, before any transmission);
2. each round executes one TDMA frame: slots fire in order, and each node
   scheduled in the firing slot drains its outbox, one envelope at a time;
3. every transmission is delivered *atomically* to the transmitter's whole
   neighborhood, in global transmission order (reliable local broadcast);
4. the run ends when a round completes with every outbox empty
   (quiescence) or a safety valve (``max_rounds`` / ``max_messages``)
   trips.

Determinism: given the same topology, schedule, processes and crash map,
two runs produce identical traces.  Randomized adversaries draw from their
own seeded generators, never from global state.

Crash-stop faults live here: a node with ``crash_round[v] = k`` executes
correctly during rounds ``0 .. k-1`` and is inert from round ``k`` on (it
neither transmits -- its outbox is discarded -- nor processes receptions).
``k = 0`` models a node that was dead from the start.  Because the channel
is atomic, there is no "partial broadcast" failure mode to model: each
transmission reaches all neighbors or (if the sender crashed before its
slot) none, which is exactly the paper's crash-stop semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.errors import ConfigurationError, SimulationLimitError
from repro.radio.channel import PERFECT_CHANNEL, ChannelImperfections
from repro.geometry.coords import Coord
from repro.grid.tdma import TDMASchedule, make_schedule
from repro.grid.topology import Topology
from repro.radio.messages import Envelope
from repro.radio.node import Context, NodeProcess, SilentProcess
from repro.radio.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import EngineObserver
    from repro.obs.profile import PhaseProfiler

_INFINITY = float("inf")


@dataclass
class SimulationResult:
    """Outcome of an engine run.

    ``processes`` and ``contexts`` give post-mortem access to final node
    state; ``quiescent`` distinguishes a clean finish from a safety-valve
    stop.
    """

    rounds: int
    quiescent: bool
    hit_round_limit: bool
    hit_message_limit: bool
    trace: Trace
    processes: Dict[Coord, NodeProcess]
    crash_round: Dict[Coord, int] = field(default_factory=dict)

    def committed(self) -> Dict[Coord, Any]:
        """Map of node -> committed value, for nodes that decided."""
        out: Dict[Coord, Any] = {}
        for node, proc in self.processes.items():
            value = proc.committed_value()
            if value is not None:
                out[node] = value
        return out

    def decided_nodes(self) -> List[Coord]:
        """Nodes that committed to some value."""
        return sorted(n for n, p in self.processes.items() if p.is_decided())

    def undecided_nodes(self) -> List[Coord]:
        """Nodes that never committed."""
        return sorted(n for n, p in self.processes.items() if not p.is_decided())


class Engine:
    """Deterministic synchronous-round radio network simulator."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[Coord, NodeProcess],
        *,
        schedule: Optional[TDMASchedule] = None,
        crash_round: Optional[Mapping[Coord, int]] = None,
        max_rounds: int = 10_000,
        max_messages: Optional[int] = None,
        record_events: bool = False,
        on_limit: str = "stop",
        channel: Optional["ChannelImperfections"] = None,
        quiescent_after_idle_rounds: int = 1,
        delivery: str = "immediate",
        observers: Optional[Sequence["EngineObserver"]] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Configure a simulation.

        Parameters
        ----------
        topology:
            A finite topology (typically :class:`~repro.grid.torus.Torus`).
        processes:
            Node -> program.  Nodes of the topology absent from the mapping
            run :class:`~repro.radio.node.SilentProcess` (useful for
            analytic setups); keys not on the topology are an error.
        schedule:
            TDMA schedule; defaults to
            :func:`repro.grid.tdma.make_schedule`.
        crash_round:
            Crash-stop fault map (see module docstring).
        max_rounds / max_messages:
            Safety valves.  With ``on_limit="stop"`` (default) a tripped
            valve ends the run with the corresponding flag set on the
            result; with ``on_limit="raise"`` it raises
            :class:`~repro.errors.SimulationLimitError`.
        record_events:
            Keep a full per-transmission event log in the trace.
        channel:
            Channel-model deviations (spoofing, jamming, loss,
            retransmission); defaults to the paper's perfect channel.  See
            :mod:`repro.radio.channel`.
        quiescent_after_idle_rounds:
            How many consecutive silent rounds (zero transmissions, all
            live outboxes empty) end the run.  The default (1) suits
            message-driven protocols; raise it when processes schedule
            transmissions for future rounds.
        delivery:
            ``"immediate"`` (default): a transmission is processed by
            receivers within its own slot, so reactions can cascade
            through one TDMA frame (the realistic channel timing).
            ``"end-of-round"``: receptions are buffered and processed at
            the start of the next round -- the classic synchronous-rounds
            model, under which wave/latency measurements count protocol
            *steps* (one pnbd hop per round).  Both modes satisfy every
            ordering/atomicity invariant; only timing granularity differs.
        observers:
            :class:`~repro.obs.metrics.EngineObserver` instances notified
            at transmission / delivery / commit / crash / round points.
            Observers are pure listeners: the simulation computes exactly
            the same run with or without them.  Default: none (and then
            no collector state is allocated).
        profiler:
            A :class:`~repro.obs.profile.PhaseProfiler` accumulating
            wall-clock time per hot-loop phase; ``None`` (default)
            disables profiling at the cost of one ``is not None`` check
            per phase boundary.
        """
        if not topology.is_finite:
            raise ConfigurationError("the engine requires a finite topology")
        if on_limit not in ("stop", "raise"):
            raise ConfigurationError(
                f'on_limit must be "stop" or "raise", got {on_limit!r}'
            )
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.topology = topology
        self._all_nodes: List[Coord] = sorted(topology.nodes())
        node_set = set(self._all_nodes)
        for node in processes:
            if topology.canonical(node) not in node_set:
                raise ConfigurationError(f"process given for non-node {node}")
        # explicit None check: a process whose class defines a falsy
        # __bool__/__len__ is still a real process, not a silent node
        self.processes: Dict[Coord, NodeProcess] = {}
        for node in self._all_nodes:
            given = processes.get(node)
            self.processes[node] = SilentProcess() if given is None else given
        # accept processes keyed by non-canonical coordinates
        for node, proc in processes.items():
            self.processes[topology.canonical(node)] = proc
        self.schedule = schedule or make_schedule(topology)
        for node in self._all_nodes:
            if node not in self.schedule:
                raise ConfigurationError(f"schedule misses node {node}")
        self.crash_round: Dict[Coord, int] = {}
        for node, rnd in (crash_round or {}).items():
            if rnd < 0:
                raise ConfigurationError(
                    f"crash round for {node} must be >= 0, got {rnd}"
                )
            self.crash_round[topology.canonical(node)] = int(rnd)
        self.max_rounds = max_rounds
        self.max_messages = max_messages
        self._on_limit = on_limit
        if quiescent_after_idle_rounds < 1:
            raise ConfigurationError(
                "quiescent_after_idle_rounds must be >= 1, got "
                f"{quiescent_after_idle_rounds}"
            )
        if delivery not in ("immediate", "end-of-round"):
            raise ConfigurationError(
                f'delivery must be "immediate" or "end-of-round", '
                f"got {delivery!r}"
            )
        self.delivery = delivery
        self._pending_deliveries: List[Tuple[Envelope, Tuple[Coord, ...]]] = []
        self.quiescent_after_idle_rounds = quiescent_after_idle_rounds
        self.channel = channel or PERFECT_CHANNEL
        self._loss_rng = (
            self.channel.make_rng() if self.channel.loss_rate > 0 else None
        )
        self._jammers_this_round: Set[Coord] = set()
        self._jam_counts: Dict[Coord, int] = {}
        self.trace = Trace(record_events=record_events)
        self.round = -1  # on_start happens "before time"
        self._seq = 0
        self._neighbors: Dict[Coord, Tuple[Coord, ...]] = {
            node: topology.neighbors(node) for node in self._all_nodes
        }
        self._contexts: Dict[Coord, Context] = {
            node: Context(node, self) for node in self._all_nodes
        }
        self._started = False
        self._observers: Tuple["EngineObserver", ...] = tuple(observers or ())
        self._profiler = profiler
        #: nodes whose commit has already been reported to observers
        self._decided: Set[Coord] = set()
        #: nodes whose crash has already been announced (a node dead from
        #: the start would otherwise be announced twice: once in _start,
        #: once when round 0 skips it)
        self._announced_crashes: Set[Coord] = set()

    # ------------------------------------------------------------------

    def context_of(self, node: Coord) -> Context:
        """The context object of a node (post-mortem inspection)."""
        return self._contexts[self.topology.canonical(node)]

    def _is_crashed(self, node: Coord, at_round: int) -> bool:
        rnd = self.crash_round.get(node)
        return rnd is not None and at_round >= rnd

    def _announce_crash(self, node: Coord, round_: int) -> None:
        """Record a crash exactly once in the trace and to observers."""
        if node in self._announced_crashes:
            return
        self._announced_crashes.add(node)
        self.trace.on_crash(node, round_)
        for obs in self._observers:
            obs.on_crash(node, round_)

    def _sweep_commits(self) -> None:
        """Report newly committed nodes to observers (observer runs only).

        A process commits inside its own hooks; the engine notices the
        transition by polling ``committed_value`` once per node per
        round, in canonical node order, so commit events are emitted
        deterministically and at round granularity.
        """
        for node in self._all_nodes:
            if node in self._decided:
                continue
            value = self.processes[node].committed_value()
            if value is not None:
                self._decided.add(node)
                for obs in self._observers:
                    obs.on_commit(node, self.round, value)

    def _start(self) -> None:
        self._started = True
        for obs in self._observers:
            obs.on_run_start(self)
        for node in self._all_nodes:
            if self._is_crashed(node, 0):
                # dead from the start: never runs a single instruction
                self._announce_crash(node, 0)
                continue
            self.processes[node].on_start(self._contexts[node])
        if self._observers:
            # commits made during on_start are reported at round -1
            self._sweep_commits()

    def _register_jam(self, node: Coord) -> bool:
        """Activate ``node``'s jammer for the current round (within the
        configured per-node budget).  Returns whether the jam is live."""
        budget = self.channel.max_jam_rounds_per_node
        spent = self._jam_counts.get(node, 0)
        if budget is not None and spent >= budget:
            return False
        if node not in self._jammers_this_round:
            self._jammers_this_round.add(node)
            self._jam_counts[node] = spent + 1
        return True

    def _is_jammed(self, receiver: Coord) -> bool:
        """Whether a receiver is inside any active jammer's radius (or is
        itself jamming -- a transmitting radio cannot listen)."""
        if not self._jammers_this_round:
            return False
        if receiver in self._jammers_this_round:
            return True
        return any(
            receiver in self._neighbors[j]
            for j in sorted(self._jammers_this_round)
        )

    def _transmit(self, node: Coord, slot: int) -> bool:
        """Drain ``node``'s outbox in its slot.  Returns False when the
        message budget tripped."""
        ctx = self._contexts[node]
        outbox = ctx._outbox
        copies = self.channel.tx_copies
        prof = self._profiler
        while outbox:
            if (
                self.max_messages is not None
                and self.trace.transmissions >= self.max_messages
            ):
                return False
            payload, claimed = outbox.popleft()
            sender = node if claimed is None else claimed
            receivers = self._neighbors[node]
            for _copy in range(copies):
                env = Envelope(
                    sender=sender,
                    payload=payload,
                    seq=self._seq,
                    round=self.round,
                    slot=slot,
                )
                self._seq += 1
                self.trace.on_transmission(env, len(receivers))
                for obs in self._observers:
                    obs.on_transmission(env, receivers)
                survivors = []
                for nb in receivers:
                    if self._is_crashed(nb, self.round):
                        continue
                    if self._is_jammed(nb):
                        continue
                    if (
                        self._loss_rng is not None
                        and self._loss_rng.random() < self.channel.loss_rate
                    ):
                        continue
                    survivors.append(nb)
                if self.delivery == "end-of-round":
                    self._pending_deliveries.append((env, tuple(survivors)))
                    continue
                t0 = prof.begin() if prof is not None else 0.0
                for nb in survivors:
                    for obs in self._observers:
                        obs.on_delivery(nb, env)
                    nb_ctx = self._contexts[nb]
                    if nb_ctx.halted:
                        continue
                    self.processes[nb].on_receive(nb_ctx, env)
                if prof is not None:
                    prof.end("deliver", t0)
        return True

    def _flush_pending_deliveries(self) -> None:
        """End-of-round mode: hand last round's receptions to receivers
        (in global transmission order) before this round's hooks run."""
        pending, self._pending_deliveries = self._pending_deliveries, []
        for env, receivers in pending:
            for nb in receivers:
                if self._is_crashed(nb, self.round):
                    continue
                for obs in self._observers:
                    obs.on_delivery(nb, env)
                nb_ctx = self._contexts[nb]
                if nb_ctx.halted:
                    continue
                self.processes[nb].on_receive(nb_ctx, env)

    def _close_round(self) -> None:
        """Account the current round in the trace and to observers.

        Called for completed frames *and* for frames truncated by the
        message budget: a partially executed round still happened, so
        ``SimulationResult.rounds`` and ``engine.round`` agree either
        way (the budget-stop accounting fix).
        """
        prof = self._profiler
        t0 = prof.begin() if prof is not None else 0.0
        if self._observers:
            self._sweep_commits()
            for obs in self._observers:
                obs.on_round_end(self.round)
        if prof is not None:
            prof.end("observe", t0)
        self.trace.on_round_end(self.round)

    def _run_round(self) -> bool:
        """Execute one TDMA frame.  Returns False if a message-budget stop
        occurred mid-frame."""
        self._jammers_this_round.clear()
        prof = self._profiler
        for obs in self._observers:
            obs.on_round_start(self.round)
        if self._pending_deliveries:
            t0 = prof.begin() if prof is not None else 0.0
            self._flush_pending_deliveries()
            if prof is not None:
                prof.end("deliver", t0)
        t0 = prof.begin() if prof is not None else 0.0
        for node in self._all_nodes:
            if self._is_crashed(node, self.round):
                if self.crash_round.get(node) == self.round:
                    self._announce_crash(node, self.round)
                    self._contexts[node]._outbox.clear()
                continue
            ctx = self._contexts[node]
            if not ctx.halted:
                self.processes[node].on_round(ctx)
        if prof is not None:
            prof.end("round_hooks", t0)
            t0 = prof.begin()
        for slot, group in enumerate(self.schedule.slots):
            for node in group:
                if self._is_crashed(node, self.round):
                    self._contexts[node]._outbox.clear()
                    continue
                if not self._transmit(node, slot):
                    if prof is not None:
                        prof.end("transmit", t0)
                    self._close_round()
                    return False
        if prof is not None:
            prof.end("transmit", t0)
            t0 = prof.begin()
        for node in self._all_nodes:
            if self._is_crashed(node, self.round):
                continue
            ctx = self._contexts[node]
            if not ctx.halted:
                self.processes[node].on_round_end(ctx)
        if prof is not None:
            prof.end("round_end_hooks", t0)
        self._close_round()
        return True

    def _quiescent(self, tx_this_round: int) -> bool:
        """A run is quiescent after a round that transmitted nothing and
        left every live outbox empty.  Requiring zero transmissions (not
        just empty outboxes) keeps timer-driven processes (``on_round``
        producers) running: they get re-invoked until a whole round passes
        in silence."""
        if tx_this_round or self._pending_deliveries:
            return False
        return all(
            not ctx._outbox or self._is_crashed(node, self.round + 1)
            for node, ctx in self._contexts.items()
        )

    def run(self) -> SimulationResult:
        """Run to quiescence (or a safety valve) and return the result."""
        if not self._started:
            self._start()
        hit_rounds = False
        hit_messages = False
        quiescent = False
        idle_streak = 0
        while True:
            self.round += 1
            if self.round >= self.max_rounds:
                hit_rounds = True
                self.round -= 1
                break
            tx_before = self.trace.transmissions
            budget_ok = self._run_round()
            if not budget_ok:
                hit_messages = True
                break
            if self._quiescent(self.trace.transmissions - tx_before):
                idle_streak += 1
                if idle_streak >= self.quiescent_after_idle_rounds:
                    quiescent = True
                    break
            else:
                idle_streak = 0
        if (hit_rounds or hit_messages) and self._on_limit == "raise":
            what = "round" if hit_rounds else "message"
            raise SimulationLimitError(
                f"simulation exceeded its {what} budget "
                f"(rounds={self.round + 1}, "
                f"messages={self.trace.transmissions})"
            )
        result = SimulationResult(
            rounds=self.trace.rounds,
            quiescent=quiescent,
            hit_round_limit=hit_rounds,
            hit_message_limit=hit_messages,
            trace=self.trace,
            processes=dict(self.processes),
            crash_round=dict(self.crash_round),
        )
        for obs in self._observers:
            obs.on_run_end(result)
        return result
