"""Simulation tracing.

A :class:`Trace` records what happened on the air: every transmission,
optionally every delivery, plus per-round aggregates.  Traces power the
protocol-cost benchmarks (message and round complexity) and make failed
runs debuggable; they are off by default because full delivery logs are
large (every transmission fans out to a whole neighborhood).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.geometry.coords import Coord
from repro.radio.messages import Envelope


@dataclass(frozen=True)
class TraceEvent:
    """One logged channel event.

    ``kind`` is ``"tx"`` for a transmission or ``"crash"`` for a node
    crash becoming effective.  Deliveries are not logged individually
    (derivable: a tx is delivered to the sender's whole neighborhood) but
    are counted in the aggregates.
    """

    kind: str
    round: int
    slot: int
    node: Coord
    payload: Any = None
    seq: Optional[int] = None


@dataclass
class Trace:
    """Accumulates events and aggregates during a simulation run."""

    record_events: bool = False
    events: List[TraceEvent] = field(default_factory=list)
    transmissions: int = 0
    deliveries: int = 0
    rounds: int = 0
    crashes: int = 0
    tx_by_node: Dict[Coord, int] = field(default_factory=dict)
    tx_by_round: Dict[int, int] = field(default_factory=dict)

    def on_transmission(self, env: Envelope, fanout: int) -> None:
        """Record a transmission delivered to ``fanout`` receivers."""
        self.transmissions += 1
        self.deliveries += fanout
        self.tx_by_node[env.sender] = self.tx_by_node.get(env.sender, 0) + 1
        self.tx_by_round[env.round] = self.tx_by_round.get(env.round, 0) + 1
        if self.record_events:
            self.events.append(
                TraceEvent(
                    kind="tx",
                    round=env.round,
                    slot=env.slot,
                    node=env.sender,
                    payload=env.payload,
                    seq=env.seq,
                )
            )

    def on_crash(self, node: Coord, round_: int) -> None:
        """Record a crash taking effect at the start of ``round_``.

        The engine announces each crash exactly once; the count feeds
        :meth:`summary` whether or not events are recorded.
        """
        self.crashes += 1
        if self.record_events:
            self.events.append(
                TraceEvent(kind="crash", round=round_, slot=-1, node=node)
            )

    def on_round_end(self, round_: int) -> None:
        """Mark a completed round."""
        self.rounds = max(self.rounds, round_ + 1)

    def transmissions_of(self, node: Coord) -> int:
        """Total transmissions made by ``node``."""
        return self.tx_by_node.get(node, 0)

    def busiest_round(self) -> Tuple[int, int]:
        """``(round, tx_count)`` of the round with the most transmissions;
        ``(-1, 0)`` if nothing was transmitted."""
        if not self.tx_by_round:
            return (-1, 0)
        rd = max(self.tx_by_round, key=lambda k: (self.tx_by_round[k], -k))
        return (rd, self.tx_by_round[rd])

    def summary(self) -> Dict[str, int]:
        """Aggregate counters as a plain dict (stable keys, log-friendly)."""
        return {
            "rounds": self.rounds,
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "transmitting_nodes": len(self.tx_by_node),
            "crashes": self.crashes,
        }
