"""High-level broadcast runner and outcome classification.

:func:`run_broadcast` wires a process map into an engine, runs it, and
grades the run against the paper's two requirements:

- **safety** (paper Thm 2): no *correct* node commits to a value other
  than the source's;
- **liveness / completeness** (paper Thm 3): every correct node eventually
  commits.

Reliable broadcast is *achieved* on a run iff both hold.  Faulty nodes
(Byzantine or crashed) are excluded from both checks -- the paper demands
nothing of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set

from repro.geometry.coords import Coord
from repro.grid.tdma import TDMASchedule
from repro.grid.topology import Topology
from repro.radio.engine import Engine, SimulationResult
from repro.radio.node import NodeProcess


@dataclass
class BroadcastOutcome:
    """A graded broadcast run.

    Attributes
    ----------
    safe:
        ``True`` iff no correct node committed a wrong value.
    live:
        ``True`` iff every correct node committed.
    achieved:
        ``safe and live`` -- the paper's "reliable broadcast achieved".
    wrong_commits / undecided:
        The offending nodes, for diagnosis (both empty on success).
    result:
        The underlying :class:`~repro.radio.engine.SimulationResult`.
    """

    value: Any
    correct_nodes: FrozenSet[Coord]
    safe: bool
    live: bool
    wrong_commits: Dict[Coord, Any]
    undecided: List[Coord]
    result: SimulationResult

    @property
    def achieved(self) -> bool:
        """Whether reliable broadcast was achieved on this run."""
        return self.safe and self.live

    @property
    def rounds(self) -> int:
        """Rounds the run took."""
        return self.result.rounds

    @property
    def messages(self) -> int:
        """Total transmissions on the channel."""
        return self.result.trace.transmissions

    def summary(self) -> Dict[str, Any]:
        """Compact log-friendly summary."""
        return {
            "achieved": self.achieved,
            "safe": self.safe,
            "live": self.live,
            "wrong_commits": len(self.wrong_commits),
            "undecided": len(self.undecided),
            "rounds": self.rounds,
            "messages": self.messages,
        }


def grade_outcome(
    result: SimulationResult,
    value: Any,
    correct_nodes: Set[Coord],
) -> BroadcastOutcome:
    """Grade a finished simulation against safety and liveness."""
    wrong: Dict[Coord, Any] = {}
    undecided: List[Coord] = []
    for node in sorted(correct_nodes):
        committed = result.processes[node].committed_value()
        if committed is None:
            undecided.append(node)
        elif committed != value:
            wrong[node] = committed
    return BroadcastOutcome(
        value=value,
        correct_nodes=frozenset(correct_nodes),
        safe=not wrong,
        live=not undecided,
        wrong_commits=wrong,
        undecided=undecided,
        result=result,
    )


def run_broadcast(
    topology: Topology,
    processes: Mapping[Coord, NodeProcess],
    value: Any,
    correct_nodes: Set[Coord],
    *,
    schedule: Optional[TDMASchedule] = None,
    crash_round: Optional[Mapping[Coord, int]] = None,
    max_rounds: int = 10_000,
    max_messages: Optional[int] = None,
    record_events: bool = False,
    channel=None,
    delivery: str = "immediate",
    observers=None,
    profiler=None,
) -> BroadcastOutcome:
    """Run a configured broadcast and grade the outcome.

    ``correct_nodes`` is the set the grading quantifies over; the caller
    (usually a :mod:`repro.faults` scenario builder) knows which nodes are
    faulty.  Crashed nodes must *not* appear in ``correct_nodes``.
    ``observers`` / ``profiler`` pass straight through to the
    :class:`~repro.radio.engine.Engine` (see :mod:`repro.obs`).
    """
    canon_correct = {topology.canonical(n) for n in correct_nodes}
    for node in crash_round or {}:
        if topology.canonical(node) in canon_correct:
            raise ValueError(
                f"node {node} is listed both correct and crashing"
            )
    engine = Engine(
        topology,
        processes,
        schedule=schedule,
        crash_round=crash_round,
        max_rounds=max_rounds,
        max_messages=max_messages,
        record_events=record_events,
        channel=channel,
        delivery=delivery,
        observers=observers,
        profiler=profiler,
    )
    result = engine.run()
    return grade_outcome(result, value, canon_correct)
