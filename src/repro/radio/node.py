"""Node processes and their interface to the engine.

A :class:`NodeProcess` is the program a node runs.  The engine calls its
hooks and hands each a :class:`Context`, through which the process can
broadcast (enqueue a payload for transmission in its next TDMA slot) and
inspect local information.  Processes never see the engine or other nodes
directly -- all interaction flows through the radio channel, exactly as in
the paper's model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple, TYPE_CHECKING

from repro.geometry.coords import Coord
from repro.radio.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.engine import Engine


class Context:
    """A node's handle on the simulated world.

    One context exists per node per simulation.  It exposes exactly what
    the model allows a node to know and do: its own identity, the current
    time (round/slot), the radio parameters, and a ``broadcast`` primitive.
    """

    __slots__ = ("node", "_engine", "_outbox", "halted")

    def __init__(self, node: Coord, engine: "Engine") -> None:
        self.node = node
        self._engine = engine
        #: queued (payload, claimed_sender) pairs; ``claimed_sender`` is
        #: ``None`` for honest broadcasts and the forged coordinate for
        #: :meth:`broadcast_as` transmissions.  A deque: the engine drains
        #: it FIFO from the left every slot, and ``popleft`` keeps that
        #: O(1) where a list's ``pop(0)`` made chatty protocols O(n^2).
        self._outbox: Deque[Tuple[Any, Optional[Coord]]] = deque()
        #: set True by a process that has terminated its local execution;
        #: the engine stops delivering to it (pure optimization -- a halted
        #: process ignores input by definition).
        self.halted: bool = False

    @property
    def r(self) -> int:
        """The transmission radius."""
        return self._engine.topology.r

    @property
    def metric_name(self) -> str:
        """Name of the distance metric in force."""
        return self._engine.topology.metric.name

    @property
    def round(self) -> int:
        """Current round (TDMA frame) index."""
        return self._engine.round

    @property
    def pending(self) -> int:
        """Number of payloads queued in this node's outbox."""
        return len(self._outbox)

    def localize(self, other: Coord) -> Coord:
        """Map another node's canonical coordinate into this node's
        unwrapped local frame.

        Nodes know the network topology (the paper's model: nodes are
        identified by grid location).  On a torus the canonical coordinate
        of a nearby node may sit across the wrap; this helper returns the
        representative of ``other`` nearest to this node, so protocol
        geometry (balls, adjacency, covering centers) can be computed in
        plain infinite-grid arithmetic.
        """
        topo = self._engine.topology
        delta = getattr(topo, "toroidal_delta", None)
        if delta is None:
            return (other[0], other[1])
        dx, dy = delta(self.node, other)
        return (self.node[0] + dx, self.node[1] + dy)

    def broadcast(self, payload: Any) -> None:
        """Queue ``payload`` for local broadcast in this node's next slot.

        Queued payloads are transmitted in FIFO order; the channel
        preserves that order at every receiver (reliable local broadcast,
        paper Section II).
        """
        self._outbox.append((payload, None))

    def broadcast_as(self, claimed_sender: Coord, payload: Any) -> None:
        """ATTACK PRIMITIVE: queue a transmission with a forged sender.

        The paper's model forbids address spoofing; unless the engine was
        explicitly configured with
        :class:`~repro.radio.channel.ChannelImperfections`
        (``allow_spoofing=True``) this raises
        :class:`~repro.errors.SpoofingError` -- the engine *enforces* the
        assumption rather than trusting node code.  Section X experiments
        enable it to demonstrate how broadcast breaks.
        """
        from repro.errors import SpoofingError

        if not self._engine.channel.allow_spoofing:
            raise SpoofingError(
                f"node {self.node} attempted to transmit as "
                f"{claimed_sender}, but the channel model forbids address "
                "spoofing (enable it via ChannelImperfections)"
            )
        canonical = self._engine.topology.canonical(claimed_sender)
        self._outbox.append((payload, canonical))

    def jam(self) -> bool:
        """ATTACK PRIMITIVE: emit noise for the rest of this round.

        Every receiver within this node's radius hears collisions (i.e.
        nothing) for the round.  Requires ``allow_jamming`` in the
        engine's :class:`~repro.radio.channel.ChannelImperfections`
        (otherwise :class:`~repro.errors.ProtocolViolationError`); when a
        per-node jam budget is configured, returns ``False`` once the
        budget is spent (the jam has no effect).
        """
        from repro.errors import ProtocolViolationError

        if not self._engine.channel.allow_jamming:
            raise ProtocolViolationError(
                f"node {self.node} attempted to jam, but the channel model "
                "forbids deliberate collisions (enable via "
                "ChannelImperfections)"
            )
        return self._engine._register_jam(self.node)

    def halt(self) -> None:
        """Terminate local protocol execution.

        Already-queued payloads are still transmitted (the node finishes
        its sends, then goes quiet) -- this matches the paper's protocols,
        which "re-broadcast once ... and then may terminate local
        execution".
        """
        self.halted = True


class NodeProcess:
    """Base class for node programs.

    Subclasses override the hooks they need.  The default implementation
    does nothing (a correct but mute node).

    Hooks
    -----
    ``on_start(ctx)``
        Called once before round 0.
    ``on_receive(ctx, env)``
        Called for every envelope transmitted by a neighbor.
    ``on_round(ctx)``
        Called at the start of every round (before any slot fires).
    """

    def on_start(self, ctx: Context) -> None:
        """One-time initialization hook."""

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        """Handle a received envelope."""

    def on_round(self, ctx: Context) -> None:
        """Per-round hook (timers, retries, ...)."""

    def on_round_end(self, ctx: Context) -> None:
        """Hook run after all of a round's slots have fired.

        Protocols with expensive commit rules batch their evaluation here:
        everything delivered during the round is visible, and any commit
        enqueues its ``COMMITTED`` broadcast before the engine's quiescence
        check, so the run cannot end with a decidable node undecided.
        """

    # -- introspection used by the harness / experiments ------------------

    def committed_value(self) -> Optional[Any]:
        """The value this node has committed to, or ``None``.

        Protocol processes override this; the harness polls it to decide
        success, safety and liveness of a broadcast run.
        """
        return None

    def is_decided(self) -> bool:
        """Whether the node has committed to some value."""
        return self.committed_value() is not None


class SilentProcess(NodeProcess):
    """A node that never transmits and ignores all input.

    Doubles as the simplest Byzantine strategy (a mute adversary) and as a
    placeholder for crashed-from-the-start nodes in analytical setups.
    """


class FunctionProcess(NodeProcess):
    """Adapt a plain receive-function into a :class:`NodeProcess`.

    Convenient in tests::

        def echo(ctx, env):
            ctx.broadcast(("echo", env.payload))

        proc = FunctionProcess(on_receive=echo)
    """

    def __init__(
        self,
        on_start: Optional[Callable[[Context], None]] = None,
        on_receive: Optional[Callable[[Context, Envelope], None]] = None,
        on_round: Optional[Callable[[Context], None]] = None,
        on_round_end: Optional[Callable[[Context], None]] = None,
    ) -> None:
        self._start = on_start
        self._receive = on_receive
        self._round = on_round
        self._round_end = on_round_end

    def on_start(self, ctx: Context) -> None:
        if self._start:
            self._start(ctx)

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        if self._receive:
            self._receive(ctx, env)

    def on_round(self, ctx: Context) -> None:
        if self._round:
            self._round(ctx)

    def on_round_end(self, ctx: Context) -> None:
        if self._round_end:
            self._round_end(ctx)
