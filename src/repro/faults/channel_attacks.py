"""Section X attacks: spoofing and deliberate collisions, as strategies.

"The presence of a broadcast channel introduces numerous difficulties by
way of the possibility of a malicious node spoofing another node's
address ... as well as the possibility of disruption of communication
via deliberate collisions."  (Paper, Section X.)

These strategies only function on an engine configured with the matching
:class:`~repro.radio.channel.ChannelImperfections`; on the default
(perfect) channel the engine raises, which is itself the test that the
model enforcement works.

What the experiments show (bench EXP-SECX):

- :class:`SourceImpersonator` -- with spoofing allowed, a *single*
  Byzantine node adjacent to undecided nodes forges the source's initial
  broadcast and poisons them: reliable broadcast becomes impossible with
  even one fault ("any malicious node may attempt to impersonate any
  honest node").
- :class:`NeighborFramer` -- forges ``COMMITTED`` announcements in other
  nodes' names, attacking the protocols' strongest evidence class.
- :class:`RoundJammer` -- jams its neighborhood every round.  Unbounded,
  it cuts its neighbors out of the network (broadcast impossible);
  bounded by the channel's jam budget, retransmission-by-rounds
  eventually gets every message through ("If the adversary uses
  collisions to merely disrupt communication, the problem is trivially
  solved by re-transmitting").
"""

from __future__ import annotations

from typing import Any, Optional

from repro.geometry.coords import Coord
from repro.geometry.metrics import get_metric
from repro.protocols.base import CommittedMsg, SourceMsg
from repro.radio.node import Context, NodeProcess


class SourceImpersonator(NodeProcess):
    """Forges the designated source's initial broadcast.

    Transmits ``SourceMsg(wrong_value)`` stamped with the source's
    address.  Every neighbor that has not yet committed and believes the
    (forged) sender accepts the wrong value -- the paper's argument that
    spoofing makes reliable broadcast unachievable.
    """

    def __init__(self, wrong_value: Any, source: Coord = (0, 0)) -> None:
        self.wrong_value = wrong_value
        self.source = source

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast_as(self.source, SourceMsg(self.wrong_value))


class NeighborFramer(NodeProcess):
    """Forges ``COMMITTED(wrong_value)`` in every neighbor's name.

    Against CPA this manufactures up to ``nbd`` fake announcements from
    *distinct* (forged) senders -- enough to cross any ``t + 1`` bar.
    """

    def __init__(self, wrong_value: Any, metric="linf") -> None:
        self.wrong_value = wrong_value
        self.metric = get_metric(metric)

    def on_start(self, ctx: Context) -> None:
        x, y = ctx.node
        for dx, dy in self.metric.offsets(ctx.r):
            ctx.broadcast_as(
                (x + dx, y + dy), CommittedMsg(self.wrong_value)
            )


class RoundJammer(NodeProcess):
    """Jams its neighborhood each round (optionally only the first
    ``rounds_to_jam`` rounds; the engine's jam budget also applies)."""

    def __init__(self, rounds_to_jam: Optional[int] = None) -> None:
        self.rounds_to_jam = rounds_to_jam
        self.jams_effective = 0

    def on_round(self, ctx: Context) -> None:
        if (
            self.rounds_to_jam is not None
            and ctx.round >= self.rounds_to_jam
        ):
            return
        if ctx.jam():
            self.jams_effective += 1
