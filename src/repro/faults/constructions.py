"""The paper's impossibility constructions, as placement generators.

Two constructions carry all of the paper's lower bounds:

- **The full strip** (Fig. 8): every node in an ``r``-column-wide,
  full-height strip is faulty.  Any neighborhood sees at most
  ``r(2r+1)`` strip nodes (L-infinity), so the placement respects
  ``t = r(2r+1)``; yet it disconnects the half-plane beyond the strip.
  This proves Theorem 4 (crash-stop impossibility at ``t >= r(2r+1)``).

- **The half-density strip** (Koo's construction; Fig. 13 shows its L2
  form with separate ``r`` odd / ``r`` even parities): the same strip but
  only alternate nodes (a checkerboard) are faulty.  Any neighborhood now
  sees at most ``ceil(r(2r+1)/2)`` faults, and the *correct* strip nodes
  -- at most ``floor(r(2r+1)/2)`` per neighborhood -- form a vertex cut
  too thin to carry ``t + 1`` node-disjoint evidence chains through any
  single neighborhood.  Even a *silent* adversary therefore kills
  liveness at ``t = ceil(r(2r+1)/2)``, matching Koo's impossibility bound
  that Theorem 1 meets.

On a torus a single strip does not partition anything (the world wraps),
so the torus builders place **two** strips far enough apart that no
neighborhood sees both; the band between them containing the source plays
the half-plane's role.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.torus import Torus


def crash_strip(
    x_start: int,
    r: int,
    y_range: Iterable[int],
) -> Set[Coord]:
    """Fig. 8's strip: all nodes with ``x_start <= x < x_start + r``.

    ``y_range`` bounds the strip vertically (finite substrates); on the
    infinite grid pass whatever span the analysis touches.
    """
    return {
        (x, y)
        for x in range(x_start, x_start + r)
        for y in y_range
    }


def half_density_strip(
    x_start: int,
    r: int,
    y_range: Iterable[int],
    parity: int = 0,
) -> Set[Coord]:
    """Koo's half-density strip: checkerboard faults inside the strip.

    A node ``(x, y)`` of the strip is faulty iff ``(x + y) % 2 == parity``.
    Under L-infinity any closed ball intersects the strip in ``r`` columns
    by ``2r+1`` rows, and a checkerboard fills at most
    ``ceil(r(2r+1)/2)`` of those cells.
    """
    if parity not in (0, 1):
        raise ConfigurationError(f"parity must be 0 or 1, got {parity}")
    return {
        (x, y)
        for x in range(x_start, x_start + r)
        for y in y_range
        if (x + y) % 2 == parity
    }


def _torus_strip_columns(torus: Torus, source_x: int) -> Tuple[int, int]:
    """Pick the two strip x-origins for a torus construction.

    Placed symmetrically about the source column, at least ``2r + 1``
    apart on both sides so no neighborhood sees both strips and the source
    band is non-trivial.
    """
    w, r = torus.width, torus.r
    min_width = 2 * (r + 2 * r + 1)  # two strips plus clearance bands
    if w < min_width:
        raise ConfigurationError(
            f"torus width {w} too small for a two-strip construction with "
            f"r={r}; need at least {min_width}"
        )
    right = (source_x + w // 4) % w
    left = (source_x - w // 4 - r + 1) % w
    return (left, right)


def torus_crash_partition(
    torus: Torus, source: Coord = (0, 0)
) -> Set[Coord]:
    """Two full strips that cut the torus into a source band and a far
    band, realizing Theorem 4's partition at ``t = r(2r+1)``."""
    left, right = _torus_strip_columns(torus, torus.canonical(source)[0])
    ys = range(torus.height)
    faults = crash_strip(left, torus.r, ys) | crash_strip(right, torus.r, ys)
    return {torus.canonical(f) for f in faults}


def torus_byzantine_strip(
    torus: Torus, source: Coord = (0, 0), parity: int = 0
) -> Set[Coord]:
    """Two half-density strips: the Byzantine liveness blocker at
    ``t = ceil(r(2r+1)/2)`` (Koo's impossibility bound)."""
    left, right = _torus_strip_columns(torus, torus.canonical(source)[0])
    ys = range(torus.height)
    faults = half_density_strip(left, torus.r, ys, parity) | half_density_strip(
        right, torus.r, ys, parity
    )
    return {torus.canonical(f) for f in faults}


def far_side_nodes(torus: Torus, source: Coord = (0, 0)) -> Set[Coord]:
    """Correct-side diagnostic: the nodes the two-strip constructions aim
    to cut off (the band antipodal to the source)."""
    left, right = _torus_strip_columns(torus, torus.canonical(source)[0])
    w, r = torus.width, torus.r
    blocked_cols: Set[int] = set()
    # walk from just past the right strip around to just before the left
    x = (right + r) % w
    while x != left:
        blocked_cols.add(x)
        x = (x + 1) % w
    return {
        (x, y) for x in blocked_cols for y in range(torus.height)
    }


def puncture(
    faults: Set[Coord], holes: Iterable[Coord]
) -> Set[Coord]:
    """Remove specific faults (open a hole in a strip) -- the standard way
    to turn an at-threshold construction into a below-threshold one."""
    return faults - set(holes)
