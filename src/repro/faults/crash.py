"""Crash-stop fault schedules.

The engine consumes a ``node -> crash round`` map; these helpers build the
two schedules the experiments need:

- :func:`dead_from_start` -- every faulty node crashes before round 0.
  For pure reachability questions this is the adversary's strongest move
  (a node that crashes later can only have helped in the meantime), so the
  impossibility construction and the threshold sweeps use it.
- :func:`staggered_crashes` -- random mid-run crash rounds, exercising the
  "crash after partial participation" behaviors (a node may crash after
  relaying, which never hurts; the tests confirm monotonicity).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.geometry.coords import Coord


def dead_from_start(faulty: Iterable[Coord]) -> Dict[Coord, int]:
    """All faulty nodes crash before executing anything.

    ``faulty`` is usually a set; the schedule is built in sorted order
    so the mapping (and anything that iterates it) is deterministic.
    """
    return {f: 0 for f in sorted(faulty)}


def staggered_crashes(
    faulty: Iterable[Coord],
    max_round: int,
    rng: Optional[random.Random] = None,
) -> Dict[Coord, int]:
    """Each faulty node crashes at an independent uniform round in
    ``[0, max_round]``.

    Draws happen in sorted node order: when ``faulty`` is a set, pairing
    draws with raw set-iteration order would couple every crash round to
    the interpreter's hash seeding -- the exact bug class the
    ``nondet-taint`` lint pass exists to catch.
    """
    if max_round < 0:
        raise ValueError(f"max_round must be >= 0, got {max_round}")
    rng = rng or random.Random(0)
    return {f: rng.randint(0, max_round) for f in sorted(faulty)}
