"""Counting and validating locally-bounded fault placements.

The adversary's constraint is *per neighborhood*: for every grid point
``c`` (whether or not a fault sits there), the closed radius-``r`` ball
around ``c`` may contain at most ``t`` faulty nodes.  Counting over
*closed* balls matches the paper's accounting ("a faulty node may have
upto ``t - 1`` neighbors that are also faulty": the faulty node plus its
faulty neighbors stay within ``t``).

All functions work either on the infinite grid (plain coordinates) or on a
finite topology (pass ``topology=`` and coordinates are wrapped).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidPlacementError
from repro.exec.seeds import derive_seed
from repro.geometry.balls import closed_ball_points
from repro.geometry.coords import Coord
from repro.geometry.metrics import get_metric
from repro.grid.topology import Topology


def _closed_ball(
    p: Coord, r: int, metric, topology: Optional[Topology]
) -> List[Coord]:
    """Closed metric ball around ``p``; wrapped when a topology is given.

    Thin wrapper over :func:`repro.geometry.balls.closed_ball_points` --
    the single implementation of the budget's counting geometry.
    """
    return closed_ball_points(metric, p, r, topology)


def fault_counts_per_nbd(
    faulty: Iterable[Coord],
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
) -> Dict[Coord, int]:
    """Faults per closed neighborhood, for every center that sees any.

    Centers whose neighborhood contains no fault are omitted (on the
    infinite grid there are infinitely many).  Each faulty node contributes
    to every center within distance ``r`` of it -- the ball is symmetric,
    so "centers covering f" equals "ball around f".
    """
    counts: Dict[Coord, int] = {}
    seen: Set[Coord] = set()
    # sorted so the returned dict's insertion order is canonical even
    # when ``faulty`` arrives as a set (counts are order-free, but
    # downstream iteration over the result should not vary per run)
    for f in sorted(faulty):
        cf = topology.canonical(f) if topology is not None else (f[0], f[1])
        if cf in seen:
            continue
        seen.add(cf)
        for center in _closed_ball(cf, r, metric, topology):
            counts[center] = counts.get(center, 0) + 1
    return counts


def max_faults_per_nbd(
    faulty: Iterable[Coord],
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
) -> Tuple[int, Optional[Coord]]:
    """``(max count, witness center)``; ``(0, None)`` for no faults."""
    counts = fault_counts_per_nbd(faulty, r, metric, topology)
    if not counts:
        return (0, None)
    center = max(counts, key=lambda c: (counts[c], (-c[0], -c[1])))
    return (counts[center], center)


def max_faults_in_any_nbd(
    faulty: Iterable[Coord],
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
) -> int:
    """The worst per-neighborhood fault count of a placement.

    The quantity every budget check compares against ``t``; callers that
    only need the number (not the witness center) should use this rather
    than re-deriving it from :func:`fault_counts_per_nbd`.
    """
    worst, _ = max_faults_per_nbd(faulty, r, metric, topology)
    return worst


def is_valid_placement(
    faulty: Iterable[Coord],
    t: int,
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
) -> bool:
    """Whether no neighborhood contains more than ``t`` faults."""
    return max_faults_in_any_nbd(faulty, r, metric, topology) <= t


def validate_placement(
    faulty: Iterable[Coord],
    t: int,
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
) -> None:
    """Raise :class:`~repro.errors.InvalidPlacementError` on violation."""
    worst, center = max_faults_per_nbd(faulty, r, metric, topology)
    if worst > t:
        raise InvalidPlacementError(
            f"placement puts {worst} faults in the neighborhood of {center} "
            f"but the budget is t={t} (r={r}, metric={get_metric(metric).name})"
        )


def trim_to_budget(
    faulty: Iterable[Coord],
    t: int,
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
    rng: Optional[random.Random] = None,
) -> Set[Coord]:
    """Remove as few faults as needed (greedily) to respect the budget.

    Repeatedly finds the most-violating neighborhood and removes from it
    the fault that participates in the most violating neighborhoods
    (deterministic unless an ``rng`` breaks ties).  Greedy is not optimal
    in general but the constructions only ever need a handful of removals.
    """
    m = get_metric(metric)
    current: Set[Coord] = {
        topology.canonical(f) if topology is not None else (f[0], f[1])
        for f in faulty
    }
    while True:
        counts = fault_counts_per_nbd(current, r, m, topology)
        violating = {c for c, n in counts.items() if n > t}
        if not violating:
            return current
        # Score each fault by how many violating neighborhoods it sits in.
        def score(f: Coord) -> int:
            return sum(
                1 for c in _closed_ball(f, r, m, topology) if c in violating
            )

        ranked = sorted(current, key=lambda f: (-score(f), f))
        if rng is not None:
            top = score(ranked[0])
            ties = [f for f in ranked if score(f) == top]
            current.discard(rng.choice(ties))
        else:
            current.discard(ranked[0])


def greedy_random_placement(
    candidates: Sequence[Coord],
    t: int,
    r: int,
    metric="linf",
    topology: Optional[Topology] = None,
    rng: Optional[random.Random] = None,
    target_count: Optional[int] = None,
) -> Set[Coord]:
    """A random maximal (or ``target_count``-sized) valid placement.

    Visits ``candidates`` in random order and keeps each fault that does
    not break the budget.  Incremental counting makes this
    ``O(|candidates| * |ball|)``.
    """
    m = get_metric(metric)
    if rng is None:
        rng = random.Random(
            derive_seed(0, "repro.faults.placement.greedy_random_placement", 0)
        )
    order = list(candidates)
    rng.shuffle(order)
    counts: Dict[Coord, int] = {}
    chosen: Set[Coord] = set()
    for cand in order:
        node = (
            topology.canonical(cand) if topology is not None else (cand[0], cand[1])
        )
        if node in chosen:
            continue
        ball = _closed_ball(node, r, m, topology)
        if any(counts.get(c, 0) + 1 > t for c in ball):
            continue
        chosen.add(node)
        for c in ball:
            counts[c] = counts.get(c, 0) + 1
        if target_count is not None and len(chosen) >= target_count:
            break
    return chosen
