"""The locally-bounded fault adversary (paper, Section II).

"The adversary is allowed to place faults as long as no single
neighborhood contains more than ``t`` faults.  Thus a correct node may
have upto ``t`` faulty neighbors, while a faulty node may have upto
``t - 1`` neighbors that are also faulty."

- :mod:`repro.faults.placement` -- counting and validating placements
  against the ``t``-per-neighborhood budget; random/greedy generators;
- :mod:`repro.faults.byzantine` -- adversarial node processes (silent,
  liars, report fabricators, duplicitous announcers);
- :mod:`repro.faults.crash` -- crash-round schedules;
- :mod:`repro.faults.constructions` -- the paper's impossibility
  constructions (Fig. 8 crash strip; the half-density Byzantine strip
  behind Koo's bound and Fig. 13);
- :mod:`repro.faults.random_faults` -- i.i.d. random failures (Section
  XI's percolation model) and budget-respecting random placements.
"""

from repro.faults.placement import (
    fault_counts_per_nbd,
    max_faults_per_nbd,
    validate_placement,
    is_valid_placement,
    trim_to_budget,
    greedy_random_placement,
)
from repro.faults.byzantine import (
    SilentByzantine,
    EagerLiarByzantine,
    DuplicitousByzantine,
    FabricatingByzantine,
    RandomNoiseByzantine,
    BYZANTINE_STRATEGIES,
    make_byzantine,
)
from repro.faults.crash import dead_from_start, staggered_crashes
from repro.faults.constructions import (
    crash_strip,
    torus_crash_partition,
    half_density_strip,
    torus_byzantine_strip,
    puncture,
)
from repro.faults.random_faults import iid_failures, random_bounded_placement

__all__ = [
    "fault_counts_per_nbd",
    "max_faults_per_nbd",
    "validate_placement",
    "is_valid_placement",
    "trim_to_budget",
    "greedy_random_placement",
    "SilentByzantine",
    "EagerLiarByzantine",
    "DuplicitousByzantine",
    "FabricatingByzantine",
    "RandomNoiseByzantine",
    "BYZANTINE_STRATEGIES",
    "make_byzantine",
    "dead_from_start",
    "staggered_crashes",
    "crash_strip",
    "torus_crash_partition",
    "half_density_strip",
    "torus_byzantine_strip",
    "puncture",
    "iid_failures",
    "random_bounded_placement",
]
