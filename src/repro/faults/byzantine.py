"""Byzantine node strategies.

A Byzantine node in this model can send *anything*, *whenever* its TDMA
slot comes up -- but the broadcast channel denies it two classic weapons:
it cannot spoof another node's identity (the engine stamps senders) and it
cannot be duplicitous (every transmission reaches all neighbors
identically).  What remains is lying: announcing values it never correctly
derived and fabricating relay reports.

Strategies provided (strongest first, for the protocols in this library):

- :class:`FabricatingByzantine` -- announces the wrong value and floods
  geometrically-plausible fake HEARD reports framing nearby nodes as
  having committed the wrong value.  This is the strongest per-node attack
  against the Bhandari-Vaidya commit rules: every fake chain it can make
  passes the receivers' adjacency validation, so only the node-disjoint
  counting defeats it.
- :class:`EagerLiarByzantine` -- announces the wrong value immediately and
  refuses to relay anything (lying *and* withholding).
- :class:`SilentByzantine` -- pure withholding.  Sufficient to defeat
  liveness at the impossibility threshold (the blocking argument is a
  vertex cut, not deception).
- :class:`DuplicitousByzantine` -- announces both values in order,
  probing the "first announcement wins" duplicity rule.
- :class:`RandomNoiseByzantine` -- seeded random mix of the above
  behaviors, for property tests ("safety holds under *any* behavior").
"""

from __future__ import annotations

import random
from types import MappingProxyType
from typing import Any, Mapping, Type

from repro.errors import ConfigurationError
from repro.geometry.metrics import get_metric
from repro.protocols.base import CommittedMsg, HeardMsg, SourceMsg
from repro.radio.messages import Envelope
from repro.radio.node import Context, NodeProcess, SilentProcess


class SilentByzantine(SilentProcess):
    """Withholds all cooperation; transmits nothing, ever."""


class EagerLiarByzantine(NodeProcess):
    """Announces ``wrong_value`` in its first slot; relays nothing."""

    def __init__(self, wrong_value: Any, metric="linf") -> None:
        self.wrong_value = wrong_value
        self.metric = get_metric(metric)

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(CommittedMsg(self.wrong_value))


class DuplicitousByzantine(NodeProcess):
    """Attempts duplicity: announces ``first`` then ``second``.

    On a broadcast channel every neighbor sees both, in the same order, so
    honest protocols latch the first -- this strategy exists to *test*
    that rule, not because it is strong.
    """

    def __init__(self, first: Any, second: Any, metric="linf") -> None:
        self.first = first
        self.second = second
        self.metric = get_metric(metric)

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(CommittedMsg(self.first))
        ctx.broadcast(CommittedMsg(self.second))


class FabricatingByzantine(NodeProcess):
    """Wrong-value announcer plus plausible-report fabricator.

    At start it announces ``wrong_value``; then it frames every node
    within distance ``r`` as having announced ``wrong_value``
    (one-relay reports), and -- when ``deep_fabrication`` -- frames nodes
    within ``2r`` via invented two-relay chains whose intermediate hop is a
    real grid point adjacent to both ends (so the report survives honest
    adjacency validation).  It also re-frames every genuine announcement
    it overhears, misreporting the announced value as ``wrong_value``.
    """

    def __init__(
        self,
        wrong_value: Any,
        metric="linf",
        deep_fabrication: bool = True,
        max_fabrications_per_origin: int = 2,
    ) -> None:
        self.wrong_value = wrong_value
        self.metric = get_metric(metric)
        self.deep_fabrication = deep_fabrication
        self.max_fabrications_per_origin = max_fabrications_per_origin

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(CommittedMsg(self.wrong_value))
        r = ctx.r
        x, y = ctx.node
        # Frame direct neighbors: "I heard them announce wrong_value".
        for dx, dy in self.metric.offsets(r):
            ctx.broadcast(
                HeardMsg(origin=(x + dx, y + dy), value=self.wrong_value)
            )
        if not self.deep_fabrication:
            return
        # Frame the 2r-annulus via invented intermediate relays.  The
        # receiver reconstructs the chain (me, relay) and checks me~relay,
        # relay~origin; we pick relays making both hold.
        for dx, dy in self.metric.offsets(2 * r):
            if self.metric.within((0, 0), (dx, dy), r):
                continue  # already framed directly
            origin = (x + dx, y + dy)
            fabricated = 0
            for rx, ry in self.metric.offsets(r):
                relay = (x + rx, y + ry)
                if relay == origin:
                    continue
                if not self.metric.within(relay, origin, r):
                    continue
                ctx.broadcast(
                    HeardMsg(
                        origin=origin,
                        value=self.wrong_value,
                        relays=(relay,),
                    )
                )
                fabricated += 1
                if fabricated >= self.max_fabrications_per_origin:
                    break

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        # Misreport real announcements with the flipped value.
        if isinstance(env.payload, CommittedMsg):
            ctx.broadcast(
                HeardMsg(origin=env.sender, value=self.wrong_value)
            )


class RandomNoiseByzantine(NodeProcess):
    """Seeded random adversary for property tests.

    Each round it may announce a random value, frame a random neighbor, or
    stay silent.  Determinism: behavior is fully fixed by ``seed`` and the
    node's own observation order.
    """

    def __init__(
        self, wrong_value: Any, seed: int = 0, metric="linf", rate: float = 0.5
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0,1], got {rate}")
        self.wrong_value = wrong_value
        self.metric = get_metric(metric)
        self.rate = rate
        self._rng = random.Random(seed)

    def on_round(self, ctx: Context) -> None:
        if ctx.round > 8:  # bounded nuisance: keep runs finite
            return
        if self._rng.random() > self.rate:
            return
        r = ctx.r
        x, y = ctx.node
        roll = self._rng.random()
        if roll < 0.4:
            ctx.broadcast(CommittedMsg(self.wrong_value))
        elif roll < 0.8:
            offs = self.metric.offsets(r)
            dx, dy = offs[self._rng.randrange(len(offs))]
            ctx.broadcast(
                HeardMsg(origin=(x + dx, y + dy), value=self.wrong_value)
            )
        else:
            ctx.broadcast(SourceMsg(self.wrong_value))  # fake source (ignored)


BYZANTINE_STRATEGIES: Mapping[str, Type[NodeProcess]] = MappingProxyType({
    "silent": SilentByzantine,
    "liar": EagerLiarByzantine,
    "duplicitous": DuplicitousByzantine,
    "fabricator": FabricatingByzantine,
    "noise": RandomNoiseByzantine,
})
"""Registry of strategy names for the scenario builders."""


def make_byzantine(
    strategy: str,
    wrong_value: Any,
    metric="linf",
    seed: int = 0,
) -> NodeProcess:
    """Instantiate a Byzantine strategy by name with sensible defaults."""
    if strategy == "silent":
        return SilentByzantine()
    if strategy == "liar":
        return EagerLiarByzantine(wrong_value, metric=metric)
    if strategy == "duplicitous":
        return DuplicitousByzantine(wrong_value, 1 - wrong_value
                                    if isinstance(wrong_value, int) else None,
                                    metric=metric)
    if strategy == "fabricator":
        return FabricatingByzantine(wrong_value, metric=metric)
    if strategy == "noise":
        return RandomNoiseByzantine(wrong_value, seed=seed, metric=metric)
    raise ConfigurationError(
        f"unknown Byzantine strategy {strategy!r}; known: "
        f"{sorted(BYZANTINE_STRATEGIES)}"
    )
