"""Random fault placement.

Two distinct random models:

- :func:`iid_failures` -- Section XI's model: every node fails
  independently with probability ``p_f``.  This placement does **not**
  respect the locally-bounded budget (that is the point: it is the
  percolation regime);
- :func:`random_bounded_placement` -- a random placement that *does*
  respect the ``t``-per-neighborhood budget, for averaging protocol
  behavior over many adversarial layouts rather than just the worst-case
  constructions.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.exec.seeds import derive_seed
from repro.faults.placement import greedy_random_placement
from repro.geometry.coords import Coord
from repro.grid.topology import Topology


def iid_failures(
    topology: Topology,
    p_fail: float,
    rng: Optional[random.Random] = None,
    protect: Coord = (0, 0),
) -> Set[Coord]:
    """Independent failures with probability ``p_fail`` per node.

    The designated source (``protect``) never fails -- broadcast from a
    dead source is vacuous.
    """
    if not 0.0 <= p_fail <= 1.0:
        raise ValueError(f"p_fail must be in [0, 1], got {p_fail}")
    if rng is None:
        rng = random.Random(
            derive_seed(0, "repro.faults.random_faults.iid_failures", 0)
        )
    src = topology.canonical(protect)
    return {
        node
        for node in topology.nodes()
        if node != src and rng.random() < p_fail
    }


def random_bounded_placement(
    topology: Topology,
    t: int,
    rng: Optional[random.Random] = None,
    protect: Coord = (0, 0),
    target_count: Optional[int] = None,
) -> Set[Coord]:
    """A random maximal placement respecting the ``t`` budget.

    ``protect`` (the source) is never chosen.  With ``target_count`` the
    placement stops early once that many faults are placed.
    """
    if rng is None:
        rng = random.Random(
            derive_seed(
                0, "repro.faults.random_faults.random_bounded_placement", 0
            )
        )
    src = topology.canonical(protect)
    candidates = [n for n in topology.nodes() if n != src]
    return greedy_random_placement(
        candidates,
        t,
        topology.r,
        metric=topology.metric,
        topology=topology,
        rng=rng,
        target_count=target_count,
    )
