"""Experiment harness: scenarios, the experiment registry, and reporting.

- :mod:`repro.experiments.scenarios` -- declarative broadcast scenarios
  (topology + protocol + fault placement + adversary strategy) with a
  one-call ``run()``;
- :mod:`repro.experiments.registry` -- the per-figure/table experiment
  index mirroring DESIGN.md;
- :mod:`repro.experiments.report` -- plain-text table rendering shared by
  benches and examples.
"""

from repro.experiments.scenarios import (
    BroadcastScenario,
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    mixed_broadcast_scenario,
)
from repro.experiments.report import format_table

__all__ = [
    "BroadcastScenario",
    "byzantine_broadcast_scenario",
    "crash_broadcast_scenario",
    "mixed_broadcast_scenario",
    "format_table",
]
