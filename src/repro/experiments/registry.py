"""The experiment registry: paper figure/table id -> runner.

Mirrors the per-experiment index in DESIGN.md; the benches iterate this
registry so that *every* figure and table of the paper has exactly one
regenerating entry, and EXPERIMENTS.md records each entry's paper-vs-
measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.experiments import runners

Runner = Callable[..., List[Dict[str, Any]]]


@dataclass(frozen=True)
class Experiment:
    """One registered reproduction target."""

    exp_id: str
    paper_ref: str
    description: str
    runner: Runner

    def run(self, **kwargs: Any) -> List[Dict[str, Any]]:
        """Execute with default (laptop-scale) parameters unless
        overridden."""
        return self.runner(**kwargs)


_EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        "EXP-T1",
        "Table I",
        "Region extents and per-family path counts for all (r, p, q)",
        runners.run_table1_regions,
    ),
    Experiment(
        "EXP-F1_3",
        "Figures 1-3",
        "Region cardinalities |M|, |R|, |U|, |S1|, |S2| and the partition",
        runners.run_fig1_3_regions,
    ),
    Experiment(
        "EXP-F4_6",
        "Figures 4-6",
        "r(2r+1) node-disjoint paths, mechanically verified",
        runners.run_fig4_6_paths,
    ),
    Experiment(
        "EXP-F7",
        "Figure 7",
        "Arbitrary position of P: connectivity for every top-edge offset",
        runners.run_fig7_arbitrary_p,
    ),
    Experiment(
        "EXP-F8",
        "Figure 8 / Theorem 4",
        "Crash-stop strip partition at t = r(2r+1)",
        runners.run_fig8_crash_impossibility,
    ),
    Experiment(
        "EXP-F9_10",
        "Figures 9-10 / Theorem 5",
        "Simulated crash-stop threshold sweep (staged propagation)",
        runners.run_crash_threshold_sweep,
    ),
    Experiment(
        "EXP-F11_12",
        "Figures 11-12 / Section VIII",
        "L2 disjoint-path connectivity vs the 0.47*pi*r^2 area argument",
        runners.run_l2_argument,
    ),
    Experiment(
        "EXP-F13",
        "Figure 13 / Section VIII",
        "L2 impossibility: half-density strip at ~0.3*pi*r^2",
        runners.run_l2_impossibility,
    ),
    Experiment(
        "EXP-L2BRACKET",
        "Section VIII (open problem)",
        "Adversary-searched bracket of the open L2 constants "
        "(0.23 vs 0.3 pi r^2), with certified gap placements",
        runners.run_l2_bracket,
    ),
    Experiment(
        "EXP-F14_19",
        "Figures 14-19 / Theorem 6",
        "CPA stage inequalities over radii",
        runners.run_cpa_stage_table,
    ),
    Experiment(
        "EXP-THM1",
        "Theorem 1",
        "Byzantine L-inf threshold sweep (both sides, three adversaries)",
        runners.run_byzantine_threshold_sweep,
    ),
    Experiment(
        "EXP-THM45",
        "Theorems 4-5",
        "Crash-stop L-inf threshold sweep (simulated)",
        runners.run_crash_threshold_sweep,
    ),
    Experiment(
        "EXP-THM6",
        "Theorem 6",
        "CPA threshold sweep and bound comparison",
        runners.run_cpa_threshold_sweep,
    ),
    Experiment(
        "EXP-PERC",
        "Section XI",
        "Random failures: site-percolation coverage curve",
        runners.run_percolation,
    ),
    Experiment(
        "EXP-PROTO",
        "Sections VI, VI-B, IX",
        "Protocol cost comparison (rounds, messages)",
        runners.run_protocol_costs,
    ),
    Experiment(
        "EXP-THRESH",
        "Abstract / all theorems",
        "Threshold overview table (all bounds per radius)",
        runners.run_threshold_overview,
    ),
    Experiment(
        "EXP-SECX",
        "Section X",
        "Spoofing / jamming attacks and the retransmission counter-measure",
        runners.run_section_x_attacks,
    ),
    Experiment(
        "EXP-SHARP",
        "Theorem 1 (random adversaries)",
        "Threshold sharpness: success fraction vs budget, random placements",
        runners.run_threshold_sharpness,
    ),
    Experiment(
        "EXP-ADV",
        "Theorems 1, 4-5 (searched adversaries)",
        "Random vs searched placements at the threshold boundary",
        runners.run_adversarial_sharpness,
    ),
    Experiment(
        "EXP-BOUNDARY",
        "Section I (boundary anomalies)",
        "Bounded grid vs torus: corner connectivity and crash tolerance",
        runners.run_boundary_effects,
    ),
    Experiment(
        "EXP-WAVE",
        "Theorem 3 (commit wave)",
        "Commit round vs distance from the source (latency profile)",
        runners.run_commit_wave,
    ),
)

REGISTRY: Dict[str, Experiment] = {e.exp_id: e for e in _EXPERIMENTS}
"""All registered experiments, keyed by id."""


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment; raises ``KeyError`` with the known ids."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def all_experiments() -> List[Experiment]:
    """Registry contents in registration order."""
    return list(_EXPERIMENTS)
