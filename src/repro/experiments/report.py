"""Plain-text tabular reporting shared by benches and examples.

Keeps formatting concerns out of the experiment logic: runners return rows
(lists of dicts), and :func:`format_table` renders them the way the paper
prints its result tables.  :func:`wavefront_rows` and
:func:`latency_rows` turn a :func:`repro.obs.metrics_summary` dict into
per-round wave-front and commit-latency tables for ``repro trace``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows into an aligned text table.

    ``columns`` fixes the order (default: keys of the first row).  Missing
    cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0])
    rendered = [[_render(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def wavefront_rows(summary: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-round wave-front table rows from a metrics summary.

    One row per simulated round: transmissions, actual deliveries,
    commits observed at that round's end, and the cumulative commit /
    delivery wave-front radii from the source (empty strings where the
    summary has no wave-front data, i.e. no source was designated).
    """
    tx = dict(summary.get("tx_by_round", ()))
    deliveries = dict(summary.get("deliveries_by_round", ()))
    commits = dict(summary.get("commits_by_round", ()))
    commit_wave = dict(summary.get("commit_wavefront_by_round", ()))
    delivery_wave = dict(summary.get("delivery_wavefront_by_round", ()))
    rows = []
    for rnd in range(summary.get("rounds", 0)):
        rows.append(
            {
                "round": rnd,
                "tx": tx.get(rnd, 0),
                "delivered": deliveries.get(rnd, 0),
                "commits": commits.get(rnd, 0),
                "commit_radius": commit_wave.get(rnd, ""),
                "delivery_radius": delivery_wave.get(rnd, ""),
            }
        )
    return rows


def latency_rows(summary: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Commit-latency histogram rows from a metrics summary.

    One row per commit round (``-1`` means committed during
    ``on_start``), with the cumulative count and the cumulative fraction
    of all observed commits.
    """
    latency = summary.get("commit_latency", {})
    histogram = list(latency.get("histogram", ()))
    total = sum(n for _, n in histogram)
    rows = []
    cumulative = 0
    for rnd, count in histogram:
        cumulative += count
        rows.append(
            {
                "commit_round": rnd,
                "commits": count,
                "cumulative": cumulative,
                "fraction": round(cumulative / total, 4) if total else 0.0,
            }
        )
    return rows
