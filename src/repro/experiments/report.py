"""Plain-text tabular reporting shared by benches and examples.

Keeps formatting concerns out of the experiment logic: runners return rows
(lists of dicts), and :func:`format_table` renders them the way the paper
prints its result tables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows into an aligned text table.

    ``columns`` fixes the order (default: keys of the first row).  Missing
    cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0])
    rendered = [[_render(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
