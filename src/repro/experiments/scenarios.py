"""Declarative broadcast scenarios.

A :class:`BroadcastScenario` bundles everything one simulated broadcast
needs -- topology, protocol, fault placement, adversary behavior -- and
produces a graded :class:`~repro.radio.run.BroadcastOutcome`.  The two
builders cover the experiment axes of the paper:

- :func:`byzantine_broadcast_scenario`: Byzantine faults placed by a named
  scheme (the half-density strip construction, random budget-respecting
  placements, or an explicit caller-supplied fault set) running a named
  strategy;
- :func:`crash_broadcast_scenario`: crash faults placed by the full-strip
  construction, randomly, or explicitly; dead-from-start or staggered.

The ``placement="explicit"`` mode (``faults=...``) exists for the
adversary search engine (:mod:`repro.adversary`): candidate placements
are evaluated by round-tripping them through the same builders every
other experiment uses, so a searched counterexample replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set

from repro.errors import ConfigurationError
from repro.faults.byzantine import make_byzantine
from repro.faults.constructions import (
    torus_byzantine_strip,
    torus_crash_partition,
)
from repro.faults.crash import dead_from_start, staggered_crashes
from repro.faults.placement import trim_to_budget, validate_placement
from repro.faults.random_faults import random_bounded_placement
from repro.geometry.coords import Coord
from repro.grid.factory import TOPOLOGY_KINDS, make_topology
from repro.grid.topology import Topology
from repro.grid.torus import Torus
from repro.protocols.registry import correct_process_map
from repro.radio.channel import make_channel_model
from repro.radio.engines import validate_engine
from repro.radio.node import NodeProcess
from repro.radio.run import BroadcastOutcome, run_broadcast


def recommended_torus(r: int, metric="linf", slack: int = 0) -> Torus:
    """A square torus large enough that protocol geometry never wraps
    ambiguously: side ``max(4r + 3, 6r + 1) + slack``.

    ``4r + 3`` keeps four-hop relay halos from self-intersecting;
    ``6r + 1`` makes every local unwrap (points up to ``3r`` away) unique.
    """
    side = max(4 * r + 3, 6 * r + 1) + max(0, slack)
    return Torus.square(side, r, metric)


def strip_torus(r: int, metric="linf", slack: int = 0) -> Torus:
    """A torus wide enough for the two-strip impossibility constructions:
    two width-``r`` strips plus two bands of width ``>= 2r + 2`` (so the
    far band holds nodes outside both strips' reach)."""
    side = max(6 * r + 5, 6 * r + 1, 4 * r + 3) + max(0, slack)
    return Torus.square(side, r, metric)


@dataclass
class BroadcastScenario:
    """A fully specified broadcast experiment.

    ``byzantine_processes`` maps faulty nodes to adversarial processes;
    ``crash_round`` maps crashing nodes to their crash rounds.  A node must
    not appear in both.
    """

    topology: Topology
    protocol: str
    t: int
    value: Any = 1
    source: Coord = (0, 0)
    byzantine_processes: Dict[Coord, NodeProcess] = field(default_factory=dict)
    crash_round: Dict[Coord, int] = field(default_factory=dict)
    max_rounds: int = 200
    max_messages: Optional[int] = None
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    channel: Optional[Any] = None  # ChannelImperfections; None = perfect
    delivery: str = "immediate"  # or "end-of-round" (synchronous steps)
    #: simulation backend: "reference" (per-node objects) or "fastpath"
    #: (vectorized kernels, see :mod:`repro.radio.fastpath`).  The two
    #: are observationally identical wherever fastpath is supported, so
    #: the choice never changes results -- only wall-clock.
    engine: str = "reference"

    def __post_init__(self) -> None:
        validate_engine(self.engine)
        canon = self.topology.canonical
        self.source = canon(self.source)
        self.byzantine_processes = {
            canon(n): p for n, p in self.byzantine_processes.items()
        }
        self.crash_round = {canon(n): r for n, r in self.crash_round.items()}
        overlap = set(self.byzantine_processes) & set(self.crash_round)
        if overlap:
            raise ConfigurationError(
                f"nodes {sorted(overlap)} are both Byzantine and crashing"
            )
        if self.source in self.faulty_nodes:
            raise ConfigurationError("the designated source must be correct")

    @property
    def faulty_nodes(self) -> Set[Coord]:
        """All faulty (Byzantine or crashing) nodes."""
        return set(self.byzantine_processes) | set(self.crash_round)

    @property
    def correct_nodes(self) -> Set[Coord]:
        """All nodes the outcome grading quantifies over."""
        faulty = self.faulty_nodes
        return {n for n in self.topology.nodes() if n not in faulty}

    def validate(self) -> None:
        """Check the fault placement against the ``t`` budget."""
        validate_placement(
            self.faulty_nodes,
            self.t,
            self.topology.r,
            metric=self.topology.metric,
            topology=self.topology,
        )

    def run(
        self,
        record_events: bool = False,
        observers=None,
        profiler=None,
    ) -> BroadcastOutcome:
        """Simulate and grade.

        ``observers`` / ``profiler`` attach :mod:`repro.obs`
        instrumentation to the underlying engine; both default to off.
        """
        if self.engine == "fastpath":
            # imported lazily: the fastpath stack (and numpy) is an
            # optional dependency the reference path never touches
            from repro.radio.fastpath import run_fastpath_broadcast

            return run_fastpath_broadcast(
                self,
                record_events=record_events,
                observers=observers,
                profiler=profiler,
            )
        processes: Dict[Coord, NodeProcess] = dict(self.byzantine_processes)
        processes.update(
            correct_process_map(
                self.topology,
                self.protocol,
                self.t,
                self.source,
                self.value,
                self.correct_nodes,
                **self.protocol_kwargs,
            )
        )
        return run_broadcast(
            self.topology,
            processes,
            self.value,
            self.correct_nodes,
            crash_round=self.crash_round,
            max_rounds=self.max_rounds,
            max_messages=self.max_messages,
            record_events=record_events,
            channel=self.channel,
            delivery=self.delivery,
            observers=observers,
            profiler=profiler,
        )


def _resolve_topology(
    r: int,
    metric,
    placement: str,
    torus: Optional[Torus],
    torus_side: Optional[int],
    topology_kind: str = "torus",
    seed: int = 0,
) -> Topology:
    """The topology a scenario runs on.

    Either an explicit ``torus`` object (the legacy escape hatch: any
    pre-built topology wins outright), or a square topology of the named
    ``topology_kind`` (see :data:`repro.grid.factory.TOPOLOGY_KINDS`)
    with side ``torus_side`` or the placement-appropriate default (strip
    constructions need the wider two-strip torus).  ``seed`` pins the
    node sample of the ``"rgg"`` kind and is ignored by the others.
    """
    if torus is not None:
        if topology_kind != "torus":
            raise ConfigurationError(
                f"pass either an explicit topology object or "
                f"topology_kind={topology_kind!r}, not both"
            )
        if torus_side is not None and torus.width != torus_side:
            raise ConfigurationError(
                f"both torus ({torus.width} wide) and torus_side="
                f"{torus_side} given; pass one"
            )
        return torus
    if topology_kind not in TOPOLOGY_KINDS:
        raise ConfigurationError(
            f"unknown topology kind {topology_kind!r}; expected one of "
            f"{TOPOLOGY_KINDS}"
        )
    if placement == "strip" and topology_kind != "torus":
        raise ConfigurationError(
            'placement="strip" uses the toroidal two-strip construction '
            f"and is torus-only, got topology {topology_kind!r}; use "
            'placement="random" or "explicit"'
        )
    if torus_side is not None:
        side = torus_side
    elif placement in ("strip", "explicit"):
        side = strip_torus(r, metric).width
    else:
        side = recommended_torus(r, metric).width
    return make_topology(topology_kind, side, r, metric, seed=seed)


def _explicit_faults(
    faults: Optional[Iterable[Coord]], topology: Topology
) -> Set[Coord]:
    """Canonicalize a caller-supplied fault set for ``explicit`` mode."""
    if faults is None:
        raise ConfigurationError(
            'placement="explicit" needs faults=<iterable of coordinates>'
        )
    out = {topology.canonical(tuple(f)) for f in faults}
    missing = sorted(q for q in out if not topology.contains(q))
    if missing:
        raise ConfigurationError(
            f"explicit faults {missing} host no node on {topology!r}"
        )
    return out


def _reject_stray_faults(
    faults: Optional[Iterable[Coord]], placement: str
) -> None:
    """Refuse a ``faults=`` argument that ``placement`` would ignore."""
    if faults is not None and placement != "explicit":
        raise ConfigurationError(
            f'faults=... only makes sense with placement="explicit", '
            f"got placement={placement!r}"
        )


def byzantine_broadcast_scenario(
    r: int,
    t: int,
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    placement: str = "strip",
    metric="linf",
    value: int = 1,
    seed: int = 0,
    torus: Optional[Torus] = None,
    torus_side: Optional[int] = None,
    faults: Optional[Iterable[Coord]] = None,
    enforce_budget: bool = True,
    max_rounds: int = 200,
    engine: str = "reference",
    topology_kind: str = "torus",
    channel: str = "ideal",
    **protocol_kwargs: Any,
) -> BroadcastScenario:
    """Build a Byzantine broadcast experiment.

    Parameters
    ----------
    placement:
        ``"strip"`` -- the half-density two-strip construction, trimmed to
        the budget ``t`` (the paper's worst case); ``"random"`` -- a random
        maximal budget-respecting placement; ``"explicit"`` -- the exact
        fault set passed as ``faults`` (the adversary-search evaluation
        path).
    strategy:
        A name from :data:`repro.faults.byzantine.BYZANTINE_STRATEGIES`.
    torus_side:
        Side of the square topology to run on (mutually exclusive with
        ``torus``); defaults to the placement-appropriate recommendation.
    enforce_budget:
        Trim the placement down to the budget.  Disable to *exceed* the
        budget deliberately (impossibility demonstrations run the strip at
        ``t`` equal to the bound while telling the protocol the same
        ``t``), or to trust a placement already maintained under budget
        (explicit placements from :mod:`repro.adversary`).
    topology_kind:
        A :data:`~repro.grid.factory.TOPOLOGY_KINDS` level; the strip
        placement is torus-only (the construction wraps).
    channel:
        A :data:`~repro.radio.channel.CHANNEL_MODELS` level; non-ideal
        channels need the reference engine.
    """
    _reject_stray_faults(faults, placement)
    topology = _resolve_topology(
        r, metric, placement, torus, torus_side, topology_kind, seed
    )
    source = (0, 0)
    rng = random.Random(seed)
    if placement == "strip":
        faults = torus_byzantine_strip(topology, source)
    elif placement == "random":
        faults = random_bounded_placement(
            topology, t, rng=rng, protect=source
        )
    elif placement == "explicit":
        faults = _explicit_faults(faults, topology)
    else:
        raise ConfigurationError(
            f"unknown placement {placement!r}; expected "
            '"strip", "random", or "explicit"'
        )
    if enforce_budget:
        faults = trim_to_budget(
            faults, t, r, metric=topology.metric, topology=topology, rng=rng
        )
    wrong = 1 - value if isinstance(value, int) else None
    byz = {
        node: make_byzantine(strategy, wrong, metric=topology.metric, seed=seed + i)
        for i, node in enumerate(sorted(faults))
    }
    return BroadcastScenario(
        topology=topology,
        protocol=protocol,
        t=t,
        value=value,
        source=source,
        byzantine_processes=byz,
        max_rounds=max_rounds,
        protocol_kwargs=protocol_kwargs,
        channel=make_channel_model(channel, seed),
        engine=engine,
    )


def mixed_broadcast_scenario(
    r: int,
    t: int,
    byzantine_fraction: float = 0.5,
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    placement: str = "strip",
    metric="linf",
    value: int = 1,
    seed: int = 0,
    torus: Optional[Torus] = None,
    enforce_budget: bool = True,
    max_rounds: int = 200,
    **protocol_kwargs: Any,
) -> BroadcastScenario:
    """A mixed-fault experiment: the budget ``t`` is shared between
    Byzantine nodes (running ``strategy``) and crash-stop nodes (dead from
    the start).

    The locally-bounded model counts *all* faults against the same
    budget, and crash faults are strictly weaker than Byzantine ones
    (a crashed node is a silent adversary), so every guarantee proved for
    ``t`` Byzantine faults must survive any mix -- which the mixed tests
    verify.
    """
    if not 0.0 <= byzantine_fraction <= 1.0:
        raise ConfigurationError(
            f"byzantine_fraction must be in [0, 1], got {byzantine_fraction}"
        )
    base = byzantine_broadcast_scenario(
        r=r,
        t=t,
        protocol=protocol,
        strategy=strategy,
        placement=placement,
        metric=metric,
        value=value,
        seed=seed,
        torus=torus,
        enforce_budget=enforce_budget,
        max_rounds=max_rounds,
        **protocol_kwargs,
    )
    rng = random.Random(seed ^ 0x5EED)
    faulty = sorted(base.byzantine_processes)
    rng.shuffle(faulty)
    keep_byzantine = int(round(len(faulty) * byzantine_fraction))
    byzantine_nodes = set(faulty[:keep_byzantine])
    crash_nodes = set(faulty[keep_byzantine:])
    return BroadcastScenario(
        topology=base.topology,
        protocol=protocol,
        t=t,
        value=value,
        source=base.source,
        byzantine_processes={
            n: p
            for n, p in base.byzantine_processes.items()
            if n in byzantine_nodes
        },
        crash_round={n: 0 for n in crash_nodes},
        max_rounds=max_rounds,
        protocol_kwargs=dict(protocol_kwargs),
    )


def crash_broadcast_scenario(
    r: int,
    t: int,
    placement: str = "strip",
    metric="linf",
    value: int = 1,
    seed: int = 0,
    torus: Optional[Torus] = None,
    torus_side: Optional[int] = None,
    faults: Optional[Iterable[Coord]] = None,
    enforce_budget: bool = True,
    staggered_max_round: Optional[int] = None,
    max_rounds: int = 200,
    protocol: str = "crash-flood",
    engine: str = "reference",
    topology_kind: str = "torus",
    channel: str = "ideal",
) -> BroadcastScenario:
    """Build a crash-stop broadcast experiment.

    ``placement="strip"`` uses the Theorem 4 two-strip partition; trimmed
    to the budget when ``enforce_budget`` (yielding the Theorem 5
    achievable regime), untrimmed otherwise (the impossibility regime).
    ``placement="explicit"`` runs the exact ``faults`` set (the
    adversary-search evaluation path); ``torus_side`` picks the square
    topology side.  ``staggered_max_round`` switches from dead-from-start
    to random crash rounds.  ``topology_kind`` and ``channel`` pick the
    topology / channel-model factor levels (the strip placement is
    torus-only; non-ideal channels need the reference engine).
    """
    _reject_stray_faults(faults, placement)
    topology = _resolve_topology(
        r, metric, placement, torus, torus_side, topology_kind, seed
    )
    source = (0, 0)
    rng = random.Random(seed)
    if placement == "strip":
        faults = torus_crash_partition(topology, source)
    elif placement == "random":
        faults = random_bounded_placement(topology, t, rng=rng, protect=source)
    elif placement == "explicit":
        faults = _explicit_faults(faults, topology)
    else:
        raise ConfigurationError(
            f"unknown placement {placement!r}; expected "
            '"strip", "random", or "explicit"'
        )
    if enforce_budget:
        faults = trim_to_budget(
            faults, t, r, metric=topology.metric, topology=topology, rng=rng
        )
    if staggered_max_round is None:
        crash_round = dead_from_start(faults)
    else:
        crash_round = staggered_crashes(faults, staggered_max_round, rng)
    return BroadcastScenario(
        topology=topology,
        protocol=protocol,
        t=t,
        value=value,
        source=source,
        crash_round=crash_round,
        max_rounds=max_rounds,
        channel=make_channel_model(channel, seed),
        engine=engine,
    )
