"""Experiment runners: one per paper figure/table (see DESIGN.md).

Each runner returns a list of dict-rows; the benches call them with small
default parameters (laptop-scale) and print them via
:func:`repro.experiments.report.format_table`.  Runners are deterministic
given their arguments: every random draw flows through a
``random.Random`` seeded by :func:`repro.exec.derive_seed`, and the
simulation-heavy sweeps route trial execution through
:class:`repro.exec.SweepExecutor` (pass ``executor=`` to parallelize or
cache them; the default is the serial, uncached executor).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.percolation import percolation_curve
from repro.analysis.reachability import crash_broadcast_coverage
from repro.core.cpa_argument import theorem6_table
from repro.core.l2_construction import l2_argument_table
from repro.core.paths import arbitrary_p_connectivity, corner_connectivity
from repro.core.regions import (
    expected_region_sizes,
    expected_U_path_counts,
    region_M,
    region_R,
    region_S1,
    region_S2,
    region_U,
    table1_U_regions,
)
from repro.core.thresholds import (
    byzantine_linf_max_t,
    crash_linf_max_t,
    crash_linf_threshold,
    cpa_best_known_max_t,
    cpa_linf_max_t,
    koo_cpa_linf_bound,
    koo_impossibility_bound,
    l2_byzantine_achievable_estimate,
    l2_byzantine_impossible_estimate,
    threshold_table,
)
from repro.core.witnesses import verify_connectivity_map
from repro.errors import WitnessError
from repro.exec import ScenarioSpec, SweepExecutor, derive_seed
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    strip_torus,
)
from repro.faults.constructions import torus_byzantine_strip, torus_crash_partition
from repro.faults.placement import max_faults_per_nbd


# -- EXP-T1 / EXP-F1_3: regions ------------------------------------------------


def run_table1_regions(radii: Sequence[int] = (1, 2, 3, 4, 5)) -> List[Dict[str, Any]]:
    """EXP-T1: for each (r, p, q) the Table I region cardinalities vs the
    proof's claimed per-family path counts."""
    rows: List[Dict[str, Any]] = []
    for r in radii:
        for q in range(1, r + 1):
            for p in range(1, q):
                regions = table1_U_regions(0, 0, r, p, q)
                claimed = expected_U_path_counts(r, p, q)
                rows.append(
                    {
                        "r": r,
                        "p": p,
                        "q": q,
                        "|A|": len(regions["A"]),
                        "|B1|": len(regions["B1"]),
                        "|C1|": len(regions["C1"]),
                        "|D1|": len(regions["D1"]),
                        "claimed_A": claimed["A"],
                        "claimed_B": claimed["B"],
                        "claimed_C": claimed["C"],
                        "claimed_D": claimed["D"],
                        "total": claimed["total"],
                        "r(2r+1)": r * (2 * r + 1),
                        "match": claimed["total"] == r * (2 * r + 1)
                        and len(regions["A"]) == claimed["A"]
                        and len(regions["B1"]) == claimed["B"]
                        and len(regions["C1"]) == claimed["C"]
                        and len(regions["D1"]) == claimed["D"],
                    }
                )
    return rows


def run_fig1_3_regions(radii: Sequence[int] = (1, 2, 3, 4, 5, 8, 12)) -> List[Dict[str, Any]]:
    """EXP-F1_3: region cardinalities |M|, |R|, |U|, |S1|, |S2| vs the
    prose claims, plus the partition check M = R + U + S1 + S2."""
    rows = []
    for r in radii:
        m = set(region_M(0, 0, r))
        rr = set(region_R(0, 0, r))
        u = set(region_U(0, 0, r))
        s1 = set(region_S1(0, 0, r))
        s2 = set(region_S2(0, 0, r))
        claim = expected_region_sizes(r)
        partition_ok = (
            m == (rr | u | s1 | s2)
            and not (rr & u)
            and not (rr & s1)
            and not (rr & s2)
            and not (u & s1)
            and not (u & s2)
            and not (s1 & s2)
        )
        rows.append(
            {
                "r": r,
                "|M|": len(m),
                "claimed_M": claim["M"],
                "|R|": len(rr),
                "claimed_R": claim["R"],
                "|U|": len(u),
                "|S1|": len(s1),
                "|S2|": len(s2),
                "partition_ok": partition_ok,
                "match": len(m) == claim["M"]
                and len(rr) == claim["R"]
                and len(u) == claim["U"]
                and len(s1) == claim["S1"]
                and len(s2) == claim["S2"]
                and partition_ok,
            }
        )
    return rows


# -- EXP-F4_6 / EXP-F7: path constructions ---------------------------------------


def run_fig4_6_paths(radii: Sequence[int] = (1, 2, 3, 4, 5)) -> List[Dict[str, Any]]:
    """EXP-F4_6: build and mechanically verify the corner-node witness for
    each radius."""
    rows = []
    for r in radii:
        families = corner_connectivity(0, 0, r)
        expected = r * (2 * r + 1)
        try:
            verify_connectivity_map(
                families,
                r,
                required_nodes=expected,
                required_paths_each=expected,
            )
            verified = True
            detail = ""
        except WitnessError as exc:  # pragma: no cover - constructions hold
            verified = False
            detail = str(exc)
        indirect = [f for f in families.values() if f.kind != "direct"]
        rows.append(
            {
                "r": r,
                "nodes_covered": len(families),
                "required": expected,
                "paths_per_indirect_node": expected,
                "indirect_nodes": len(indirect),
                "verified": verified,
                "detail": detail,
            }
        )
    return rows


def run_fig7_arbitrary_p(radii: Sequence[int] = (1, 2, 3, 4)) -> List[Dict[str, Any]]:
    """EXP-F7: the Fig. 7 claim for every top-edge offset ``l``."""
    rows = []
    for r in radii:
        for l in range(0, r + 1):
            families = arbitrary_p_connectivity(0, 0, r, l)
            expected = r * (2 * r + 1)
            try:
                verify_connectivity_map(
                    families,
                    r,
                    required_nodes=expected,
                    required_paths_each=expected,
                )
                verified = True
            except WitnessError:  # pragma: no cover
                verified = False
            direct = sum(1 for f in families.values() if f.kind == "direct")
            rows.append(
                {
                    "r": r,
                    "l": l,
                    "nodes_covered": len(families),
                    "required": expected,
                    "direct_nodes": direct,
                    "claimed_direct_r(r+l+1)": r * (r + l + 1),
                    "verified": verified,
                }
            )
    return rows


# -- EXP-F8 / EXP-THM45: crash-stop threshold ---------------------------------------


def run_fig8_crash_impossibility(
    radii: Sequence[int] = (1, 2, 3)
) -> List[Dict[str, Any]]:
    """EXP-F8: the strip partition at ``t = r(2r+1)`` (analytic
    reachability) versus the punctured strip at ``t - 1``."""
    rows = []
    for r in radii:
        torus = strip_torus(r)
        faults = torus_crash_partition(torus)
        worst, _ = max_faults_per_nbd(
            faults, r, metric=torus.metric, topology=torus
        )
        full = crash_broadcast_coverage(torus, (0, 0), faults)
        # puncture: remove one fault from each strip column block
        hole = sorted(faults)[0]
        punctured = faults - {hole}
        healed = crash_broadcast_coverage(torus, (0, 0), punctured)
        rows.append(
            {
                "r": r,
                "t_threshold_r(2r+1)": crash_linf_threshold(r),
                "max_faults_per_nbd": worst,
                "coverage_at_threshold": round(full.coverage, 3),
                "partitioned": not full.complete,
                "coverage_with_hole": round(healed.coverage, 3),
                "healed_complete": healed.complete,
            }
        )
    return rows


def run_crash_threshold_sweep(
    radii: Sequence[int] = (1, 2),
    protocol: str = "crash-flood",
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, Any]]:
    """EXP-THM45: simulated crash-flood around ``t = r(2r+1)``.

    Below the threshold the strip is trimmed to the budget (holes open) and
    the broadcast completes; at the threshold the untrimmed strip
    partitions the far band.  Scenario runs route through ``executor``
    (serial by default).
    """
    executor = executor or SweepExecutor()
    grid = [
        (r, label, t, enforce)
        for r in radii
        for label, t, enforce in (
            ("below", crash_linf_max_t(r), True),
            ("at", crash_linf_threshold(r), False),
        )
    ]
    specs = [
        ScenarioSpec(
            kind="crash",
            r=r,
            t=t,
            protocol=protocol,
            placement="strip",
            enforce_budget=enforce,
            validate=True,
        )
        for r, label, t, enforce in grid
    ]
    result = executor.run(specs, root_seed=seed)
    rows = []
    for (r, label, t, _enforce), (trial,) in zip(grid, result.rows):
        rows.append(
            {
                "r": r,
                "regime": label,
                "t": t,
                "faults": trial["faults"],
                "achieved": trial["achieved"],
                "safe": trial["safe"],
                "live": trial["live"],
                "undecided": trial["undecided"],
                "rounds": trial["rounds"],
                "messages": trial["messages"],
            }
        )
    return rows


# -- EXP-THM1: Byzantine threshold ---------------------------------------------------


def run_byzantine_threshold_sweep(
    radii: Sequence[int] = (1, 2),
    protocol: str = "bv-two-hop",
    strategies: Sequence[str] = ("silent", "liar", "fabricator"),
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, Any]]:
    """EXP-THM1: the exact Byzantine threshold, both sides, per strategy.

    Below (``t = byzantine_linf_max_t``) the protocol must achieve
    broadcast against every strategy; at Koo's bound
    (``t = ceil(r(2r+1)/2)``) the strip construction blocks liveness (and
    safety must still hold).  Scenario runs route through ``executor``
    (serial by default).
    """
    executor = executor or SweepExecutor()
    grid = [
        (r, strategy, label, t, enforce)
        for r in radii
        for strategy in strategies
        for label, t, enforce in (
            ("below", byzantine_linf_max_t(r), True),
            ("at", koo_impossibility_bound(r), True),
        )
    ]
    specs = [
        ScenarioSpec(
            kind="byzantine",
            r=r,
            t=t,
            protocol=protocol,
            strategy=strategy,
            placement="strip",
            enforce_budget=enforce,
            validate=True,
        )
        for r, strategy, label, t, enforce in grid
    ]
    result = executor.run(specs, root_seed=seed)
    rows = []
    for (r, strategy, label, t, _enforce), (trial,) in zip(
        grid, result.rows
    ):
        rows.append(
            {
                "r": r,
                "strategy": strategy,
                "regime": label,
                "t": t,
                "threshold_r(2r+1)/2": r * (2 * r + 1) / 2,
                "faults": trial["faults"],
                "achieved": trial["achieved"],
                "safe": trial["safe"],
                "live": trial["live"],
                "undecided": trial["undecided"],
                "rounds": trial["rounds"],
                "messages": trial["messages"],
            }
        )
    return rows


# -- EXP-THM6: CPA -------------------------------------------------------------------


def run_cpa_threshold_sweep(
    radii: Sequence[int] = (2, 3),
    strategies: Sequence[str] = ("liar",),
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, Any]]:
    """EXP-THM6: CPA at Theorem 6's budget, at Koo's budget, and at the
    impossibility bound; plus the bound comparison.  Scenario runs route
    through ``executor`` (serial by default)."""
    executor = executor or SweepExecutor()
    grid = [
        (r, strategy, label, t, enforce)
        for r in radii
        for strategy in strategies
        for label, (t, enforce) in {
            "thm6_t=2r^2/3": (cpa_linf_max_t(r), True),
            "best_known": (cpa_best_known_max_t(r), True),
            "impossible": (koo_impossibility_bound(r), True),
        }.items()
    ]
    specs = [
        ScenarioSpec(
            kind="byzantine",
            r=r,
            t=t,
            protocol="cpa",
            strategy=strategy,
            placement="strip",
            enforce_budget=enforce,
            validate=True,
        )
        for r, strategy, label, t, enforce in grid
    ]
    result = executor.run(specs, root_seed=seed)
    rows = []
    for (r, strategy, label, t, _enforce), (trial,) in zip(
        grid, result.rows
    ):
        rows.append(
            {
                "r": r,
                "strategy": strategy,
                "regime": label,
                "t": t,
                "koo_bound": round(koo_cpa_linf_bound(r), 2),
                "achieved": trial["achieved"],
                "safe": trial["safe"],
                "undecided": trial["undecided"],
                "rounds": trial["rounds"],
                "messages": trial["messages"],
            }
        )
    return rows


# -- EXP-F11_12 / EXP-F13 / EXP-F14_19 --------------------------------------------------


def run_l2_argument(radii: Sequence[int] = (2, 3, 4, 5, 6)) -> List[Dict[str, Any]]:
    """EXP-F11_12: measured L2 disjoint-path connectivity vs the paper's
    area argument (see :mod:`repro.core.l2_construction`)."""
    return l2_argument_table(list(radii))


def run_l2_impossibility(radii: Sequence[int] = (2, 3, 4)) -> List[Dict[str, Any]]:
    """EXP-F13: the half-density strip under the L2 metric -- measured
    worst per-neighborhood fault count vs ``0.3 pi r^2``, and the
    simulated liveness failure."""
    import math

    rows = []
    for r in radii:
        torus = strip_torus(r, metric="l2")
        faults = torus_byzantine_strip(torus)
        worst, _ = max_faults_per_nbd(faults, r, metric="l2", topology=torus)
        sc = byzantine_broadcast_scenario(
            r=r,
            t=worst,
            protocol="bv-two-hop",
            strategy="silent",
            placement="strip",
            metric="l2",
            torus=torus,
            enforce_budget=False,
        )
        sc.validate()
        out = sc.run()
        rows.append(
            {
                "r": r,
                "worst_faults_per_nbd": worst,
                "paper_0.3*pi*r^2": round(0.3 * math.pi * r * r, 1),
                "achieved": out.achieved,
                "safe": out.safe,
                "undecided": len(out.undecided),
            }
        )
    return rows


def run_cpa_stage_table(
    radii: Sequence[int] = (2, 3, 4, 6, 9, 12, 20, 50, 100)
) -> List[Dict[str, Any]]:
    """EXP-F14_19: Theorem 6's stage inequalities over radii."""
    return theorem6_table(list(radii))


# -- EXP-PERC: percolation ---------------------------------------------------------------


def run_percolation(
    r: int = 2,
    side: int = 31,
    probabilities: Sequence[float] = (0.05, 0.2, 0.4, 0.6, 0.8, 0.95),
    trials: int = 10,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """EXP-PERC: Section XI's random-failure model (site percolation)."""
    from repro.grid.torus import Torus

    torus = Torus.square(side, r)
    points = percolation_curve(
        torus, (0, 0), list(probabilities), trials=trials, seed=seed
    )
    return [
        {
            "p_fail": pt.p_fail,
            "trials": pt.trials,
            "mean_coverage": round(pt.mean_coverage, 3),
            "stdev": round(pt.stdev_coverage, 3),
            "always_complete": round(pt.all_reached_fraction, 3),
        }
        for pt in points
    ]


# -- EXP-PROTO: protocol costs ------------------------------------------------------------


def run_protocol_costs(
    r: int = 1,
    protocols: Sequence[str] = (
        "cpa",
        "bv-two-hop",
        "bv-indirect",
        "bv-earmarked",
    ),
    strategy: str = "liar",
) -> List[Dict[str, Any]]:
    """EXP-PROTO: message/round cost comparison at each protocol's
    per-protocol safe budget."""
    rows = []
    for name in protocols:
        t = (
            cpa_best_known_max_t(r)
            if name == "cpa"
            else byzantine_linf_max_t(r)
        )
        sc = byzantine_broadcast_scenario(
            r=r, t=t, protocol=name, strategy=strategy
        )
        sc.validate()
        out = sc.run()
        state_sizes = [
            proc.evidence_state_size()
            for node, proc in out.result.processes.items()
            if node in sc.correct_nodes
            and hasattr(proc, "evidence_state_size")
        ]
        rows.append(
            {
                "protocol": name,
                "r": r,
                "t": t,
                "achieved": out.achieved,
                "rounds": out.rounds,
                "messages": out.messages,
                "deliveries": out.result.trace.deliveries,
                "max_state": max(state_sizes) if state_sizes else 0,
                "mean_state": round(
                    sum(state_sizes) / len(state_sizes), 1
                )
                if state_sizes
                else 0,
            }
        )
    return rows


def run_threshold_overview(radii: Sequence[int] = (1, 2, 3, 4, 5, 8, 10)) -> List[Dict[str, Any]]:
    """The abstract's headline numbers: every bound per radius."""
    return threshold_table(list(radii))


# -- EXP-SECX: Section X attacks ---------------------------------------------------


def run_section_x_attacks(r: int = 1) -> List[Dict[str, Any]]:
    """EXP-SECX: what breaks when the channel assumptions fall.

    One row per regime: the enforced (perfect) channel rejects the attack
    outright; spoofing defeats safety with a single fault; unbounded
    jamming defeats liveness with a single fault; bounded jamming plus
    retransmission recovers; loss plus redundant copies recovers.
    """
    from repro.errors import SpoofingError
    from repro.faults.channel_attacks import RoundJammer, SourceImpersonator
    from repro.protocols.registry import correct_process_map
    from repro.radio.channel import ChannelImperfections
    from repro.radio.resilience import RetransmittingProcess
    from repro.radio.run import run_broadcast
    from repro.experiments.scenarios import recommended_torus

    rows: List[Dict[str, Any]] = []
    torus = recommended_torus(r)
    attacker = (3 * r, 3 * r)
    correct = set(torus.nodes()) - {attacker}

    def row(regime, outcome=None, note=""):
        entry: Dict[str, Any] = {"regime": regime, "faults": 1}
        if outcome is None:
            entry.update(
                {"achieved": False, "safe": True, "undecided": "n/a"}
            )
        else:
            entry.update(
                {
                    "achieved": outcome.achieved,
                    "safe": outcome.safe,
                    "undecided": len(outcome.undecided),
                }
            )
        entry["note"] = note
        return entry

    # 1. enforced channel: the attack is rejected by the engine
    processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
    processes[attacker] = SourceImpersonator(0, source=(0, 0))
    try:
        run_broadcast(torus, processes, 1, correct)
        raise AssertionError("spoofing must be rejected")  # pragma: no cover
    except SpoofingError:
        rows.append(
            row("spoofing, enforced channel", None, "SpoofingError raised")
        )

    # 2. spoofing allowed: one fault breaks safety
    processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
    processes[attacker] = SourceImpersonator(0, source=(0, 0))
    out = run_broadcast(
        torus,
        processes,
        1,
        correct,
        channel=ChannelImperfections(allow_spoofing=True),
    )
    rows.append(row("spoofing allowed", out, "one fault poisons commits"))

    # 3. unbounded jamming: one fault breaks liveness
    processes = correct_process_map(
        torus, "crash-flood", 0, (0, 0), 1, correct
    )
    processes[attacker] = RoundJammer()
    out = run_broadcast(
        torus,
        processes,
        1,
        correct,
        channel=ChannelImperfections(allow_jamming=True),
        max_rounds=40,
    )
    rows.append(row("unbounded jamming", out, "jammer's nbd cut off"))

    # 4. bounded jamming + retransmission: recovered
    budget = 2
    processes = {
        node: RetransmittingProcess(proc, repeats=budget + 2)
        for node, proc in correct_process_map(
            torus, "crash-flood", 0, (0, 0), 1, correct
        ).items()
    }
    processes[attacker] = RoundJammer()
    out = run_broadcast(
        torus,
        processes,
        1,
        correct,
        channel=ChannelImperfections(
            allow_jamming=True, max_jam_rounds_per_node=budget
        ),
        max_rounds=60,
    )
    rows.append(
        row(
            f"jam budget {budget} + {budget + 2} repeats",
            out,
            "retransmission wins",
        )
    )

    # 5. lossy channel + redundant copies: probabilistic local broadcast
    all_nodes = set(torus.nodes())
    processes = correct_process_map(
        torus, "bv-two-hop", 0, (0, 0), 1, all_nodes
    )
    out = run_broadcast(
        torus,
        processes,
        1,
        all_nodes,
        channel=ChannelImperfections(loss_rate=0.2, tx_copies=8, seed=3),
        max_rounds=100,
    )
    rows.append(
        row("20% loss + 8 copies", out, "1-p^k delivery suffices")
    )
    return rows


# -- EXP-BOUNDARY: boundary anomalies on the non-toroidal grid ------------------------


def run_boundary_effects(
    radii: Sequence[int] = (1, 2),
    side: int = 11,
    trials: int = 4,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """EXP-BOUNDARY: why the paper uses the torus.

    Compares, per radius: the vertex connectivity from a central source
    to a corner on the bounded grid vs an interior pair on the torus (the
    crash-tolerance budget each supports), and the random-placement
    success fraction at the torus-safe budget on both topologies.  Each
    trial draws from its own ``random.Random`` seeded by
    :func:`repro.exec.derive_seed`.
    """
    from repro.analysis.flows import local_vertex_connectivity
    from repro.faults.random_faults import random_bounded_placement
    from repro.grid.bounded import BoundedGrid
    from repro.grid.graphs import adjacency_map
    from repro.grid.torus import Torus
    from repro.protocols.registry import correct_process_map
    from repro.radio.run import run_broadcast

    rows: List[Dict[str, Any]] = []
    for r in radii:
        bounded = BoundedGrid.square(side, r)
        torus = Torus.square(side, r)
        center = (side // 2, side // 2)
        corner_cut = local_vertex_connectivity(
            adjacency_map(bounded), center, (0, 0)
        )
        torus_cut = local_vertex_connectivity(
            adjacency_map(torus), center, (0, 0)
        )
        t = crash_linf_max_t(r)

        def success_fraction(topology) -> float:
            wins = 0
            scenario_key = f"boundary:r={r}:side={side}:{type(topology).__name__}"
            for trial in range(trials):
                faults = random_bounded_placement(
                    topology,
                    t,
                    rng=random.Random(derive_seed(seed, scenario_key, trial)),
                    protect=center,
                )
                correct = set(topology.nodes()) - faults
                processes = correct_process_map(
                    topology, "crash-flood", t, center, 1, correct
                )
                out = run_broadcast(
                    topology,
                    processes,
                    1,
                    correct,
                    crash_round={f: 0 for f in faults},
                )
                wins += out.achieved
            return wins / trials

        rows.append(
            {
                "r": r,
                "corner_cut_bounded": corner_cut,
                "interior_cut_torus": torus_cut,
                "crash_budget_torus_safe": t,
                "success_torus": success_fraction(torus),
                "success_bounded": success_fraction(bounded),
            }
        )
    return rows


# -- EXP-WAVE: commit-wave latency ------------------------------------------------------


def run_commit_wave(
    r: int = 1,
    protocol: str = "bv-two-hop",
    strategy: str = "silent",
) -> List[Dict[str, Any]]:
    """EXP-WAVE: commit round as a function of distance from the source.

    The inductive proofs propagate commitment one perturbed neighborhood
    per step; under synchronous (end-of-round) delivery the measured wave
    is monotone in distance and roughly linear -- the protocol's latency
    profile in protocol steps.
    """
    sc = byzantine_broadcast_scenario(
        r=r, t=byzantine_linf_max_t(r), protocol=protocol, strategy=strategy
    )
    sc.delivery = "end-of-round"
    sc.validate()
    out = sc.run()
    by_distance: Dict[int, List[int]] = {}
    for node, proc in out.result.processes.items():
        commit_round = getattr(proc, "commit_round", None)
        if commit_round is None:
            continue
        d = int(sc.topology.distance(sc.source, node))
        by_distance.setdefault(d, []).append(commit_round)
    rows = []
    for d in sorted(by_distance):
        rounds = by_distance[d]
        rows.append(
            {
                "distance": d,
                "nodes": len(rounds),
                "min_round": min(rounds),
                "mean_round": round(sum(rounds) / len(rounds), 2),
                "max_round": max(rounds),
            }
        )
    return rows


# -- EXP-SHARP: threshold sharpness under random adversaries -------------------------


def run_threshold_sharpness(
    r: int = 1,
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    trials: int = 4,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, Any]]:
    """EXP-SHARP: success fraction vs budget under *random* placements.

    Below the exact threshold the fraction must be 1.0 (worst-case
    guarantee); above it, random placements may still succeed -- the
    impossibility construction is special, and the table shows by how
    much.  Trials fan out through ``executor`` (serial by default); pass
    ``SweepExecutor(workers=N, cache=...)`` to parallelize/memoize.
    """
    from repro.analysis.sweep import byzantine_sharpness_run

    budgets = list(range(0, koo_impossibility_bound(r) + 2))
    run = byzantine_sharpness_run(
        r,
        budgets,
        protocol=protocol,
        strategy=strategy,
        trials=trials,
        seed=seed,
        executor=executor,
    )
    threshold = byzantine_linf_max_t(r)
    rows = []
    for pt in run.points:
        entry = pt.row()
        entry["regime"] = (
            "guaranteed" if pt.t <= threshold else "beyond threshold"
        )
        rows.append(entry)
    return rows


# -- EXP-ADV: searched vs random adversaries ------------------------------------


def run_adversarial_sharpness(
    r: int = 1,
    kinds: Sequence[str] = ("byzantine", "crash"),
    strategy: str = "anneal",
    byz_strategy: str = "silent",
    trials: int = 4,
    eval_budget: int = 24,
    seed: int = 0,
    workers: int = 1,
) -> List[Dict[str, Any]]:
    """EXP-ADV: random placements vs *searched* placements at the boundary.

    For each fault kind, at the last safe budget and at the threshold:
    how often ``trials`` random budget-respecting placements defeat the
    protocol, versus whether the adversary search engine
    (:mod:`repro.adversary`) finds a defeating placement within
    ``eval_budget`` evaluations.  The table makes the paper's point
    operational -- random adversaries almost never witness the
    impossibility; the searched worst case does, exactly at the
    threshold and never below it.
    """
    from repro.adversary import SearchConfig, run_search

    executor = SweepExecutor(workers=workers)
    rows: List[Dict[str, Any]] = []
    for kind in kinds:
        if kind == "byzantine":
            regimes = (
                ("below", byzantine_linf_max_t(r)),
                ("at", koo_impossibility_bound(r)),
            )
        else:
            regimes = (
                ("below", crash_linf_max_t(r)),
                ("at", crash_linf_threshold(r)),
            )
        protocol = "bv-two-hop" if kind == "byzantine" else "crash-flood"
        for regime, t in regimes:
            spec = ScenarioSpec(
                kind=kind,
                r=r,
                t=t,
                trials=trials,
                protocol=protocol,
                strategy=byz_strategy if kind == "byzantine" else None,
                placement="random",
                max_rounds=120,
            )
            random_rows = executor.run([spec], root_seed=seed).rows[0]
            random_defeats = sum(1 for row in random_rows if not row["achieved"])
            result = run_search(
                SearchConfig(
                    kind=kind,
                    r=r,
                    t=t,
                    byz_strategy=byz_strategy,
                    seed=seed,
                    eval_budget=eval_budget,
                    max_rounds=120,
                ),
                strategy=strategy,
                workers=workers,
            )
            rows.append(
                {
                    "kind": kind,
                    "regime": regime,
                    "t": t,
                    "random_trials": trials,
                    "random_defeats": random_defeats,
                    "searched_defeated": result.defeated,
                    "search_evals": result.evaluations,
                    "search_best_value": round(result.best_score.value, 1),
                    "search_faults": len(result.best_faults),
                }
            )
    return rows


def run_l2_bracket(
    r: int = 2,
    budgets: Optional[Sequence[int]] = None,
    strategies: Sequence[str] = ("silent", "fabricator"),
    eval_budget: int = 16,
    seed: int = 0,
    workers: int = 1,
) -> List[Dict[str, Any]]:
    """EXP-L2BRACKET: adversary-searched bracket of the open L2 constants.

    Section VIII leaves a gap under the Euclidean metric: reliable
    broadcast is achievable while the per-neighborhood budget stays below
    ~``0.23 pi r^2`` and impossible from ~``0.3 pi r^2`` up, and the
    constants in between are open.  This runner turns the gap into a
    measured bracket: for every integer budget ``t`` from just below the
    achievable line to just above the impossibility line it runs the
    automated adversary search (:mod:`repro.adversary`) over valid L2
    placements -- one liveness adversary (``silent``) and one safety
    adversary (``fabricator``) per budget -- and records whether any
    searched placement defeats the protocol.

    Budgets inside the open gap additionally get a *certificate*: the
    best placement found is independently re-validated against the
    ``t``-per-ball budget and replayed to a hashed JSONL trace
    (:func:`repro.adversary.certify_placement`), so the headline row --
    empirical evidence at a budget strictly between the two published
    constants -- is reproducible evidence, not a summary statistic.

    Rows are labelled by zone: ``below-achievable`` (the theorems say no
    placement can win; the search must come up empty), ``open-gap`` (no
    published answer either way), ``above-impossibility`` (a defeating
    placement exists; the search should find one).
    """
    import math

    from repro.adversary import SearchConfig, certify_result, run_search

    achievable = l2_byzantine_achievable_estimate(r)
    impossible = l2_byzantine_impossible_estimate(r)
    if budgets is None:
        lo = max(0, math.ceil(achievable) - 1)
        budgets = list(range(lo, math.ceil(impossible) + 2))
    rows: List[Dict[str, Any]] = []
    for t in budgets:
        if t < achievable:
            zone = "below-achievable"
        elif t < impossible:
            zone = "open-gap"
        else:
            zone = "above-impossibility"
        for byz_strategy in strategies:
            result = run_search(
                SearchConfig(
                    kind="byzantine",
                    r=r,
                    t=t,
                    byz_strategy=byz_strategy,
                    metric="l2",
                    seed=seed,
                    eval_budget=eval_budget,
                    max_rounds=120,
                ),
                strategy="anneal",
                workers=workers,
            )
            row = {
                "r": r,
                "t": t,
                "zone": zone,
                "achievable_0.23*pi*r^2": round(achievable, 2),
                "impossible_0.3*pi*r^2": round(impossible, 2),
                "byz_strategy": byz_strategy,
                "defeated": result.defeated,
                "evaluations": result.evaluations,
                "best_value": round(result.best_score.value, 1),
                "num_faults": len(result.best_faults),
            }
            if zone == "open-gap" and result.best_faults:
                cert = certify_result(result)
                row["certified_worst_nbd"] = cert.worst_nbd
                row["certified_defeated"] = cert.defeated
                row["trace_sha256"] = cert.trace_sha256
            rows.append(row)
    return rows
