"""The campaign manager: backend-agnostic sweep orchestration.

:class:`CampaignRunner` sits between the planning/caching layer and a
pluggable :class:`~repro.exec.backends.base.ExecutionBackend`.  The
division of labor:

- **planning** (:func:`plan_units`) chunks every spec's trial range into
  content-addressed work units, identically for every backend and worker
  count (cache keys embed trial indices, so chunking is part of unit
  identity);
- **the backend** computes pending units and reports completions in
  whatever order it likes;
- **the campaign manager** owns everything order-sensitive: cache
  lookups before submission, cache writes the moment a unit completes
  (checkpointing -- an interrupted campaign resumes from its last
  completed unit), and *ordered finalization* -- completed units are
  released strictly in plan order so every consumer, streaming or batch,
  sees byte-identical output no matter which backend ran the sweep or
  how completion interleaved.

Progress counters (``units_total`` / ``units_completed`` /
``units_cached`` / ``units_failed``) are cumulative across runs and
thread-safe to read mid-run -- the ``repro serve`` metrics endpoint
polls them from another thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exec.backends.base import BackendError, ExecutionBackend
from repro.exec.cache import ResultCache
from repro.exec.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecStats,
    SweepRunResult,
    _run_unit,
    unit_cache_key,
)
from repro.exec.specs import ScenarioSpec


@dataclass
class UnitState:
    """One planned work unit and (once available) its rows."""

    #: index of the owning spec in the campaign's spec list
    spec_index: int
    #: the trial indices this unit covers (ascending, contiguous)
    indices: Tuple[int, ...]
    #: content-address of the unit in the result store
    key: str
    #: trial rows in index order; ``None`` until computed or cache-hit
    rows: Optional[List[Dict[str, Any]]] = None
    #: whether the rows came from the cache rather than a backend
    from_cache: bool = False


def plan_units(
    specs: Sequence[ScenarioSpec],
    root_seed: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[UnitState]:
    """Chunk every spec's trial range into content-addressed units.

    Plan order is (spec order, ascending trial index) -- the order rows
    must appear in the final output, and therefore the order
    :meth:`CampaignRunner.iter_finalized` releases units in.
    """
    units: List[UnitState] = []
    for spec_index, spec in enumerate(specs):
        for start in range(0, spec.trials, chunk_size):
            indices = tuple(
                range(start, min(start + chunk_size, spec.trials))
            )
            units.append(
                UnitState(
                    spec_index=spec_index,
                    indices=indices,
                    key=unit_cache_key(spec, root_seed, indices),
                )
            )
    return units


class CampaignRunner:
    """Drive a sweep campaign through any execution backend.

    Parameters
    ----------
    backend:
        The :class:`ExecutionBackend` that computes pending units.
    cache:
        Shared :class:`ResultCache`, or ``None`` to always recompute.
        The cache is both memo and checkpoint: hits skip submission,
        and every completion is banked immediately.
    chunk_size:
        Trials per unit; part of cache-key identity, so keep it stable
        across runs that should share entries.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        cache: Optional[ResultCache] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.backend = backend
        self.cache = cache
        self.chunk_size = chunk_size
        self._lock = threading.Lock()
        #: cumulative campaign counters (thread-safe via :meth:`status`)
        self.units_total = 0
        self.units_completed = 0
        self.units_cached = 0
        self.units_failed = 0

    def _bump(self, counter: str, by: int = 1) -> None:
        """Thread-safe increment of a cumulative counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def iter_finalized(
        self,
        specs: Sequence[ScenarioSpec],
        root_seed: int = 0,
        stats: Optional[ExecStats] = None,
    ) -> Iterator[UnitState]:
        """Yield every planned unit, rows attached, in **plan order**.

        Units finalize as soon as they and every plan-order predecessor
        have rows -- a cache hit late in the plan still waits for the
        computed unit before it, so a streaming consumer writes the
        same bytes a batch consumer would.  Completions are banked to
        the cache the moment the backend reports them (before ordered
        release), so an interruption never loses finished work.

        ``stats``, when given, is filled in-place with this run's
        accounting (hit/miss split, trials computed).
        """
        units = plan_units(specs, root_seed, self.chunk_size)
        self._bump("units_total", len(units))
        pending: List[UnitState] = []
        for unit in units:
            cached = self.cache.get(unit.key) if self.cache else None
            if cached is not None and len(cached) == len(unit.indices):
                unit.rows = cached
                unit.from_cache = True
                self._bump("units_cached")
            else:
                pending.append(unit)
        if stats is not None:
            stats.units_total = len(units)
            stats.cache_hits = len(units) - len(pending)
            stats.cache_misses = len(pending)
            stats.trials_total = sum(s.trials for s in specs)
            stats.trials_computed = sum(len(u.indices) for u in pending)
            stats.workers = self.backend.workers
            stats.cache_enabled = self.cache is not None

        payloads = [
            (specs[u.spec_index].as_dict(), int(root_seed), u.indices)
            for u in pending
        ]
        cursor = 0
        try:
            completions = (
                self.backend.run_units(_run_unit, payloads)
                if payloads
                else iter(())
            )
            for pending_index, rows in completions:
                unit = pending[pending_index]
                unit.rows = rows
                self._bank(specs[unit.spec_index], root_seed, unit)
                self._bump("units_completed")
                while cursor < len(units) and units[cursor].rows is not None:
                    yield units[cursor]
                    cursor += 1
        except BackendError:
            self._bump("units_failed", len(units) - cursor)
            raise
        # everything after the last computed unit is cache hits
        while cursor < len(units):
            unit = units[cursor]
            if unit.rows is None:
                self._bump("units_failed", len(units) - cursor)
                raise BackendError(
                    f"backend {self.backend.name!r} finished without "
                    f"completing unit {cursor} (key {unit.key[:12]}...)"
                )
            yield unit
            cursor += 1

    def _bank(
        self, spec: ScenarioSpec, root_seed: int, unit: UnitState
    ) -> None:
        """Checkpoint one completed unit into the shared store."""
        if self.cache is None:
            return
        self.cache.put(
            unit.key,
            unit.rows or [],
            meta={
                "scenario_key": spec.scenario_key(),
                "root_seed": int(root_seed),
                "indices": list(unit.indices),
            },
        )

    def run(
        self, specs: Sequence[ScenarioSpec], root_seed: int = 0
    ) -> SweepRunResult:
        """Execute the campaign; per-spec rows in trial order plus stats.

        The batch form of :meth:`iter_finalized`: same units, same
        bytes, assembled into one :class:`SweepRunResult`.
        """
        started = time.perf_counter()
        stats = ExecStats()
        per_spec: List[List[Dict[str, Any]]] = [[] for _ in specs]
        for unit in self.iter_finalized(specs, root_seed, stats=stats):
            assert unit.rows is not None
            per_spec[unit.spec_index].extend(unit.rows)
        stats.trials_total = sum(s.trials for s in specs)
        stats.workers = self.backend.workers
        stats.cache_enabled = self.cache is not None
        stats.wall_clock_s = time.perf_counter() - started
        return SweepRunResult(rows=per_spec, stats=stats)

    def status(self) -> Dict[str, Any]:
        """Cumulative campaign counters plus the backend's live state."""
        with self._lock:
            snapshot = {
                "units_total": self.units_total,
                "units_completed": self.units_completed,
                "units_cached": self.units_cached,
                "units_failed": self.units_failed,
            }
        snapshot["backend"] = self.backend.status()
        return snapshot
