"""Picklable sweep specifications and the single-trial runner.

A :class:`ScenarioSpec` is the unit of *description*: one scenario point
(fault kind, radius, budget, protocol, adversary, placement scheme) plus
how many randomized trials to run at it.  It is a frozen dataclass of
plain values so work units can cross process boundaries and so its
canonical JSON form can be hashed -- the same string serves as the
seed-derivation key and as part of the disk-cache key.

:func:`run_trial` is the unit of *work*: build the scenario with a derived
seed, simulate, and reduce the outcome to a small dict of plain metrics
(everything the sweep aggregators and figure runners need, nothing that
drags simulator state across the pickle boundary).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.grid.factory import TOPOLOGY_KINDS
from repro.radio.channel import CHANNEL_MODELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import BroadcastScenario

#: Fault kinds a spec can describe.  ``"byzantine"`` routes through
#: :func:`repro.experiments.scenarios.byzantine_broadcast_scenario`,
#: ``"crash"`` through
#: :func:`repro.experiments.scenarios.crash_broadcast_scenario`.
KINDS = ("byzantine", "crash")

#: :class:`ScenarioSpec` fields that are *deliberately* outside the
#: scenario/cache key, with the reason -- audited statically by the
#: ``cache-key-soundness`` lint pass: any spec field read in the call
#: closure of :func:`run_trial` must either feed
#: :meth:`ScenarioSpec.key_payload` or appear here with a reason.
KEY_EXEMPT_FIELDS: Dict[str, str] = {
    "collect_metrics": (
        "pure observation: it never changes the simulation, so it is "
        "excluded from scenario_key() on purpose (same seeds either "
        "way); it joins unit_cache_key conditionally because it "
        "changes the cached row shape"
    ),
    "engine": (
        "backend selection, not scenario identity: the fastpath and "
        "reference engines are observationally identical (enforced "
        "byte-for-byte by tests/test_fastpath_differential.py), so the "
        "same seeds, rows, and cached results apply either way and the "
        "engine is excluded from scenario_key() and unit_cache_key"
    ),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep point: a scenario family and a trial count.

    Everything except ``trials`` identifies the scenario and feeds the
    stable :meth:`scenario_key`; ``trials`` only says how many seeds to
    draw from that scenario's stream, so extending a sweep from 5 to 50
    trials reuses the first 5 trials' seeds (and their cached results).
    """

    kind: str
    r: int
    t: int
    trials: int = 1
    protocol: str = "bv-two-hop"
    strategy: Optional[str] = "fabricator"
    placement: str = "random"
    metric: str = "linf"
    enforce_budget: bool = True
    validate: bool = False
    max_rounds: int = 200
    #: attach a :class:`repro.obs.RunMetrics` observer to every trial and
    #: embed its schema-versioned summary in the result row under
    #: ``"metrics"``.  Pure observation: it does not change the scenario,
    #: so it is excluded from :meth:`scenario_key` (same seeds, same
    #: simulation with or without it) -- but it *is* part of the work-unit
    #: cache key, since it changes the row shape.
    collect_metrics: bool = False
    #: extra keyword arguments forwarded to the scenario builder
    #: (protocol kwargs for Byzantine scenarios, e.g.
    #: ``staggered_max_round`` for crash ones), kept as a sorted tuple of
    #: pairs so the spec stays hashable and canonical.
    scenario_kwargs: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    #: which simulation backend runs the trials (see
    #: :data:`repro.radio.engines.ENGINES`).  Outside the scenario/cache
    #: key: the backends are observationally identical, so rows computed
    #: on either are interchangeable (see :data:`KEY_EXEMPT_FIELDS`).
    engine: str = "reference"
    #: topology factor level (:data:`repro.grid.factory.TOPOLOGY_KINDS`).
    #: Keyed *conditionally*: the default ``"torus"`` is omitted from
    #: :meth:`key_payload` so every pre-existing scenario key -- and with
    #: it every derived trial seed and cached work unit -- is unchanged
    #: by the field's introduction (schema evolution by omission).
    topology: str = "torus"
    #: channel-model factor level
    #: (:data:`repro.radio.channel.CHANNEL_MODELS`).  Conditionally keyed
    #: exactly like ``topology``: the default ``"ideal"`` is omitted.
    channel: str = "ideal"

    def __post_init__(self) -> None:
        from repro.radio.engines import (
            FASTPATH_BYZANTINE_PROTOCOLS,
            FASTPATH_FIXED_STRATEGIES,
            FASTPATH_PROTOCOLS,
            validate_engine,
        )

        validate_engine(self.engine)
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )
        if self.topology not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.topology!r}; expected one "
                f"of {TOPOLOGY_KINDS}"
            )
        if self.channel not in CHANNEL_MODELS:
            raise ConfigurationError(
                f"unknown channel model {self.channel!r}; expected one "
                f"of {CHANNEL_MODELS}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.engine == "fastpath":
            # hard gate, not silent fallback: the kernels assume toroidal
            # wrap and a perfect channel, so anything else must raise --
            # never quietly compute torus/ideal results for a spec that
            # asked for a different factor level
            if self.topology != "torus":
                raise ConfigurationError(
                    'engine="fastpath" cannot run this scenario: the '
                    "fastpath engine supports only the torus topology "
                    f"factor, got topology={self.topology!r}"
                )
            if self.channel != "ideal":
                raise ConfigurationError(
                    'engine="fastpath" cannot run this scenario: '
                    "channel imperfections require the reference engine, "
                    f"got channel={self.channel!r}"
                )
            if self.protocol not in FASTPATH_PROTOCOLS:
                raise ConfigurationError(
                    'engine="fastpath" cannot run this scenario: '
                    f"protocol {self.protocol!r} has no fastpath kernel "
                    f"(supported: {FASTPATH_PROTOCOLS})"
                )
            if self.kind == "byzantine":
                if self.protocol not in FASTPATH_BYZANTINE_PROTOCOLS:
                    raise ConfigurationError(
                        'engine="fastpath" cannot run this scenario: '
                        f"protocol {self.protocol!r} has no "
                        "Byzantine-capable fastpath kernel (supported: "
                        f"{FASTPATH_BYZANTINE_PROTOCOLS}); Byzantine "
                        "scenarios for other protocols need the "
                        "reference engine"
                    )
                strategy = self.strategy or "fabricator"
                if strategy not in FASTPATH_FIXED_STRATEGIES:
                    raise ConfigurationError(
                        'engine="fastpath" cannot run this scenario: '
                        f"Byzantine strategy {strategy!r} runs arbitrary "
                        "node code (no fixed-strategy kernel; supported: "
                        f"{FASTPATH_FIXED_STRATEGIES}); use "
                        'engine="reference"'
                    )
        canonical = tuple(
            sorted((str(k), v) for k, v in tuple(self.scenario_kwargs))
        )
        object.__setattr__(self, "scenario_kwargs", canonical)
        if self.kind == "crash":
            object.__setattr__(self, "strategy", None)

    def key_payload(self) -> Dict[str, Any]:
        """The scenario-identity fields as a JSON-ready mapping.

        Excludes ``trials`` (see the class docstring): identity is the
        scenario family, not how many samples were taken from it.

        ``topology`` and ``channel`` join the payload only at non-default
        levels: they *are* scenario identity (a bounded grid or a lossy
        channel is a different simulation), but omitting the defaults
        keeps every scenario key minted before the fields existed --
        and every seed stream and cached row derived from one -- valid
        verbatim.  The ``cache-key-soundness`` deep lint counts these
        conditional re-adds as keyed.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name
            not in (
                "trials",
                "scenario_kwargs",
                "collect_metrics",
                "engine",
                "topology",
                "channel",
            )
        }
        if self.topology != "torus":
            payload["topology"] = self.topology
        if self.channel != "ideal":
            payload["channel"] = self.channel
        payload["scenario_kwargs"] = {k: v for k, v in self.scenario_kwargs}
        return payload

    def scenario_key(self) -> str:
        """Canonical JSON identity string (stable across processes)."""
        return json.dumps(
            self.key_payload(), sort_keys=True, separators=(",", ":")
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (for pickling into worker payloads)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["scenario_kwargs"] = [list(kv) for kv in self.scenario_kwargs]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        payload = dict(data)
        payload["scenario_kwargs"] = tuple(
            (str(k), v) for k, v in payload.get("scenario_kwargs", ())
        )
        return cls(**payload)


def build_scenario(spec: ScenarioSpec, seed: int) -> "BroadcastScenario":
    """Construct the :class:`~repro.experiments.scenarios.BroadcastScenario`
    one trial of ``spec`` runs.

    Split out of :func:`run_trial` so certification
    (:mod:`repro.adversary.certify`) can replay the *exact* scenario a
    sweep row came from -- same builder, same derived seed -- and attach
    its own instrumentation.
    """
    # imported lazily so a spec can be constructed (e.g. for cache-key
    # inspection) without paying for the simulator stack
    from repro.experiments.scenarios import (
        byzantine_broadcast_scenario,
        crash_broadcast_scenario,
    )

    extra = dict(spec.scenario_kwargs)
    if spec.kind == "byzantine":
        return byzantine_broadcast_scenario(
            r=spec.r,
            t=spec.t,
            protocol=spec.protocol,
            strategy=spec.strategy or "fabricator",
            placement=spec.placement,
            metric=spec.metric,
            seed=seed,
            enforce_budget=spec.enforce_budget,
            max_rounds=spec.max_rounds,
            engine=spec.engine,
            topology_kind=spec.topology,
            channel=spec.channel,
            **extra,
        )
    return crash_broadcast_scenario(
        r=spec.r,
        t=spec.t,
        placement=spec.placement,
        metric=spec.metric,
        seed=seed,
        enforce_budget=spec.enforce_budget,
        max_rounds=spec.max_rounds,
        protocol=spec.protocol,
        engine=spec.engine,
        topology_kind=spec.topology,
        channel=spec.channel,
        **extra,
    )


def run_trial(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    """Build, run, and grade one trial of ``spec`` with ``seed``.

    Returns a flat dict of plain scalars -- the only shape that crosses
    the worker/cache boundary: ``achieved`` / ``safe`` / ``live``
    (booleans), ``undecided`` / ``rounds`` / ``messages`` / ``faults``
    (counts).  With ``spec.collect_metrics`` the row additionally carries
    ``"wrong_commits"`` (correct nodes that committed a wrong value) and
    ``"metrics"``: the JSON-exact :func:`repro.obs.metrics_summary` of a
    :class:`repro.obs.RunMetrics` observer attached to the run (identical
    for any worker count, and stable across the cache boundary).
    """
    sc = build_scenario(spec, seed)
    if spec.validate:
        sc.validate()
    metrics = None
    if spec.collect_metrics:
        from repro.obs import RunMetrics

        metrics = RunMetrics(source=sc.source)
    out = sc.run(observers=(metrics,) if metrics is not None else None)
    row = {
        "achieved": bool(out.achieved),
        "safe": bool(out.safe),
        "live": bool(out.live),
        "undecided": len(out.undecided),
        "rounds": out.rounds,
        "messages": out.messages,
        "faults": len(sc.faulty_nodes),
    }
    if metrics is not None:
        from repro.obs import metrics_summary

        row["wrong_commits"] = len(out.wrong_commits)
        row["metrics"] = metrics_summary(metrics)
    return row
