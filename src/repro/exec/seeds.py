"""Deterministic per-trial seed derivation.

Parallel and serial sweeps must produce *byte-identical* aggregates, so a
trial's seed cannot depend on execution order, worker assignment, or the
interpreter's hash randomization.  Every trial seed is therefore derived
from the triple ``(root_seed, scenario_key, trial_index)`` through SHA-256
-- a stable, process-independent hash -- rather than from Python's
``hash()`` (which varies with ``PYTHONHASHSEED``) or from incrementing a
shared generator (which varies with scheduling).

The scheme also keeps scenarios statistically independent: two scenario
points that happen to share a root seed draw from unrelated seed streams
because the ``scenario_key`` is mixed into the digest.
"""

from __future__ import annotations

import hashlib

#: Seeds are truncated to 63 bits: positive, and well inside the exact
#: integer range of every platform's ``random.Random`` state setup.
SEED_BITS = 63


def derive_seed(root_seed: int, scenario_key: str, trial_index: int) -> int:
    """The deterministic seed for one trial of one scenario.

    Computed as the first 8 bytes of
    ``SHA-256(f"{root_seed}|{scenario_key}|{trial_index}")`` truncated to
    :data:`SEED_BITS` bits.  Stable across processes, platforms, and
    ``PYTHONHASHSEED`` values; distinct inputs collide only with
    cryptographically negligible probability.
    """
    material = "{}|{}|{}".format(
        int(root_seed), scenario_key, int(trial_index)
    ).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - SEED_BITS)
