"""Declarative run tables: factors x levels x repetitions.

A :class:`RunTable` is the experiment-campaign analogue of a single
:class:`~repro.exec.specs.ScenarioSpec`: instead of one sweep point it
declares a *grid* of them -- a base spec, a list of factors each with its
levels, and a repetition count -- and expands deterministically into the
cartesian product of work units (the muBench ``RunnerConfig`` run-table
idiom: 6 topologies x 3 sizes x 10 repetitions = 180 runs, declared in
one config block).

The expansion inherits every guarantee of the execution layer for free,
because each expanded unit *is* a ``ScenarioSpec``:

- repetitions become ``trials`` on the spec, so per-trial seeds come from
  the same ``derive_seed(root_seed, scenario_key, index)`` streams as any
  other sweep;
- identical tables expand to identical specs, so a rerun against a warm
  :class:`~repro.exec.cache.ResultCache` is 100% cache hits (asserted by
  the ``runtable-smoke`` CI job);
- expansion order is the declaration order of factors and levels
  (rightmost factor fastest), never dict-hash order;
- two cells that would alias to the same scenario key are a
  configuration error, not a silent double-count.

JSON schema (see ``docs/TOPOLOGIES.md``)::

    {
      "name": "axes-smoke",
      "base": {"kind": "crash", "r": 1, "t": 1, "placement": "random"},
      "factors": {
        "metric":   ["linf", "l2"],
        "topology": ["torus", "bounded"]
      },
      "repetitions": 4
    }
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.executor import ExecStats, SweepExecutor
from repro.exec.specs import ScenarioSpec

#: schema tag stamped on serialized tables and reports
RUNTABLE_SCHEMA = "repro/runtable/v1"

#: ScenarioSpec fields a factor may range over.  ``trials`` is owned by
#: ``repetitions`` and ``scenario_kwargs`` is structured (base-only).
FACTOR_FIELDS: Tuple[str, ...] = tuple(
    f.name
    for f in dataclass_fields(ScenarioSpec)
    if f.name not in ("trials", "scenario_kwargs")
)

#: spec fields accepted in the ``base`` block (everything but ``trials``)
BASE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(ScenarioSpec) if f.name != "trials"
)


@dataclass(frozen=True)
class RunUnit:
    """One expanded cell: its id, its factor levels, and its spec."""

    run_id: str
    levels: Tuple[Tuple[str, Any], ...]
    spec: ScenarioSpec

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what ``--expand-only`` emits)."""
        return {
            "run_id": self.run_id,
            "levels": {k: v for k, v in self.levels},
            "scenario_key": self.spec.scenario_key(),
            "trials": self.spec.trials,
        }


@dataclass(frozen=True)
class RunTable:
    """A declarative experiment grid (frozen, JSON round-trippable).

    ``factors`` is an ordered tuple of ``(field_name, levels)`` pairs;
    ``base`` fixes the non-swept spec fields; every expanded spec runs
    ``repetitions`` trials.
    """

    factors: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    base: Tuple[Tuple[str, Any], ...] = ()
    repetitions: int = 1
    name: str = "runtable"

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        factors = tuple(
            (str(name), tuple(levels)) for name, levels in self.factors
        )
        object.__setattr__(self, "factors", factors)
        base = tuple((str(k), v) for k, v in self.base)
        object.__setattr__(self, "base", base)
        seen = set()
        for fname, levels in factors:
            if fname not in FACTOR_FIELDS:
                raise ConfigurationError(
                    f"unknown factor {fname!r}; factors range over "
                    f"{FACTOR_FIELDS}"
                )
            if fname in seen:
                raise ConfigurationError(f"duplicate factor {fname!r}")
            seen.add(fname)
            if not levels:
                raise ConfigurationError(
                    f"factor {fname!r} declares no levels"
                )
            if len(set(levels)) != len(levels):
                raise ConfigurationError(
                    f"factor {fname!r} repeats a level: {list(levels)}"
                )
        for bname, _ in base:
            if bname not in BASE_FIELDS and bname != "scenario_kwargs":
                raise ConfigurationError(
                    f"unknown base field {bname!r}; base fixes "
                    f"ScenarioSpec fields (not 'trials' -- use "
                    f"repetitions)"
                )
            if bname in seen:
                raise ConfigurationError(
                    f"{bname!r} is both a base field and a factor"
                )

    # -- (de)serialization --------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunTable":
        """Build a table from its JSON form (see the module docstring)."""
        known = {"schema", "name", "base", "factors", "repetitions"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown run-table keys {unknown}; expected {sorted(known)}"
            )
        schema = data.get("schema", RUNTABLE_SCHEMA)
        if schema != RUNTABLE_SCHEMA:
            raise ConfigurationError(
                f"unsupported run-table schema {schema!r}; this build "
                f"reads {RUNTABLE_SCHEMA!r}"
            )
        factors_in = data.get("factors", {})
        if not isinstance(factors_in, Mapping):
            raise ConfigurationError(
                "factors must be a mapping of field name -> level list"
            )
        base_in = data.get("base", {})
        if not isinstance(base_in, Mapping):
            raise ConfigurationError(
                "base must be a mapping of spec field -> value"
            )
        return cls(
            factors=tuple(
                (name, tuple(levels)) for name, levels in factors_in.items()
            ),
            base=tuple(base_in.items()),
            repetitions=int(data.get("repetitions", 1)),
            name=str(data.get("name", "runtable")),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON form; ``from_dict(as_dict())`` is the identity."""
        return {
            "schema": RUNTABLE_SCHEMA,
            "name": self.name,
            "base": {k: v for k, v in self.base},
            "factors": {name: list(levels) for name, levels in self.factors},
            "repetitions": self.repetitions,
        }

    # -- expansion ----------------------------------------------------------

    def num_runs(self) -> int:
        """Cells in the grid (product of level counts; 1 for no factors)."""
        n = 1
        for _, levels in self.factors:
            n *= len(levels)
        return n

    def expand(self) -> Tuple[RunUnit, ...]:
        """The full cartesian product, in declaration order.

        Deterministic (no hash-order anywhere: factors and levels expand
        exactly as declared, rightmost factor fastest) and duplicate-free
        (two cells normalizing to the same scenario key -- e.g. two
        ``strategy`` levels under ``kind="crash"``, where the builder
        ignores the strategy -- raise :class:`ConfigurationError` naming
        both cells instead of silently double-running one scenario).
        """
        base_kwargs: Dict[str, Any] = {}
        for k, v in self.base:
            if k == "scenario_kwargs" and isinstance(v, Mapping):
                base_kwargs[k] = tuple(v.items())
            else:
                base_kwargs[k] = v
        names = [name for name, _ in self.factors]
        level_lists = [levels for _, levels in self.factors]
        units: List[RunUnit] = []
        seen_keys: Dict[str, str] = {}
        for combo in itertools.product(*level_lists):
            levels = tuple(zip(names, combo))
            cell = ",".join(f"{k}={v}" for k, v in levels)
            run_id = f"{self.name}/{cell}" if cell else self.name
            kwargs = dict(base_kwargs)
            kwargs.update(levels)
            try:
                spec = ScenarioSpec(trials=self.repetitions, **kwargs)
            except (ConfigurationError, TypeError) as exc:
                raise ConfigurationError(
                    f"run-table cell {run_id!r} does not describe a "
                    f"valid scenario: {exc}"
                ) from exc
            key = spec.scenario_key()
            if key in seen_keys:
                raise ConfigurationError(
                    f"cells {seen_keys[key]!r} and {run_id!r} normalize "
                    "to the same scenario; drop one factor level (the "
                    "expansion must be duplicate-free)"
                )
            seen_keys[key] = run_id
            units.append(RunUnit(run_id=run_id, levels=levels, spec=spec))
        return tuple(units)


def load_runtable(path: str) -> RunTable:
    """Read a :class:`RunTable` from a JSON file."""
    try:
        with open(path, "r") as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{path}: a run table is a JSON object, got "
            f"{type(data).__name__}"
        )
    return RunTable.from_dict(data)


def _summarize(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate one cell's trial rows (same folds as the sweep layer)."""
    n = len(rows)
    return {
        "trials": n,
        "achieved_fraction": sum(1 for r in rows if r["achieved"]) / n,
        "safe_fraction": sum(1 for r in rows if r["safe"]) / n,
        "mean_undecided": sum(r["undecided"] for r in rows) / n,
        "mean_rounds": sum(r["rounds"] for r in rows) / n,
        "mean_messages": sum(r["messages"] for r in rows) / n,
    }


@dataclass
class RunTableResult:
    """An executed table: expanded units, per-unit trial rows, stats."""

    table: RunTable
    units: Tuple[RunUnit, ...]
    rows: List[List[Dict[str, Any]]]
    stats: ExecStats

    def report(self) -> Dict[str, Any]:
        """The JSON report (what ``repro runtable --json`` writes)."""
        return {
            "schema": RUNTABLE_SCHEMA,
            "table": self.table.as_dict(),
            "runs": [
                dict(unit.as_dict(), summary=_summarize(rows), rows=rows)
                for unit, rows in zip(self.units, self.rows)
            ],
            "stats": self.stats.as_dict(),
        }


def execute_runtable(
    table: RunTable,
    executor: Optional[SweepExecutor] = None,
    root_seed: int = 0,
) -> RunTableResult:
    """Expand ``table`` and run every cell through ``executor``.

    The result is a pure function of ``(table, root_seed)`` -- worker
    count, caching, and resumption change only the stats, exactly as for
    :meth:`SweepExecutor.run`.
    """
    units = table.expand()
    executor = executor or SweepExecutor()
    result = executor.run([u.spec for u in units], root_seed=root_seed)
    return RunTableResult(
        table=table, units=units, rows=result.rows, stats=result.stats
    )
