"""Content-addressed disk cache for completed sweep work units.

Each completed work unit (one chunk of trials at one scenario point) is
persisted as a small JSON file under a cache root (by default
``benchmarks/results/cache/``).  The file name is the SHA-256 of the work
unit's canonical description: scenario parameters, root seed, the exact
trial indices, and a code-version tag.  Consequences:

- **memoization**: re-running an identical sweep is pure cache reads;
- **checkpoint/resume**: an interrupted sweep leaves its finished units
  behind, and the rerun recomputes only the missing ones;
- **invalidation by construction**: change any scenario parameter, the
  root seed, or the package version and the key -- hence the file --
  changes, so stale results can never be returned;
- **corruption safety**: a truncated or hand-edited file fails JSON or
  schema validation and is treated as a miss (and removed), never
  trusted.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
cannot leave a half-written unit that a resumed run would read.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Mapping, Optional

from repro._version import __version__

#: Bump when the cached row schema or the seed-derivation scheme changes
#: incompatibly; old cache entries then miss instead of lying.
CACHE_SCHEMA_VERSION = 1

#: Default cache root, relative to the working directory (the repo root
#: in CI and the benches).  Override per call, or process-wide with the
#: ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "cache"


def default_cache_dir() -> pathlib.Path:
    """The process-wide default cache root.

    ``$REPRO_CACHE_DIR`` when set, else :data:`DEFAULT_CACHE_DIR`.
    """
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return pathlib.Path(env) if env else DEFAULT_CACHE_DIR


def code_version_tag() -> str:
    """The code-version component of every cache key.

    Ties cached results to the package version *and* the executor's
    schema version, so either kind of upgrade invalidates the cache.
    """
    return f"repro-{__version__}/exec-{CACHE_SCHEMA_VERSION}"


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical-JSON rendering of ``payload``.

    Canonical means sorted keys and fixed separators, so semantically
    equal payloads hash identically regardless of construction order.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed work-unit results.

    The cache never judges freshness by timestamps: the key *is* the
    contract.  ``get`` returns ``None`` on any miss, including unreadable
    or schema-violating files (which are deleted so they cannot shadow a
    later write).
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        """Where a unit with ``key`` lives on disk."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """The cached rows for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            blob = json.loads(raw)
            if blob.get("key") != key:
                raise ValueError("key mismatch")
            rows = blob["rows"]
            if not isinstance(rows, list) or not all(
                isinstance(r, dict) for r in rows
            ):
                raise ValueError("rows schema violation")
        except (ValueError, KeyError, TypeError):
            # corrupted entry: recover by recomputing, never by trusting
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        return rows

    def put(
        self,
        key: str,
        rows: List[Dict[str, Any]],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> pathlib.Path:
        """Atomically persist ``rows`` under ``key``; returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        blob = {
            "key": key,
            "code_version": code_version_tag(),
            "meta": dict(meta or {}),
            "rows": rows,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(blob, sort_keys=True, indent=0), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def contains(self, key: str) -> bool:
        """Whether a *valid* entry exists for ``key`` (corrupt = no)."""
        return self.get(key) is not None

    def __len__(self) -> int:
        """Number of entry files currently on disk."""
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:  # pragma: no cover - racing removal
            return 0
