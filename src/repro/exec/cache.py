"""Content-addressed, sharded disk cache for completed sweep work units.

Each completed work unit (one chunk of trials at one scenario point) is
persisted as a small JSON file under a cache root (by default
``benchmarks/results/cache/``).  The file name is the SHA-256 of the work
unit's canonical description: scenario parameters, root seed, the exact
trial indices, and a code-version tag.  Consequences:

- **memoization**: re-running an identical sweep is pure cache reads;
- **checkpoint/resume**: an interrupted sweep leaves its finished units
  behind, and the rerun recomputes only the missing ones;
- **invalidation by construction**: change any scenario parameter, the
  root seed, or the package version and the key -- hence the file --
  changes, so stale results can never be returned;
- **corruption safety**: a truncated or hand-edited file fails JSON or
  schema validation and is treated as a miss (and removed), never
  trusted.

Layout
------
Units live in ``shards/{key[:2]}/{key}.json`` under the cache root: 256
two-hex-digit shard directories, so a campaign of a million units never
puts a million entries in one directory (directory-scan cost is what
kills flat content stores at fleet scale, and per-shard subtrees can be
rsynced / mounted / garbage-collected independently).

The *flat* layout (``{key}.json`` directly under the root) that shipped
before the sharded store is still read: :meth:`ResultCache.get` falls
back to the flat path on a shard miss and -- when the flat entry is
valid -- atomically *promotes* the file into its shard via
``os.replace``.  A rename preserves bytes exactly, so a warm flat cache
migrates in place with 100% hits and byte-identical entries, one unit at
a time, with no migration step to schedule.

Writes are atomic and durable: the temp file is flushed and ``fsync``\\ ed
before ``os.replace`` moves it into place (so a crash mid-write can
leave at worst a torn *temp* file, never a torn entry), and the shard
directory is fsynced best-effort afterwards so the rename itself
survives a power cut.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro._version import __version__

#: Bump when the cached row schema or the seed-derivation scheme changes
#: incompatibly; old cache entries then miss instead of lying.
#: (The flat->sharded *layout* change deliberately did NOT bump this:
#: keys are unchanged and flat entries remain readable, so warm caches
#: survive the migration.)
CACHE_SCHEMA_VERSION = 1

#: Name of the shard-tree directory under the cache root.
SHARD_DIR = "shards"

#: Default cache root, relative to the working directory (the repo root
#: in CI and the benches).  Override per call, or process-wide with the
#: ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "cache"


def default_cache_dir() -> pathlib.Path:
    """The process-wide default cache root.

    ``$REPRO_CACHE_DIR`` when set, else :data:`DEFAULT_CACHE_DIR`.
    """
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return pathlib.Path(env) if env else DEFAULT_CACHE_DIR


def code_version_tag() -> str:
    """The code-version component of every cache key.

    Ties cached results to the package version *and* the executor's
    schema version, so either kind of upgrade invalidates the cache.
    The same tag is exchanged in the socket-backend handshake
    (:mod:`repro.exec.backends.socket`), so a worker running a
    different build refuses work instead of poisoning the store.
    """
    return f"repro-{__version__}/exec-{CACHE_SCHEMA_VERSION}"


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical-JSON rendering of ``payload``.

    Canonical means sorted keys and fixed separators, so semantically
    equal payloads hash identically regardless of construction order.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_dir(path: pathlib.Path) -> None:
    """Best-effort fsync of a directory (so renames inside it persist).

    Some filesystems (and all of Windows) refuse ``open`` on a
    directory; durability of the rename is then up to the OS, which is
    the pre-fsync status quo -- never an error.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class ResultCache:
    """A sharded directory of content-addressed work-unit results.

    The cache never judges freshness by timestamps: the key *is* the
    contract.  ``get`` returns ``None`` on any miss, including unreadable
    or schema-violating files (which are deleted so they cannot shadow a
    later write).

    Concurrent writers are safe by construction: an entry's bytes are a
    pure function of its key (canonical JSON, sorted keys), so two
    processes racing ``put`` on the same key both stage identical
    content and the surviving ``os.replace`` winner is byte-identical to
    a serial write (pinned by ``tests/test_exec_cache.py``).
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    # -- layout -------------------------------------------------------------

    def shard_for(self, key: str) -> pathlib.Path:
        """The shard directory a unit with ``key`` belongs to."""
        return self.root / SHARD_DIR / key[:2]

    def path_for(self, key: str) -> pathlib.Path:
        """Canonical (sharded) location of a unit with ``key``."""
        return self.shard_for(key) / f"{key}.json"

    def flat_path_for(self, key: str) -> pathlib.Path:
        """Legacy pre-shard location, still read (and promoted) by
        :meth:`get`."""
        return self.root / f"{key}.json"

    def entry_paths(self) -> Iterator[pathlib.Path]:
        """Every entry file currently on disk, sharded then flat,
        lexicographic within each layout (deterministic order)."""
        try:
            yield from sorted((self.root / SHARD_DIR).glob("??/*.json"))
            yield from sorted(self.root.glob("*.json"))
        except OSError:  # pragma: no cover - racing removal
            return

    # -- read ---------------------------------------------------------------

    def _load(
        self, path: pathlib.Path, key: str
    ) -> Optional[List[Dict[str, Any]]]:
        """Rows stored at ``path`` for ``key``, or ``None``; corrupt or
        torn files are deleted so they cannot shadow a later write."""
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            blob = json.loads(raw)
            if blob.get("key") != key:
                raise ValueError("key mismatch")
            rows = blob["rows"]
            if not isinstance(rows, list) or not all(
                isinstance(r, dict) for r in rows
            ):
                raise ValueError("rows schema violation")
        except (ValueError, KeyError, TypeError):
            # corrupted entry: recover by recomputing, never by trusting
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        return rows

    def get(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """The cached rows for ``key``, or ``None`` on miss/corruption.

        Checks the sharded location first, then the legacy flat layout;
        a valid flat entry is atomically promoted into its shard (a
        byte-preserving ``os.replace``) so the store converges to the
        sharded layout as it is read.
        """
        rows = self._load(self.path_for(key), key)
        if rows is not None:
            return rows
        flat = self.flat_path_for(key)
        rows = self._load(flat, key)
        if rows is None:
            return None
        # migration shim: promote the still-valid flat entry in place
        try:
            self.shard_for(key).mkdir(parents=True, exist_ok=True)
            os.replace(flat, self.path_for(key))
        except OSError:  # pragma: no cover - read-only cache roots
            pass
        return rows

    def contains(self, key: str) -> bool:
        """Whether a *valid* entry exists for ``key`` (corrupt = no)."""
        return self.get(key) is not None

    # -- write --------------------------------------------------------------

    def put(
        self,
        key: str,
        rows: List[Dict[str, Any]],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> pathlib.Path:
        """Durably and atomically persist ``rows`` under ``key``.

        The temp file is fsynced before the rename and the shard
        directory after it, so a crash at any point leaves either the
        old state or the complete new entry -- never a torn unit a
        resumed run could read (torn *temp* files are ignored by
        :meth:`get` and overwritten by the next ``put``).

        Returns the sharded entry path.
        """
        shard = self.shard_for(key)
        shard.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        blob = {
            "key": key,
            "code_version": code_version_tag(),
            "meta": dict(meta or {}),
            "rows": rows,
        }
        data = json.dumps(blob, sort_keys=True, indent=0)
        # per-process temp name: two processes racing the same key must
        # not stage through one file, or the loser's rename pulls the
        # winner's staged bytes out from under it (the final os.replace
        # still serializes them -- and both stage identical content)
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(shard)
        return path

    def __len__(self) -> int:
        """Number of entry files currently on disk (both layouts)."""
        return sum(1 for _ in self.entry_paths())
