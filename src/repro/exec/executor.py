"""The parallel, cached sweep executor.

:class:`SweepExecutor` turns a list of :class:`~repro.exec.specs.
ScenarioSpec` into per-trial result rows.  Since the backend tier landed
it is a thin, stable facade: planning and caching live in
:mod:`repro.exec.campaign`, and the actual computation runs on a
pluggable :class:`~repro.exec.backends.base.ExecutionBackend` --
in-process (``serial``), one-box ``multiprocessing`` (``pool``), or
remote workers over TCP (``socket``).  ``workers=1`` maps to serial,
``workers>1`` to pool, and ``backend=`` overrides either with a name or
a ready backend instance.

Determinism contract
--------------------
The executor's output is a pure function of ``(specs, root_seed)``:

- every trial's seed comes from :func:`~repro.exec.seeds.derive_seed`
  on ``(root_seed, spec.scenario_key(), trial_index)``, never from
  worker identity or execution order;
- work units are chunks of *trial indices*, chunked the same way
  regardless of worker count or backend;
- results are finalized in trial-index order by the campaign manager.

So serial, parallel, remote, cached, and resumed runs all produce
byte-identical row lists -- pinned by ``tests/test_exec_golden.py`` and
cross-backend by ``tests/test_exec_campaign.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, code_version_tag, content_key
from repro.exec.seeds import derive_seed
from repro.exec.specs import ScenarioSpec, run_trial

#: Trials per work unit.  Independent of the worker count on purpose:
#: cache keys embed the unit's trial indices, so chunking must not change
#: when ``--workers`` does or cached units would never be rediscovered.
DEFAULT_CHUNK_SIZE = 4


@dataclass
class ExecStats:
    """Execution accounting for one :meth:`SweepExecutor.run` call."""

    workers: int = 1
    units_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    trials_total: int = 0
    trials_computed: int = 0
    wall_clock_s: float = 0.0
    cache_enabled: bool = False

    @property
    def hit_fraction(self) -> float:
        """Cache hits as a fraction of all work units (0.0 when none)."""
        return self.cache_hits / self.units_total if self.units_total else 0.0

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Combine accounting from two runs into one (a new object).

        Counts add; ``wall_clock_s`` adds (total compute time, not
        elapsed time -- overlapping campaigns double-count on purpose);
        ``workers`` takes the max and ``cache_enabled`` the OR, since a
        merged report answers "what resources/caching did this study
        use anywhere".  Associative and commutative, so a campaign
        service can fold stats over any number of sweeps in any order.
        """
        return ExecStats(
            workers=max(self.workers, other.workers),
            units_total=self.units_total + other.units_total,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            trials_total=self.trials_total + other.trials_total,
            trials_computed=self.trials_computed + other.trials_computed,
            wall_clock_s=self.wall_clock_s + other.wall_clock_s,
            cache_enabled=self.cache_enabled or other.cache_enabled,
        )

    def __add__(self, other: "ExecStats") -> "ExecStats":
        """``stats_a + stats_b`` is :meth:`merge` (sum()-friendly with
        ``start=ExecStats()``)."""
        if not isinstance(other, ExecStats):
            return NotImplemented
        return self.merge(other)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form for JSON reports and stats tables."""
        return {
            "workers": self.workers,
            "units_total": self.units_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_fraction": round(self.hit_fraction, 4),
            "trials_total": self.trials_total,
            "trials_computed": self.trials_computed,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "cache_enabled": self.cache_enabled,
        }


@dataclass
class SweepRunResult:
    """Per-spec trial rows (trial-index order) plus execution stats."""

    rows: List[List[Dict[str, Any]]] = field(default_factory=list)
    stats: ExecStats = field(default_factory=ExecStats)


def unit_cache_key(
    spec: ScenarioSpec, root_seed: int, indices: Sequence[int]
) -> str:
    """The content hash identifying one work unit on disk.

    Covers the scenario parameters, the root seed, the exact trial
    indices, and the code-version tag -- any change to any of them is a
    different key, i.e. a cache miss.  ``collect_metrics`` is excluded
    from the scenario identity (it does not change the simulation) but
    changes the cached row *shape*, so it joins the key when set --
    conditionally, to keep every pre-existing metrics-free cache entry
    valid.  ``spec.engine`` never joins the key: the backends are
    observationally identical (tests/test_fastpath_differential.py), so
    cache rows are shared across engines -- a sweep computed on
    ``reference`` is a 100% cache hit when rerun with ``fastpath``.
    """
    payload = {
        "scenario": spec.key_payload(),
        "root_seed": int(root_seed),
        "indices": [int(i) for i in indices],
        "code_version": code_version_tag(),
    }
    if spec.collect_metrics:
        payload["collect_metrics"] = True
    return content_key(payload)


def _run_unit(
    payload: Tuple[Dict[str, Any], int, Tuple[int, ...]]
) -> List[Dict[str, Any]]:
    """Worker entry point: run one chunk of trials.

    Takes a plain-data payload (picklable under every start method and
    every backend wire) and returns the trial rows in index order.
    Module-level so ``multiprocessing`` and the socket protocol can
    ship it by reference.
    """
    spec_dict, root_seed, indices = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    key = spec.scenario_key()
    return [
        run_trial(spec, derive_seed(root_seed, key, index))
        for index in indices
    ]


class SweepExecutor:
    """Runs scenario sweeps: chunked, optionally parallel, optionally
    cached.

    Parameters
    ----------
    workers:
        Worker-process count.  ``1`` (the default) runs every trial in
        the calling process -- no pool, no pickling; ``>1`` fans out
        over a ``multiprocessing`` pool on this box.
    cache:
        A :class:`ResultCache` for memoization and checkpoint/resume, or
        ``None`` (the default) to always recompute.
    chunk_size:
        Trials per work unit; keep it identical between runs that should
        share cache entries (see :data:`DEFAULT_CHUNK_SIZE`).
    backend:
        Execution-backend override: a registry name (``"serial"`` /
        ``"pool"``) or a ready :class:`~repro.exec.backends.base.
        ExecutionBackend` instance (how a ``socket`` fleet is plugged
        in).  ``None`` derives serial/pool from ``workers``.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend: Optional[Union[str, "Any"]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.backend = backend

    def _resolve_backend(self) -> "Any":
        """Materialize the execution backend for one run."""
        # local import: repro.exec.campaign imports this module
        from repro.exec.backends import ExecutionBackend, make_backend

        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        if isinstance(self.backend, str):
            return make_backend(self.backend, workers=self.workers)
        return make_backend(
            "serial" if self.workers == 1 else "pool", workers=self.workers
        )

    # -- planning -----------------------------------------------------------

    def _plan(self, specs: Sequence[ScenarioSpec], root_seed: int):
        """Chunk every spec's trial range into work units (see
        :func:`repro.exec.campaign.plan_units`)."""
        from repro.exec.campaign import plan_units

        return plan_units(specs, root_seed, self.chunk_size)

    def checkpointed(
        self, specs: Sequence[ScenarioSpec], root_seed: int = 0
    ) -> Tuple[int, int]:
        """``(cached_units, total_units)`` for a would-be run.

        The resume probe: how much of the sweep an earlier (possibly
        interrupted) run already banked under the current cache root.
        """
        units = self._plan(specs, root_seed)
        if self.cache is None:
            return 0, len(units)
        done = sum(1 for u in units if self.cache.contains(u.key))
        return done, len(units)

    # -- execution ----------------------------------------------------------

    def run(
        self, specs: Sequence[ScenarioSpec], root_seed: int = 0
    ) -> SweepRunResult:
        """Execute every trial of every spec; see the module docstring
        for the determinism contract.

        Returns one row list per spec (in spec order, rows in
        trial-index order) plus :class:`ExecStats`.  Delegates to
        :class:`~repro.exec.campaign.CampaignRunner` on the resolved
        backend; a backend constructed here (rather than passed in) is
        closed afterwards.
        """
        # local import: repro.exec.campaign imports this module
        from repro.exec.backends import ExecutionBackend
        from repro.exec.campaign import CampaignRunner

        started = time.perf_counter()
        backend = self._resolve_backend()
        owns_backend = not isinstance(self.backend, ExecutionBackend)
        try:
            runner = CampaignRunner(
                backend, cache=self.cache, chunk_size=self.chunk_size
            )
            result = runner.run(specs, root_seed=root_seed)
        finally:
            if owns_backend:
                backend.close()
        result.stats.wall_clock_s = time.perf_counter() - started
        return result
