"""The parallel, cached sweep executor.

:class:`SweepExecutor` turns a list of :class:`~repro.exec.specs.
ScenarioSpec` into per-trial result rows, fanning work out over a
``multiprocessing`` pool (with a pure in-process serial path for
``workers=1``) and memoizing completed work units on disk through
:class:`~repro.exec.cache.ResultCache`.

Determinism contract
--------------------
The executor's output is a pure function of ``(specs, root_seed)``:

- every trial's seed comes from :func:`~repro.exec.seeds.derive_seed`
  on ``(root_seed, spec.scenario_key(), trial_index)``, never from
  worker identity or execution order;
- work units are chunks of *trial indices*, chunked the same way
  regardless of worker count;
- results are reassembled in trial-index order in the parent process.

So serial, parallel, cached, and resumed runs all produce byte-identical
row lists -- pinned by ``tests/test_exec_golden.py``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, code_version_tag, content_key
from repro.exec.seeds import derive_seed
from repro.exec.specs import ScenarioSpec, run_trial

#: Trials per work unit.  Independent of the worker count on purpose:
#: cache keys embed the unit's trial indices, so chunking must not change
#: when ``--workers`` does or cached units would never be rediscovered.
DEFAULT_CHUNK_SIZE = 4


@dataclass
class ExecStats:
    """Execution accounting for one :meth:`SweepExecutor.run` call."""

    workers: int = 1
    units_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    trials_total: int = 0
    trials_computed: int = 0
    wall_clock_s: float = 0.0
    cache_enabled: bool = False

    @property
    def hit_fraction(self) -> float:
        """Cache hits as a fraction of all work units (0.0 when none)."""
        return self.cache_hits / self.units_total if self.units_total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form for JSON reports and stats tables."""
        return {
            "workers": self.workers,
            "units_total": self.units_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_fraction": round(self.hit_fraction, 4),
            "trials_total": self.trials_total,
            "trials_computed": self.trials_computed,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "cache_enabled": self.cache_enabled,
        }


@dataclass
class SweepRunResult:
    """Per-spec trial rows (trial-index order) plus execution stats."""

    rows: List[List[Dict[str, Any]]] = field(default_factory=list)
    stats: ExecStats = field(default_factory=ExecStats)


def unit_cache_key(
    spec: ScenarioSpec, root_seed: int, indices: Sequence[int]
) -> str:
    """The content hash identifying one work unit on disk.

    Covers the scenario parameters, the root seed, the exact trial
    indices, and the code-version tag -- any change to any of them is a
    different key, i.e. a cache miss.  ``collect_metrics`` is excluded
    from the scenario identity (it does not change the simulation) but
    changes the cached row *shape*, so it joins the key when set --
    conditionally, to keep every pre-existing metrics-free cache entry
    valid.  ``spec.engine`` never joins the key: the backends are
    observationally identical (tests/test_fastpath_differential.py), so
    cache rows are shared across engines -- a sweep computed on
    ``reference`` is a 100% cache hit when rerun with ``fastpath``.
    """
    payload = {
        "scenario": spec.key_payload(),
        "root_seed": int(root_seed),
        "indices": [int(i) for i in indices],
        "code_version": code_version_tag(),
    }
    if spec.collect_metrics:
        payload["collect_metrics"] = True
    return content_key(payload)


def _run_unit(
    payload: Tuple[Dict[str, Any], int, Tuple[int, ...]]
) -> List[Dict[str, Any]]:
    """Worker entry point: run one chunk of trials.

    Takes a plain-data payload (picklable under every start method) and
    returns the trial rows in index order.  Module-level so
    ``multiprocessing`` can import it by reference.
    """
    spec_dict, root_seed, indices = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    key = spec.scenario_key()
    return [
        run_trial(spec, derive_seed(root_seed, key, index))
        for index in indices
    ]


def _pool_context() -> multiprocessing.context.BaseContext:
    """The start method for worker pools: ``fork`` where available
    (cheap, inherits ``sys.path``), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


@dataclass
class _Unit:
    """One schedulable work unit (internal)."""

    spec_index: int
    indices: Tuple[int, ...]
    key: str
    rows: Optional[List[Dict[str, Any]]] = None


class SweepExecutor:
    """Runs scenario sweeps: chunked, optionally parallel, optionally
    cached.

    Parameters
    ----------
    workers:
        Worker-process count.  ``1`` (the default) runs every trial in
        the calling process -- no pool, no pickling -- which is also the
        fallback wherever ``multiprocessing`` is unavailable.
    cache:
        A :class:`ResultCache` for memoization and checkpoint/resume, or
        ``None`` (the default) to always recompute.
    chunk_size:
        Trials per work unit; keep it identical between runs that should
        share cache entries (see :data:`DEFAULT_CHUNK_SIZE`).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size

    # -- planning -----------------------------------------------------------

    def _plan(
        self, specs: Sequence[ScenarioSpec], root_seed: int
    ) -> List[_Unit]:
        """Chunk every spec's trial range into work units."""
        units: List[_Unit] = []
        for spec_index, spec in enumerate(specs):
            for start in range(0, spec.trials, self.chunk_size):
                indices = tuple(
                    range(start, min(start + self.chunk_size, spec.trials))
                )
                units.append(
                    _Unit(
                        spec_index=spec_index,
                        indices=indices,
                        key=unit_cache_key(spec, root_seed, indices),
                    )
                )
        return units

    def checkpointed(
        self, specs: Sequence[ScenarioSpec], root_seed: int = 0
    ) -> Tuple[int, int]:
        """``(cached_units, total_units)`` for a would-be run.

        The resume probe: how much of the sweep an earlier (possibly
        interrupted) run already banked under the current cache root.
        """
        units = self._plan(specs, root_seed)
        if self.cache is None:
            return 0, len(units)
        done = sum(1 for u in units if self.cache.contains(u.key))
        return done, len(units)

    # -- execution ----------------------------------------------------------

    def run(
        self, specs: Sequence[ScenarioSpec], root_seed: int = 0
    ) -> SweepRunResult:
        """Execute every trial of every spec; see the module docstring
        for the determinism contract.

        Returns one row list per spec (in spec order, rows in
        trial-index order) plus :class:`ExecStats`.
        """
        started = time.perf_counter()
        stats = ExecStats(
            workers=self.workers,
            cache_enabled=self.cache is not None,
            trials_total=sum(s.trials for s in specs),
        )
        units = self._plan(specs, root_seed)
        stats.units_total = len(units)

        pending: List[_Unit] = []
        for unit in units:
            cached = self.cache.get(unit.key) if self.cache else None
            if cached is not None and len(cached) == len(unit.indices):
                unit.rows = cached
                stats.cache_hits += 1
            else:
                pending.append(unit)
        stats.cache_misses = len(pending)
        stats.trials_computed = sum(len(u.indices) for u in pending)

        payloads = [
            (specs[u.spec_index].as_dict(), int(root_seed), u.indices)
            for u in pending
        ]
        if self.workers == 1 or len(pending) <= 1:
            computed = [_run_unit(p) for p in payloads]
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(self.workers, len(pending))) as pool:
                computed = pool.map(_run_unit, payloads)
        for unit, rows in zip(pending, computed):
            unit.rows = rows
            if self.cache is not None:
                spec = specs[unit.spec_index]
                self.cache.put(
                    unit.key,
                    rows,
                    meta={
                        "scenario_key": spec.scenario_key(),
                        "root_seed": int(root_seed),
                        "indices": list(unit.indices),
                    },
                )

        per_spec: List[List[Dict[str, Any]]] = [[] for _ in specs]
        for unit in units:  # plan order == ascending trial index per spec
            assert unit.rows is not None
            per_spec[unit.spec_index].extend(unit.rows)
        stats.wall_clock_s = time.perf_counter() - started
        return SweepRunResult(rows=per_spec, stats=stats)
