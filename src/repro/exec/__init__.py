"""``repro.exec``: the parallel, cached sweep-execution layer.

The repo's hot path is randomized trial sweeps (threshold sharpness,
figure regeneration).  This package runs them at scale without giving up
the simulator's reproducibility contract:

- :mod:`repro.exec.seeds` -- per-trial seeds derived by stable hashing of
  ``(root_seed, scenario_key, trial_index)``, so serial and parallel runs
  agree byte-for-byte;
- :mod:`repro.exec.specs` -- picklable scenario specifications and the
  single-trial worker function;
- :mod:`repro.exec.cache` -- sharded, content-addressed on-disk
  memoization of completed work units (also the checkpoint/resume
  mechanism);
- :mod:`repro.exec.backends` -- pluggable execution backends behind one
  protocol: in-process ``serial``, one-box ``pool``, multi-host
  ``socket``;
- :mod:`repro.exec.campaign` -- the backend-agnostic campaign manager
  (cache-before-submit, checkpoint-on-complete, ordered finalization);
- :mod:`repro.exec.executor` -- the stable :class:`SweepExecutor` facade
  over all of the above, plus execution statistics.

See ``docs/EXECUTION.md`` for the design and the CLI (``repro sweep``),
and ``docs/SERVICE.md`` for the long-running campaign service built on
this layer (``repro serve``).
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerClient,
    WorkerServer,
    make_backend,
)
from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_version_tag,
    content_key,
    default_cache_dir,
)
from repro.exec.campaign import CampaignRunner, UnitState, plan_units
from repro.exec.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecStats,
    SweepExecutor,
    SweepRunResult,
    unit_cache_key,
)
from repro.exec.runtable import (
    FACTOR_FIELDS,
    RUNTABLE_SCHEMA,
    RunTable,
    RunTableResult,
    RunUnit,
    execute_runtable,
    load_runtable,
)
from repro.exec.seeds import SEED_BITS, derive_seed
from repro.exec.specs import KINDS, ScenarioSpec, build_scenario, run_trial

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "CACHE_SCHEMA_VERSION",
    "CampaignRunner",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHUNK_SIZE",
    "ExecStats",
    "ExecutionBackend",
    "FACTOR_FIELDS",
    "KINDS",
    "PoolBackend",
    "RUNTABLE_SCHEMA",
    "ResultCache",
    "RunTable",
    "RunTableResult",
    "RunUnit",
    "SEED_BITS",
    "ScenarioSpec",
    "SerialBackend",
    "SocketBackend",
    "SweepExecutor",
    "SweepRunResult",
    "UnitState",
    "WorkerClient",
    "WorkerServer",
    "build_scenario",
    "code_version_tag",
    "content_key",
    "default_cache_dir",
    "derive_seed",
    "execute_runtable",
    "load_runtable",
    "make_backend",
    "plan_units",
    "run_trial",
    "unit_cache_key",
]
