"""``repro.exec``: the parallel, cached sweep-execution layer.

The repo's hot path is randomized trial sweeps (threshold sharpness,
figure regeneration).  This package runs them at scale without giving up
the simulator's reproducibility contract:

- :mod:`repro.exec.seeds` -- per-trial seeds derived by stable hashing of
  ``(root_seed, scenario_key, trial_index)``, so serial and parallel runs
  agree byte-for-byte;
- :mod:`repro.exec.specs` -- picklable scenario specifications and the
  single-trial worker function;
- :mod:`repro.exec.cache` -- content-addressed on-disk memoization of
  completed work units (also the checkpoint/resume mechanism);
- :mod:`repro.exec.executor` -- the chunked ``multiprocessing`` executor
  with a serial fallback and execution statistics.

See ``docs/EXECUTION.md`` for the design and the CLI (``repro sweep``).
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_version_tag,
    content_key,
    default_cache_dir,
)
from repro.exec.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecStats,
    SweepExecutor,
    SweepRunResult,
    unit_cache_key,
)
from repro.exec.runtable import (
    FACTOR_FIELDS,
    RUNTABLE_SCHEMA,
    RunTable,
    RunTableResult,
    RunUnit,
    execute_runtable,
    load_runtable,
)
from repro.exec.seeds import SEED_BITS, derive_seed
from repro.exec.specs import KINDS, ScenarioSpec, build_scenario, run_trial

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHUNK_SIZE",
    "ExecStats",
    "FACTOR_FIELDS",
    "KINDS",
    "RUNTABLE_SCHEMA",
    "ResultCache",
    "RunTable",
    "RunTableResult",
    "RunUnit",
    "SEED_BITS",
    "ScenarioSpec",
    "SweepExecutor",
    "SweepRunResult",
    "build_scenario",
    "code_version_tag",
    "content_key",
    "default_cache_dir",
    "derive_seed",
    "execute_runtable",
    "load_runtable",
    "run_trial",
    "unit_cache_key",
]
