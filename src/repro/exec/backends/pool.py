"""The multiprocessing pool backend: today's one-box parallelism,
refactored behind the :class:`~repro.exec.backends.base.ExecutionBackend`
protocol.

Work units fan out over a ``multiprocessing`` pool (``fork`` start
method where available -- cheap, inherits ``sys.path``) and stream back
as they finish via ``imap_unordered``; completion order is
nondeterministic, which is fine because ordering is the campaign
manager's job.  A submission of zero or one pending units short-circuits
to in-process execution so small sweeps never pay pool startup.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.exec.backends.base import ExecutionBackend, UnitFunction, UnitPayload


def _pool_context() -> multiprocessing.context.BaseContext:
    """The start method for worker pools: ``fork`` where available
    (cheap, inherits ``sys.path``), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


def _call_indexed(
    task: Tuple[UnitFunction, int, UnitPayload]
) -> Tuple[int, List[Dict[str, Any]]]:
    """Pool entry point: run one unit, tagged with its payload index.

    Module-level so ``multiprocessing`` can import it by reference; the
    unit function itself crosses the fork as a by-reference pickle too.
    """
    fn, index, payload = task
    return index, fn(payload)


class PoolBackend(ExecutionBackend):
    """Chunk-parallel execution on one box via ``multiprocessing``."""

    name = "pool"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._queue_depth = 0

    def run_units(
        self, fn: UnitFunction, payloads: List[UnitPayload]
    ) -> Iterator[Tuple[int, List[Dict[str, Any]]]]:
        """Yield ``(index, rows)`` as the pool completes units.

        Completion order is whatever the pool produces; a rerun may
        yield a different order with identical rows (the campaign layer
        re-serializes).  Zero/one pending units run in-process.
        """
        self._queue_depth = len(payloads)
        try:
            if len(payloads) <= 1 or self.workers == 1:
                for index, payload in enumerate(payloads):
                    rows = fn(payload)
                    self._queue_depth -= 1
                    yield index, rows
                return
            tasks = [(fn, i, p) for i, p in enumerate(payloads)]
            ctx = _pool_context()
            with ctx.Pool(
                processes=min(self.workers, len(payloads))
            ) as pool:
                for index, rows in pool.imap_unordered(_call_indexed, tasks):
                    self._queue_depth -= 1
                    yield index, rows
        finally:
            self._queue_depth = 0

    def status(self) -> Dict[str, Any]:
        """Queue depth while draining; pool workers counted as live."""
        return {
            "backend": self.name,
            "queue_depth": self._queue_depth,
            "workers_total": self.workers,
            "workers_live": self.workers,
        }
