"""The in-process serial backend: no pool, no pickling, no sockets.

The reference implementation of the :class:`~repro.exec.backends.base.
ExecutionBackend` contract and the fallback wherever parallelism is
unavailable or pointless (a single pending unit).  Also the arbiter in
differential arguments: every other backend must reproduce exactly the
rows this one computes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.exec.backends.base import ExecutionBackend, UnitFunction, UnitPayload


class SerialBackend(ExecutionBackend):
    """Run every unit in the calling process, in submission order."""

    name = "serial"
    workers = 1

    def __init__(self) -> None:
        self._queue_depth = 0

    def run_units(
        self, fn: UnitFunction, payloads: List[UnitPayload]
    ) -> Iterator[Tuple[int, List[Dict[str, Any]]]]:
        """Yield ``(index, fn(payload))`` in order, one at a time."""
        self._queue_depth = len(payloads)
        try:
            for index, payload in enumerate(payloads):
                rows = fn(payload)
                self._queue_depth -= 1
                yield index, rows
        finally:
            self._queue_depth = 0

    def status(self) -> Dict[str, Any]:
        """Queue depth while draining; one worker, always live."""
        return {
            "backend": self.name,
            "queue_depth": self._queue_depth,
            "workers_total": 1,
            "workers_live": 1,
        }
