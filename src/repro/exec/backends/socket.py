"""The socket backend: long-lived workers on other hosts, stdlib only.

Two halves:

- :class:`WorkerServer` -- the remote half.  ``repro worker`` runs one
  per host/core: it listens on a TCP port, accepts one coordinator
  connection at a time, and executes the work units shipped to it.
- :class:`SocketBackend` (built on per-worker :class:`WorkerClient`
  connections) -- the coordinator half, an
  :class:`~repro.exec.backends.base.ExecutionBackend`: it hands units to
  whichever workers are alive and streams results back as they land.

Wire protocol (``docs/SERVICE.md`` has the full table): length-prefixed
pickled dicts -- a 4-byte big-endian frame length followed by the pickle
of ``{"op": ..., ...}``.  The unit function crosses the wire as a
by-reference pickle (module + qualname), so workers must run the same
installed ``repro`` -- which the handshake enforces:

1. **handshake** -- the coordinator opens with ``hello`` carrying
   ``repro.__version__`` *and* the scenario-key schema tag
   (:func:`repro.exec.cache.code_version_tag`); the worker replies
   ``hello-ok`` only on an exact match of both, else ``hello-reject``
   with the reason.  A version-skewed worker therefore refuses work
   instead of poisoning the shared result store with rows computed
   under a different schema.
2. **unit** -- ``unit`` is answered by an immediate ``ack`` (the
   per-unit heartbeat: it proves the worker is alive before it goes
   quiet to compute) and later by ``result`` or ``unit-error``.
3. **liveness** -- ``ping``/``pong`` when idle; :class:`WorkerClient`
   treats a missed ack (``heartbeat_s``), an overdue result
   (``unit_timeout_s``), or any connection error as worker death.
4. **requeue** -- a dead worker's in-flight unit goes back on the
   shared queue and another worker recomputes it.  Rows are a pure
   function of the unit payload, so a requeued campaign is
   byte-identical to an undisturbed one (pinned by
   ``tests/test_exec_backends.py``).

Security note: frames are *pickles* -- the protocol authenticates
versions, not peers, and must only span hosts you trust (a lab fleet
behind a firewall), exactly like the raw ``multiprocessing`` it
replaces.
"""

from __future__ import annotations

import collections
import pickle
import queue
import socket
import struct
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.exec.backends.base import (
    BackendError,
    ExecutionBackend,
    UnitFunction,
    UnitPayload,
)
from repro.exec.cache import code_version_tag

#: Frame-length prefix: 4-byte big-endian unsigned int.
_FRAME = struct.Struct(">I")

#: Upper bound on a single frame (sanity check, not a protocol limit):
#: work units and row lists are kilobytes; anything near this is a bug.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class WorkerLostError(Exception):
    """A worker connection died or timed out (internal: triggers requeue,
    never propagates out of the backend)."""


def _send_msg(sock: socket.socket, msg: Dict[str, Any]) -> None:
    """Pickle ``msg`` and write it as one length-prefixed frame."""
    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`WorkerLostError` on EOF."""
    chunks = []
    while n > 0:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise WorkerLostError("connection closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed frame and unpickle it."""
    (length,) = _FRAME.unpack(_recv_exact(sock, _FRAME.size))
    if length > MAX_FRAME_BYTES:
        raise WorkerLostError(f"oversized frame ({length} bytes)")
    return pickle.loads(_recv_exact(sock, length))


def parse_worker_addr(addr: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Normalize a ``host:port`` string (or ``(host, port)`` pair)."""
    if isinstance(addr, tuple):
        host, port = addr
        return str(host), int(port)
    host, sep, port = addr.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ConfigurationError(
            f"worker address {addr!r} is not host:port"
        )
    return host, int(port)


class WorkerServer:
    """A long-lived unit-execution worker (the ``repro worker`` process).

    Accepts one coordinator connection at a time and loops: handshake,
    then execute ``unit`` requests until the coordinator says ``bye`` or
    the connection drops, then accept the next coordinator.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    max_units:
        Test hook -- die abruptly (close everything mid-protocol, like a
        killed process) after completing this many units.  ``None``
        (production) never self-terminates.
    version, schema:
        Handshake identity overrides (test hook for skew rejection);
        default to this build's real tags.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_units: Optional[int] = None,
        version: Optional[str] = None,
        schema: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_units = max_units
        self.version = version if version is not None else __version__
        self.schema = schema if schema is not None else code_version_tag()
        self.units_done = 0
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ephemeral ports)."""
        if self._listener is None:
            raise RuntimeError("worker not started")
        return self._listener.getsockname()[:2]

    def _bind(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1)
        self._listener = listener

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns the bound address."""
        self._bind()
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-worker", daemon=True
        )
        self._thread.start()
        return self.address

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until the serving thread exits (via :meth:`stop` or the
        ``max_units`` death hook); ``True`` once it has."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self) -> None:
        """Stop accepting and unblock :meth:`serve_forever`; idempotent."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5)

    def serve_forever(self) -> None:
        """Accept coordinators until :meth:`stop` (or simulated death)."""
        self._bind()
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed by stop()
                return
            try:
                self._serve_connection(conn)
            except WorkerLostError:
                pass  # coordinator went away; accept the next one
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            if self._dead():
                return

    def _dead(self) -> bool:
        """Whether the ``max_units`` test hook has killed this worker."""
        if self.max_units is None or self.units_done < self.max_units:
            return False
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        return True

    def _serve_connection(self, conn: socket.socket) -> None:
        """Drive one coordinator session over ``conn``."""
        while not self._stopping.is_set():
            msg = _recv_msg(conn)
            op = msg.get("op")
            if op == "hello":
                if (
                    msg.get("version") != self.version
                    or msg.get("schema") != self.schema
                ):
                    _send_msg(
                        conn,
                        {
                            "op": "hello-reject",
                            "reason": (
                                "version/schema mismatch: worker is "
                                f"{self.version} / {self.schema}, "
                                f"coordinator sent {msg.get('version')} "
                                f"/ {msg.get('schema')}"
                            ),
                        },
                    )
                    return
                _send_msg(
                    conn,
                    {
                        "op": "hello-ok",
                        "version": self.version,
                        "schema": self.schema,
                    },
                )
            elif op == "unit":
                unit_id = msg["unit_id"]
                _send_msg(conn, {"op": "ack", "unit_id": unit_id})
                try:
                    rows = msg["fn"](msg["payload"])
                except Exception as exc:  # unit itself failed: report it
                    _send_msg(
                        conn,
                        {
                            "op": "unit-error",
                            "unit_id": unit_id,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                    continue
                self.units_done += 1
                if self._dead():
                    # simulated kill: vanish without sending the result
                    return
                _send_msg(
                    conn, {"op": "result", "unit_id": unit_id, "rows": rows}
                )
            elif op == "ping":
                _send_msg(conn, {"op": "pong"})
            elif op == "bye":
                return
            else:
                _send_msg(
                    conn,
                    {"op": "error", "reason": f"unknown op {op!r}"},
                )
                return


class WorkerClient:
    """Coordinator-side handle on one remote worker connection."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout_s: float = 5.0,
        heartbeat_s: float = 10.0,
        unit_timeout_s: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_s = heartbeat_s
        self.unit_timeout_s = unit_timeout_s
        self._sock: Optional[socket.socket] = None

    @property
    def addr(self) -> str:
        """``host:port`` label (metrics, error messages)."""
        return f"{self.host}:{self.port}"

    def connect(self) -> None:
        """Open the connection and complete the version handshake.

        Raises :class:`BackendError` on connection failure or handshake
        rejection (a rejected worker is *unusable*, not merely dead --
        it must not be retried with the same build).
        """
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise BackendError(
                f"worker {self.addr}: connect failed ({exc})"
            ) from exc
        self._sock = sock
        try:
            _send_msg(
                sock,
                {
                    "op": "hello",
                    "version": __version__,
                    "schema": code_version_tag(),
                },
            )
            reply = self._recv(timeout_s=self.heartbeat_s)
        except WorkerLostError as exc:
            self.close()
            raise BackendError(
                f"worker {self.addr}: handshake failed ({exc})"
            ) from exc
        if reply.get("op") != "hello-ok":
            reason = reply.get("reason", f"unexpected reply {reply!r}")
            self.close()
            raise BackendError(f"worker {self.addr}: rejected ({reason})")

    def _recv(self, timeout_s: float) -> Dict[str, Any]:
        """One frame within ``timeout_s`` seconds or worker-lost."""
        assert self._sock is not None
        self._sock.settimeout(timeout_s)
        try:
            return _recv_msg(self._sock)
        except socket.timeout as exc:
            raise WorkerLostError(
                f"no reply within {timeout_s:g}s"
            ) from exc
        except OSError as exc:
            raise WorkerLostError(str(exc)) from exc

    def run_unit(
        self, fn: UnitFunction, unit_id: int, payload: UnitPayload
    ) -> List[Dict[str, Any]]:
        """Ship one unit; return its rows.

        Liveness: the worker must ``ack`` within ``heartbeat_s`` and
        deliver the result within ``unit_timeout_s``, else
        :class:`WorkerLostError` (the caller requeues the unit).  A
        ``unit-error`` reply -- the unit function itself raised, which
        would happen identically on any worker -- raises
        :class:`BackendError` instead (no requeue).
        """
        if self._sock is None:
            raise WorkerLostError("not connected")
        try:
            _send_msg(
                self._sock,
                {"op": "unit", "unit_id": unit_id, "fn": fn,
                 "payload": payload},
            )
        except OSError as exc:
            raise WorkerLostError(str(exc)) from exc
        ack = self._recv(timeout_s=self.heartbeat_s)
        if ack.get("op") != "ack" or ack.get("unit_id") != unit_id:
            raise WorkerLostError(f"expected ack, got {ack.get('op')!r}")
        reply = self._recv(timeout_s=self.unit_timeout_s)
        op = reply.get("op")
        if op == "result" and reply.get("unit_id") == unit_id:
            return reply["rows"]
        if op == "unit-error":
            raise BackendError(
                f"worker {self.addr}: unit {unit_id} failed: "
                f"{reply.get('error')}"
            )
        raise WorkerLostError(f"expected result, got {op!r}")

    def ping(self) -> bool:
        """Idle liveness probe: ``True`` iff the worker ponged in time."""
        if self._sock is None:
            return False
        try:
            _send_msg(self._sock, {"op": "ping"})
            return self._recv(self.heartbeat_s).get("op") == "pong"
        except (WorkerLostError, OSError):
            return False

    def close(self) -> None:
        """Say ``bye`` (best effort) and drop the connection."""
        if self._sock is None:
            return
        try:
            _send_msg(self._sock, {"op": "bye"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        self._sock = None


class SocketBackend(ExecutionBackend):
    """Fan work units out to socket-connected workers on other hosts.

    ``worker_addrs`` lists the fleet (``host:port`` strings or
    ``(host, port)`` pairs).  Units are pulled from a shared queue by one
    coordinator thread per live worker; a worker that dies mid-unit has
    that unit pushed back to the *front* of the queue (first-requeued,
    first-recomputed keeps completion roughly in plan order) and its
    thread retires.  The campaign fails only when every worker is gone
    with units still outstanding.
    """

    name = "socket"

    def __init__(
        self,
        worker_addrs: Sequence[Union[str, Tuple[str, int]]],
        connect_timeout_s: float = 5.0,
        heartbeat_s: float = 10.0,
        unit_timeout_s: float = 600.0,
    ) -> None:
        if not worker_addrs:
            raise ConfigurationError(
                "socket backend needs at least one worker address "
                "(host:port)"
            )
        self.addrs = [parse_worker_addr(a) for a in worker_addrs]
        self.workers = len(self.addrs)
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_s = heartbeat_s
        self.unit_timeout_s = unit_timeout_s
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._live = 0

    # -- coordinator threads ------------------------------------------------

    def _drain_worker(
        self,
        client: WorkerClient,
        fn: UnitFunction,
        payloads: List[UnitPayload],
        work: "collections.deque[int]",
        completions: "queue.Queue[Tuple[str, int, Any]]",
        done: threading.Event,
    ) -> None:
        """Pull units for one worker until the campaign ends or it dies."""
        try:
            while not done.is_set():
                with self._lock:
                    index = work.popleft() if work else None
                if index is None:
                    # another worker may still die and requeue its unit;
                    # stay available until the campaign says done
                    time.sleep(0.02)
                    continue
                try:
                    rows = client.run_unit(fn, index, payloads[index])
                except WorkerLostError as exc:
                    with self._lock:
                        work.appendleft(index)
                        self._live -= 1
                    completions.put(("lost", index, f"{client.addr}: {exc}"))
                    return
                except BackendError as exc:
                    completions.put(("fatal", index, str(exc)))
                    return
                completions.put(("rows", index, rows))
        finally:
            client.close()

    def run_units(
        self, fn: UnitFunction, payloads: List[UnitPayload]
    ) -> Iterator[Tuple[int, List[Dict[str, Any]]]]:
        """Yield ``(index, rows)`` as the fleet completes units.

        Connects and handshakes every configured worker first; raises
        :class:`BackendError` if none is usable, if a unit function
        fails on a worker, or if the last live worker dies with units
        outstanding.
        """
        clients: List[WorkerClient] = []
        handshake_errors: List[str] = []
        for host, port in self.addrs:
            client = WorkerClient(
                host,
                port,
                connect_timeout_s=self.connect_timeout_s,
                heartbeat_s=self.heartbeat_s,
                unit_timeout_s=self.unit_timeout_s,
            )
            try:
                client.connect()
            except BackendError as exc:
                handshake_errors.append(str(exc))
                continue
            clients.append(client)
        if not clients:
            raise BackendError(
                "socket backend has no usable workers: "
                + "; ".join(handshake_errors)
            )

        work: "collections.deque[int]" = collections.deque(
            range(len(payloads))
        )
        completions: "queue.Queue[Tuple[str, int, Any]]" = queue.Queue()
        done = threading.Event()
        with self._lock:
            self._queue_depth = len(payloads)
            self._live = len(clients)
        threads = [
            threading.Thread(
                target=self._drain_worker,
                args=(client, fn, payloads, work, completions, done),
                name=f"repro-socket-{client.addr}",
                daemon=True,
            )
            for client in clients
        ]
        for t in threads:
            t.start()

        completed = 0
        seen = set()
        lost: List[str] = []
        try:
            while completed < len(payloads):
                try:
                    kind, index, value = completions.get(timeout=0.1)
                except queue.Empty:
                    if not any(t.is_alive() for t in threads):
                        raise BackendError(
                            "socket backend lost every worker with "
                            f"{len(payloads) - completed} unit(s) "
                            "outstanding: " + "; ".join(lost)
                        )
                    continue
                if kind == "fatal":
                    raise BackendError(value)
                if kind == "lost":
                    lost.append(value)
                    continue
                if index in seen:  # pragma: no cover - defensive dedupe
                    continue
                seen.add(index)
                completed += 1
                with self._lock:
                    self._queue_depth -= 1
                yield index, value
        finally:
            done.set()
            for t in threads:
                t.join(timeout=5)
            with self._lock:
                self._queue_depth = 0
                self._live = 0

    def status(self) -> Dict[str, Any]:
        """Queue depth and live/total worker counts (thread-safe)."""
        with self._lock:
            return {
                "backend": self.name,
                "queue_depth": self._queue_depth,
                "workers_total": self.workers,
                "workers_live": self._live,
            }
