"""Pluggable execution backends for the sweep tier.

Three implementations of one tiny protocol
(:class:`~repro.exec.backends.base.ExecutionBackend`):

========  ==================================================  ===========
name      runs units                                          scale
========  ==================================================  ===========
serial    in the calling process, in order                    1 core
pool      across a ``multiprocessing`` pool (fork)            1 box
socket    on long-lived workers reached over TCP              many boxes
========  ==================================================  ===========

Pick one by name through :func:`make_backend` (what the ``--backend``
CLI flag resolves through), or construct the class directly.  All three
compute byte-identical rows for the same plan -- the campaign manager
(:mod:`repro.exec.campaign`) owns ordering and caching, so switching
backends mid-study is invisible in the output.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.backends.base import (
    BackendError,
    ExecutionBackend,
    UnitFunction,
    UnitPayload,
)
from repro.exec.backends.pool import PoolBackend
from repro.exec.backends.serial import SerialBackend
from repro.exec.backends.socket import (
    SocketBackend,
    WorkerClient,
    WorkerServer,
)

#: Registry of backend names accepted by ``--backend``.
BACKEND_NAMES = ("serial", "pool", "socket")


def make_backend(
    name: str,
    workers: int = 1,
    worker_addrs: Optional[Sequence[Any]] = None,
) -> ExecutionBackend:
    """Build an execution backend by registry name.

    ``workers`` sizes the pool backend (ignored by serial);
    ``worker_addrs`` (``host:port`` strings) is required by -- and only
    meaningful for -- the socket backend.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` listing the registry.
    """
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return PoolBackend(workers=max(1, workers))
    if name == "socket":
        if not worker_addrs:
            raise ConfigurationError(
                "socket backend requires worker addresses "
                "(--worker host:port, repeatable)"
            )
        return SocketBackend(worker_addrs)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of "
        + ", ".join(BACKEND_NAMES)
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "ExecutionBackend",
    "PoolBackend",
    "SerialBackend",
    "SocketBackend",
    "UnitFunction",
    "UnitPayload",
    "WorkerClient",
    "WorkerServer",
    "make_backend",
]
