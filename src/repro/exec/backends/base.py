"""The :class:`ExecutionBackend` protocol -- the seam the sweep tier
scales through.

A backend executes *work units*: ``(spec_dict, root_seed, indices)``
payloads handed to a module-level worker function (today always
:func:`repro.exec.executor._run_unit`).  The contract is deliberately
tiny so backends can range from "call the function in a loop" to "ship
pickles to long-lived workers on other hosts":

- :meth:`ExecutionBackend.run_units` receives the worker function and
  the payload list and *yields* ``(payload_index, rows)`` pairs as units
  complete, in **any order** -- ordering for byte-reproducible output is
  the campaign manager's job (:mod:`repro.exec.campaign`), not the
  backend's;
- the worker function must be a picklable module-level callable with no
  shared-state dependencies -- enforced statically by the ``fork-safety``
  lint pass, which treats every ``run_units`` call site as a submission
  boundary (:mod:`repro.lint.analysis.forksafety`);
- a backend raises :class:`BackendError` when it can no longer make
  progress (every worker lost, handshake rejected); transient worker
  death is the backend's problem to hide (requeue), not the caller's.

Determinism contract: because every unit's rows are a pure function of
its payload (seeds are derived, never drawn), *which* backend runs a
unit -- and on which host, after how many requeues -- cannot change the
rows.  The campaign layer therefore shares one content-addressed cache
across all backends, and identical sweeps rerun at 100% hits on any of
them (pinned by ``tests/test_exec_campaign.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.errors import ReproError

#: One work unit as shipped across a process/host boundary:
#: ``(spec.as_dict(), root_seed, trial_indices)`` -- plain data,
#: picklable under every start method and every wire.
UnitPayload = Tuple[Dict[str, Any], int, Tuple[int, ...]]

#: The worker-function shape every backend executes.
UnitFunction = Callable[[UnitPayload], List[Dict[str, Any]]]


class BackendError(ReproError):
    """An execution backend can no longer make progress.

    Raised when a backend is down to zero usable workers (all
    handshakes rejected, every connection dead) with units still
    outstanding, or when a worker reports that the unit function itself
    raised.  Unit results already completed remain valid (and cached);
    the campaign fails only for what could not be computed.
    """


class ExecutionBackend:
    """Base class for execution backends (see the module docstring).

    Subclasses implement :meth:`run_units`; ``name`` is the registry
    key (``serial`` / ``pool`` / ``socket``) and ``workers`` the
    parallelism the backend reports into :class:`~repro.exec.executor.
    ExecStats`.
    """

    #: registry name, also the ``--backend`` CLI level
    name: str = "base"
    #: parallelism reported into execution stats
    workers: int = 1

    def run_units(
        self, fn: UnitFunction, payloads: List[UnitPayload]
    ) -> Iterator[Tuple[int, List[Dict[str, Any]]]]:
        """Execute ``fn`` over every payload; yield ``(index, rows)``
        pairs as units complete (any order, exactly one per payload).

        Implementations must either yield every index exactly once or
        raise :class:`BackendError`.
        """
        raise NotImplementedError

    def status(self) -> Dict[str, Any]:
        """Live-state snapshot for observability (Prometheus export).

        Keys: ``backend`` (name), ``queue_depth`` (units accepted but
        not yet completed), ``workers_total`` / ``workers_live``.
        Thread-safe to call while :meth:`run_units` is draining.
        """
        return {
            "backend": self.name,
            "queue_depth": 0,
            "workers_total": self.workers,
            "workers_live": self.workers,
        }

    def close(self) -> None:
        """Release backend resources (sockets, pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc: Any) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()
