"""The paper's ``nbd`` / ``pnbd`` notation, made executable.

Section IV of the paper defines, for a node ``(x, y)``:

- ``nbd(x, y)``: all nodes within distance ``r`` of ``(x, y)``;
- ``pnbd(x, y) = nbd(x-1, y) U nbd(x+1, y) U nbd(x, y-1) U nbd(x, y+1)``,
  the *perturbed neighborhood* obtained by moving the center one grid step
  in each axial direction.

The induction at the heart of every proof steps from "all honest nodes in
``nbd(a,b)`` have committed" to "all honest nodes in ``pnbd(a,b)`` commit",
and ``pnbd(a,b) - nbd(a,b)`` (here :func:`pnbd_frontier`) is the ring of
newly-covered nodes.

This module also hosts :func:`nbd_centers_covering`, the geometric core of
the protocol's commit rule ("... lying in some single neighborhood"): given
a finite point set, enumerate every grid center whose neighborhood contains
all of them.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.geometry.coords import Coord, UNIT_STEPS
from repro.geometry.metrics import get_metric


def nbd(center: Coord, r: int, metric="linf", include_center: bool = False) -> List[Coord]:
    """All lattice points within distance ``r`` of ``center``.

    Matches the paper's ``nbd(x, y)``.  The center itself is excluded by
    default (the paper counts *neighbors*); pass ``include_center=True``
    when a region argument needs the closed ball.
    """
    m = get_metric(metric)
    cx, cy = center
    pts = [(cx + dx, cy + dy) for dx, dy in m.offsets(r)]
    if include_center:
        pts.append((cx, cy))
    return pts


def pnbd(center: Coord, r: int, metric="linf") -> List[Coord]:
    """The perturbed neighborhood ``pnbd(x, y)`` of Section IV.

    The union of the neighborhoods of the four axial grid neighbors of
    ``center``.  Note the union always contains ``center`` itself (it is a
    neighbor of each perturbed center) and all of ``nbd(center)``.
    """
    cx, cy = center
    out: Set[Coord] = set()
    for sx, sy in UNIT_STEPS:
        out.update(nbd((cx + sx, cy + sy), r, metric))
    return sorted(out)


def pnbd_frontier(center: Coord, r: int, metric="linf") -> List[Coord]:
    """``pnbd(center) - nbd(center) - {center}``: the ring of nodes the
    inductive step newly covers.

    Under L-infinity this is the one-node-thick square ring at distance
    ``r + 1``... minus the four corners at L-infinity distance ``r+1``
    whose *both* coordinates differ by ``r+1`` (those are not within ``r``
    of any perturbed center).  The function computes it from the
    definition, so it is correct for every metric.
    """
    inner = set(nbd(center, r, metric, include_center=True))
    return sorted(p for p in pnbd(center, r, metric) if p not in inner)


def nbd_centers_covering(
    points: Sequence[Coord], r: int, metric="linf"
) -> List[Coord]:
    """All grid centers ``c`` with every point of ``points`` in ``nbd(c)``.

    This implements the protocol's "lie within some single neighborhood"
    test.  A point at distance exactly 0 from ``c`` (i.e. ``c`` itself) is
    counted as covered: a neighborhood in the commit rule is a region of
    the plane, and the node at its center certainly lies in it.

    Returns the empty list when no single neighborhood covers the set.

    The search space is bounded: any covering center lies within distance
    ``r`` of each point, so we enumerate the metric ball around one point
    and filter.
    """
    if not points:
        raise ValueError("points must be non-empty")
    m = get_metric(metric)
    base = points[0]
    candidates = nbd(base, r, m, include_center=True)
    out: List[Coord] = []
    for c in candidates:
        if all(m.within(c, p, r) for p in points):
            out.append(c)
    return sorted(out)


def covered_by_single_nbd(points: Sequence[Coord], r: int, metric="linf") -> bool:
    """Whether some single neighborhood contains every point of ``points``."""
    return bool(nbd_centers_covering(points, r, metric))
