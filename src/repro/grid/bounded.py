"""A finite grid with real boundaries (no wrap).

The paper works on the infinite grid or the torus precisely because
"boundary anomalies are eliminated".  This topology keeps the anomalies:
a corner node has roughly a quarter of an interior node's neighborhood,
so the same per-neighborhood fault budget ``t`` is relatively much larger
near the boundary and the inductive constructions lose their slack.

The EXP-BOUNDARY experiment quantifies this: budgets that are safe on the
torus can strand boundary nodes on the bounded grid, and the minimum cut
between the source and a corner is thinner than ``r(2r+1)``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.topology import Topology


class BoundedGrid(Topology):
    """A ``width x height`` grid patch: nodes at ``0 <= x < width``,
    ``0 <= y < height``, with **no** wrap-around."""

    def __init__(self, width: int, height: int, r: int, metric="linf") -> None:
        super().__init__(r, metric)
        if width < 1 or height < 1:
            raise ConfigurationError(
                f"grid must be at least 1x1, got {width}x{height}"
            )
        self._width = int(width)
        self._height = int(height)

    @classmethod
    def square(cls, side: int, r: int, metric="linf") -> "BoundedGrid":
        """A square patch of the given side."""
        return cls(side, side, r, metric)

    @property
    def width(self) -> int:
        """Number of distinct x coordinates."""
        return self._width

    @property
    def height(self) -> int:
        """Number of distinct y coordinates."""
        return self._height

    @property
    def is_finite(self) -> bool:
        return True

    def __len__(self) -> int:
        return self._width * self._height

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return self._width * self._height

    def canonical(self, p: Coord) -> Coord:
        # no wrapping: canonical form is the coordinate itself
        return (int(p[0]), int(p[1]))

    def contains(self, p: Coord) -> bool:
        x, y = p
        return 0 <= x < self._width and 0 <= y < self._height

    def nodes(self) -> Iterator[Coord]:
        """All grid nodes, row-major."""
        for y in range(self._height):
            for x in range(self._width):
                yield (x, y)

    def neighbors(self, p: Coord) -> Tuple[Coord, ...]:
        if not self.contains(p):
            raise ConfigurationError(f"{p} is outside the {self!r}")
        x, y = p
        return tuple(
            (x + dx, y + dy)
            for dx, dy in self.metric.offsets(self.r)
            if 0 <= x + dx < self._width and 0 <= y + dy < self._height
        )

    def is_boundary(self, p: Coord, margin: int = None) -> bool:
        """Whether ``p`` lies within ``margin`` (default ``r``) of an
        edge -- i.e. its neighborhood is truncated."""
        m = self.r if margin is None else margin
        x, y = p
        return (
            x < m
            or y < m
            or x >= self._width - m
            or y >= self._height - m
        )

    def distance(self, a: Coord, b: Coord) -> float:
        """Plain metric distance (no wrap)."""
        return self.metric.distance(a, b)

    def __repr__(self) -> str:
        return (
            f"BoundedGrid({self._width}x{self._height}, r={self.r}, "
            f"metric={self.metric.name!r})"
        )
