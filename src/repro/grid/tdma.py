"""Collision-free TDMA schedules for grid radio networks.

The paper assumes (Section II) "a pre-determined TDMA schedule that all
nodes follow", noting such schedules "are easily determined for the grid
network under consideration (so long as time-optimality is not a concern)".
This module constructs them.

Two transmissions collide at a receiver that hears both, which can only
happen when the two senders are within distance ``2r`` of each other.  A
schedule is therefore *collision-free* when any two nodes sharing a slot
are at distance at least ``2r + 1``.

Constructions
-------------

- :func:`grid_coloring_schedule`: color node ``(x, y)`` with
  ``(x mod k, y mod k)`` where ``k = 2r + 1``.  Two same-colored nodes
  differ by a nonzero multiple of ``k`` in some axis, hence are at
  L-infinity distance >= ``2r + 1`` -- and L1/L2 distance is never smaller
  than L-infinity distance, so the schedule is valid under every metric in
  this library.  ``(2r+1)^2`` slots per frame.  On a torus both sides must
  be divisible by ``k`` for the congruence argument to survive the wrap.
- :func:`sequential_schedule`: one slot per node.  Trivially valid on any
  finite topology; used when the coloring divisibility condition fails.

:func:`make_schedule` picks the best applicable construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.topology import Topology
from repro.grid.torus import Torus


@dataclass(frozen=True)
class TDMASchedule:
    """An assignment of every node to a slot within a repeating frame.

    ``slots[i]`` is the tuple of nodes that transmit in slot ``i``; a frame
    is one pass over all slots.  The simulation engine runs one frame per
    round, firing slots in order, which fixes a deterministic global
    transmission order while preserving the paper's collision-freedom.
    """

    slots: Tuple[Tuple[Coord, ...], ...]
    name: str = "custom"
    _slot_of: Dict[Coord, int] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        mapping: Dict[Coord, int] = {}
        for i, group in enumerate(self.slots):
            for node in group:
                if node in mapping:
                    raise ConfigurationError(
                        f"node {node} appears in slots {mapping[node]} and {i}"
                    )
                mapping[node] = i
        object.__setattr__(self, "_slot_of", mapping)

    @property
    def frame_length(self) -> int:
        """Number of slots in one frame."""
        return len(self.slots)

    def slot_of(self, node: Coord) -> int:
        """The slot index assigned to ``node``."""
        try:
            return self._slot_of[node]
        except KeyError:
            raise KeyError(f"node {node} has no slot in this schedule") from None

    def __contains__(self, node: Coord) -> bool:
        return node in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)


def grid_coloring_schedule(topology: Torus) -> TDMASchedule:
    """The ``(x mod 2r+1, y mod 2r+1)`` coloring schedule on a torus.

    :raises ConfigurationError: if either torus side is not divisible by
        ``2r + 1`` (the wrap would break the spacing guarantee).
    """
    k = 2 * topology.r + 1
    if topology.width % k or topology.height % k:
        raise ConfigurationError(
            f"grid coloring needs both torus sides divisible by 2r+1={k}; "
            f"got {topology.width}x{topology.height}"
        )
    groups: Dict[Tuple[int, int], List[Coord]] = {
        (cx, cy): [] for cx in range(k) for cy in range(k)
    }
    for node in topology.nodes():
        groups[(node[0] % k, node[1] % k)].append(node)
    ordered = [
        tuple(sorted(groups[(cx, cy)]))
        for cx in range(k)
        for cy in range(k)
    ]
    return TDMASchedule(tuple(ordered), name=f"coloring(k={k})")


def sequential_schedule(topology: Topology) -> TDMASchedule:
    """One slot per node, in row-major order.  Always collision-free."""
    if not topology.is_finite:
        raise ConfigurationError("sequential schedule requires a finite topology")
    return TDMASchedule(
        tuple((node,) for node in sorted(topology.nodes())), name="sequential"
    )


def make_schedule(topology: Topology) -> TDMASchedule:
    """Best applicable schedule: grid coloring when valid, else sequential."""
    if isinstance(topology, Torus):
        k = 2 * topology.r + 1
        if topology.width % k == 0 and topology.height % k == 0:
            return grid_coloring_schedule(topology)
    return sequential_schedule(topology)


def validate_schedule(schedule: TDMASchedule, topology: Topology) -> None:
    """Check collision-freedom of a schedule on a finite topology.

    Two nodes sharing a slot must have no common potential receiver, i.e.
    no third node within distance ``r`` of both.  Equivalently (and this is
    what we check, since it is the standard interference condition), nodes
    sharing a slot must not be within distance ``2r`` of each other.

    :raises ConfigurationError: if the schedule misses a node or two
        co-slotted nodes interfere.
    """
    if not topology.is_finite:
        raise ConfigurationError("can only validate schedules on finite topologies")
    nodes = list(topology.nodes())
    for node in nodes:
        if node not in schedule:
            raise ConfigurationError(f"schedule assigns no slot to node {node}")
    two_r = 2 * topology.r
    for group in schedule.slots:
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                if isinstance(topology, Torus):
                    d = topology.distance(a, b)
                else:
                    d = topology.metric.distance(a, b)
                if d <= two_r:
                    raise ConfigurationError(
                        f"nodes {a} and {b} share a slot but are at distance "
                        f"{d} <= 2r = {two_r}; their transmissions could "
                        "collide at a common receiver"
                    )
