"""Grid network substrate: topologies, neighborhoods, and TDMA schedules.

The paper's network is the infinite unit grid (or a finite torus, which
eliminates boundary anomalies).  This package provides:

- :mod:`repro.grid.topology` -- the :class:`~repro.grid.topology.Topology`
  interface and the analytically-handled infinite grid;
- :mod:`repro.grid.torus` -- the finite torus used for simulation;
- :mod:`repro.grid.neighborhoods` -- ``nbd`` / ``pnbd`` helpers matching
  the paper's Section IV notation;
- :mod:`repro.grid.tdma` -- collision-free TDMA schedules (Section II
  assumes one exists; we construct it);
- :mod:`repro.grid.graphs` -- adjacency-structure exports for the analysis
  layer.
"""

from repro.grid.topology import Topology, InfiniteGrid
from repro.grid.torus import Torus
from repro.grid.bounded import BoundedGrid
from repro.grid.rgg import RandomGeometricGraph
from repro.grid.factory import TOPOLOGY_KINDS, make_topology
from repro.grid.neighborhoods import nbd, pnbd, pnbd_frontier, nbd_centers_covering
from repro.grid.tdma import (
    TDMASchedule,
    grid_coloring_schedule,
    sequential_schedule,
    make_schedule,
    validate_schedule,
)
from repro.grid.graphs import adjacency_map, induced_adjacency, connected_components

__all__ = [
    "Topology",
    "InfiniteGrid",
    "Torus",
    "BoundedGrid",
    "RandomGeometricGraph",
    "TOPOLOGY_KINDS",
    "make_topology",
    "nbd",
    "pnbd",
    "pnbd_frontier",
    "nbd_centers_covering",
    "TDMASchedule",
    "grid_coloring_schedule",
    "sequential_schedule",
    "make_schedule",
    "validate_schedule",
    "adjacency_map",
    "induced_adjacency",
    "connected_components",
]
