"""Adjacency-structure exports for the analysis layer.

The analysis modules (reachability, vertex-disjoint paths, percolation)
work on plain adjacency maps -- ``dict`` mapping each node to a tuple of
neighbors -- rather than on :class:`~repro.grid.topology.Topology` objects,
so they can also operate on *subgraphs* (e.g. a neighborhood with its
faulty nodes removed, or the graph formed by a set of reported relay
paths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry.coords import Coord
from repro.grid.topology import Topology

AdjacencyMap = Dict[Coord, Tuple[Coord, ...]]
"""A graph as a node -> neighbors mapping.  Undirected graphs store each
edge in both endpoint lists."""


def adjacency_map(topology: Topology) -> AdjacencyMap:
    """The full radio graph of a finite topology."""
    return {node: topology.neighbors(node) for node in topology.nodes()}


def induced_adjacency(
    topology: Topology, nodes: Iterable[Coord]
) -> AdjacencyMap:
    """The radio graph induced on ``nodes`` (canonicalized).

    Only edges with both endpoints in ``nodes`` survive.  Useful for
    restricting attention to a single neighborhood, or to the correct
    (non-faulty) portion of the network.
    """
    canon: Set[Coord] = {topology.canonical(p) for p in nodes}
    return {
        node: tuple(nb for nb in topology.neighbors(node) if nb in canon)
        for node in sorted(canon)
    }


def remove_nodes(adj: AdjacencyMap, removed: Iterable[Coord]) -> AdjacencyMap:
    """A copy of ``adj`` with ``removed`` nodes (and incident edges) deleted."""
    gone = set(removed)
    return {
        node: tuple(nb for nb in nbs if nb not in gone)
        for node, nbs in adj.items()
        if node not in gone
    }


def connected_components(adj: AdjacencyMap) -> List[Set[Coord]]:
    """Connected components of an undirected adjacency map.

    Iterative BFS (no recursion limits on big tori).  Components are
    returned largest-first.
    """
    seen: Set[Coord] = set()
    components: List[Set[Coord]] = []
    for start in adj:
        if start in seen:
            continue
        comp: Set[Coord] = {start}
        frontier = [start]
        while frontier:
            nxt: List[Coord] = []
            for u in frontier:
                for v in adj.get(u, ()):
                    if v not in comp:
                        comp.add(v)
                        nxt.append(v)
            frontier = nxt
        seen |= comp
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def component_of(adj: AdjacencyMap, start: Coord) -> Set[Coord]:
    """The connected component containing ``start``."""
    if start not in adj:
        raise KeyError(f"node {start} not in graph")
    comp: Set[Coord] = {start}
    frontier = [start]
    while frontier:
        nxt: List[Coord] = []
        for u in frontier:
            for v in adj.get(u, ()):
                if v not in comp:
                    comp.add(v)
                    nxt.append(v)
        frontier = nxt
    return comp
