"""A random geometric graph on the lattice.

The related-work geometries (Maurer-Tixeuil planar graphs, loosely
connected networks -- PAPERS.md) drop the paper's "every lattice point
hosts a node" assumption: nodes are scattered, and two nodes are linked
exactly when they sit within transmission radius ``r`` of each other
under the chosen metric.  :class:`RandomGeometricGraph` realizes that
model on the integer lattice: a seeded, deterministic sample of the
``width x height`` box (plus any ``include`` anchors, by default the
conventional source ``(0, 0)``), with adjacency precomputed once from
the metric's offset stencil.

Determinism contract: the node set is a pure function of
``(width, height, density, seed, include)`` -- the sample is drawn from a
:func:`repro.exec.seeds.derive_seed`-seeded generator, never ambient
randomness -- so a scenario key that pins those values pins the graph.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.topology import Topology

#: Default fraction of lattice sites that host a node.  High enough that
#: the sampled graph is connected with overwhelming probability at the
#: sides the scenario builders pick (average degree ``density *
#: ball_size(r)`` is ~14 already at the sparsest supported case, L2 r=2).
DEFAULT_DENSITY = 0.6


class RandomGeometricGraph(Topology):
    """A seeded random subset of a ``width x height`` lattice box.

    No wrap-around: like :class:`~repro.grid.bounded.BoundedGrid` the box
    has real boundaries, and additionally interior sites may simply be
    empty.  Neighborhood populations therefore vary node to node; the
    locally-bounded budget still counts faults per closed metric ball,
    but only over sites that host nodes (see
    :func:`repro.geometry.balls.closed_ball_points`).
    """

    def __init__(
        self,
        width: int,
        height: int,
        r: int,
        metric="linf",
        *,
        density: float = DEFAULT_DENSITY,
        seed: int = 0,
        include: Iterable[Coord] = ((0, 0),),
    ) -> None:
        super().__init__(r, metric)
        if width < 1 or height < 1:
            raise ConfigurationError(
                f"graph box must be at least 1x1, got {width}x{height}"
            )
        if not 0.0 < density <= 1.0:
            raise ConfigurationError(
                f"density must be in (0, 1], got {density}"
            )
        self._width = int(width)
        self._height = int(height)
        self._density = float(density)
        self._seed = int(seed)
        # seeded through derive_seed so the node sample is its own stream,
        # statistically unrelated to any scenario stream reusing ``seed``
        from repro.exec.seeds import derive_seed

        rng = random.Random(derive_seed(self._seed, "repro.grid.rgg", 0))
        box = [
            (x, y) for y in range(self._height) for x in range(self._width)
        ]
        k = min(len(box), max(1, round(self._density * len(box))))
        sampled = set(rng.sample(box, k))
        for p in include:
            q = (int(p[0]), int(p[1]))
            if not (0 <= q[0] < self._width and 0 <= q[1] < self._height):
                raise ConfigurationError(
                    f"include point {q} is outside the "
                    f"{self._width}x{self._height} box"
                )
            sampled.add(q)
        self._node_list: Tuple[Coord, ...] = tuple(sorted(sampled))
        self._node_set = frozenset(self._node_list)
        offsets = self.metric.offsets(self.r)
        self._adjacency: Dict[Coord, Tuple[Coord, ...]] = {
            p: tuple(
                q
                for q in ((p[0] + dx, p[1] + dy) for dx, dy in offsets)
                if q in self._node_set
            )
            for p in self._node_list
        }

    @classmethod
    def square(
        cls,
        side: int,
        r: int,
        metric="linf",
        *,
        density: float = DEFAULT_DENSITY,
        seed: int = 0,
    ) -> "RandomGeometricGraph":
        """A square box of the given side."""
        return cls(side, side, r, metric, density=density, seed=seed)

    @property
    def width(self) -> int:
        """Box extent in x."""
        return self._width

    @property
    def height(self) -> int:
        """Box extent in y."""
        return self._height

    @property
    def density(self) -> float:
        """Requested fraction of occupied lattice sites."""
        return self._density

    @property
    def seed(self) -> int:
        """The sample seed (part of the graph's identity)."""
        return self._seed

    @property
    def is_finite(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._node_list)

    @property
    def num_nodes(self) -> int:
        """Total node count (``>= density * width * height``)."""
        return len(self._node_list)

    def canonical(self, p: Coord) -> Coord:
        # no wrapping: canonical form is the coordinate itself
        return (int(p[0]), int(p[1]))

    def contains(self, p: Coord) -> bool:
        return self.canonical(p) in self._node_set

    def nodes(self) -> Iterator[Coord]:
        """All nodes in sorted coordinate order (deterministic)."""
        return iter(self._node_list)

    def neighbors(self, p: Coord) -> Tuple[Coord, ...]:
        q = self.canonical(p)
        if q not in self._adjacency:
            raise ConfigurationError(f"{q} hosts no node in the {self!r}")
        return self._adjacency[q]

    def is_boundary(self, p: Coord, margin: int = None) -> bool:
        """Whether ``p`` lies within ``margin`` (default ``r``) of the
        box edge -- i.e. its neighborhood ball is truncated by the box
        (it may be thinned anywhere by empty sites)."""
        m = self.r if margin is None else margin
        x, y = self.canonical(p)
        return (
            x < m or y < m or x >= self._width - m or y >= self._height - m
        )

    def distance(self, a: Coord, b: Coord) -> float:
        """Plain metric distance (no wrap)."""
        return self.metric.distance(a, b)

    def __repr__(self) -> str:
        return (
            f"RandomGeometricGraph({self._width}x{self._height}, "
            f"r={self.r}, metric={self.metric.name!r}, "
            f"density={self._density}, seed={self._seed}, "
            f"nodes={len(self._node_list)})"
        )
