"""The topology factor: named kinds -> concrete :class:`Topology` objects.

Scenario specifications name their topology by *kind* (a plain string
that can sit in a frozen dataclass and a JSON cache key) and materialize
it here.  The three kinds are the scenario axes of ROADMAP item 2:

- ``"torus"`` -- :class:`~repro.grid.torus.Torus`: the paper's
  boundary-free simulation substrate (the default everywhere);
- ``"bounded"`` -- :class:`~repro.grid.bounded.BoundedGrid`: real
  boundaries, truncated corner neighborhoods;
- ``"rgg"`` -- :class:`~repro.grid.rgg.RandomGeometricGraph`: a seeded
  random node sample of the box, the related-work geometry.

Every kind accepts the same ``(side, r, metric, seed)`` signature so the
run-table harness can treat the topology as one orthogonal factor;
``seed`` only matters for ``"rgg"`` (the other kinds are fully
determined by their dimensions).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.grid.bounded import BoundedGrid
from repro.grid.rgg import DEFAULT_DENSITY, RandomGeometricGraph
from repro.grid.topology import Topology
from repro.grid.torus import Torus

#: the topology-factor levels, in documentation order
TOPOLOGY_KINDS = ("torus", "bounded", "rgg")


def make_topology(
    kind: str,
    side: int,
    r: int,
    metric="linf",
    *,
    seed: int = 0,
    density: float = DEFAULT_DENSITY,
) -> Topology:
    """Materialize a square topology of the named ``kind``.

    ``seed`` and ``density`` are only consulted for ``"rgg"``; the lattice
    kinds ignore them (their node sets are determined by ``side`` alone).
    """
    if kind == "torus":
        return Torus.square(side, r, metric)
    if kind == "bounded":
        return BoundedGrid.square(side, r, metric)
    if kind == "rgg":
        return RandomGeometricGraph.square(
            side, r, metric, density=density, seed=seed
        )
    raise ConfigurationError(
        f"unknown topology kind {kind!r}; expected one of {TOPOLOGY_KINDS}"
    )
