"""The finite toroidal grid used for simulation.

The paper notes (Section I) that its infinite-grid results "also hold for a
finite toroidal network, as boundary anomalies are eliminated".  The
:class:`Torus` wraps a ``width x height`` block of lattice points so that
every node sees an identical, translation-invariant neighborhood -- exactly
the property the inductive proofs rely on.

Sizing guidance
---------------

- A side of at least ``2r + 1`` is *required*: below that, a node's
  neighborhood would wrap onto itself and contain duplicate nodes, breaking
  the model.
- A side of at least ``4r + 3`` is *recommended* for fidelity: the paper's
  indirect-report protocol looks four hops out, and with side >= 4r+3 a
  neighborhood together with its relevant halo never self-intersects
  through the wrap, so a finite run is indistinguishable from an
  infinite-grid run locally.  Constructors accept smaller (>= 2r+1) sizes
  because they remain useful for cheap unit tests.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.topology import Topology


class Torus(Topology):
    """A ``width x height`` toroidal grid with transmission radius ``r``.

    Canonical coordinates are ``(x, y)`` with ``0 <= x < width`` and
    ``0 <= y < height``; arbitrary integer coordinates are wrapped
    modularly, so callers may keep reasoning in infinite-grid coordinates
    (e.g. place the source at ``(0, 0)`` and a fault strip at ``x = a``).
    """

    def __init__(self, width: int, height: int, r: int, metric="linf") -> None:
        super().__init__(r, metric)
        if width < 2 * self.r + 1 or height < 2 * self.r + 1:
            raise ConfigurationError(
                f"torus {width}x{height} is too small for r={self.r}: both "
                f"sides must be at least 2r+1 = {2 * self.r + 1} so that "
                "neighborhoods do not wrap onto themselves"
            )
        self._width = int(width)
        self._height = int(height)

    @classmethod
    def square(cls, side: int, r: int, metric="linf") -> "Torus":
        """A square torus of the given side."""
        return cls(side, side, r, metric)

    @classmethod
    def recommended(cls, r: int, metric="linf", slack: int = 0) -> "Torus":
        """The smallest square torus that behaves like the infinite grid
        for all protocols in this library (side ``4r + 3 + slack``)."""
        return cls.square(4 * r + 3 + max(0, slack), r, metric)

    @property
    def width(self) -> int:
        """Number of distinct x coordinates."""
        return self._width

    @property
    def height(self) -> int:
        """Number of distinct y coordinates."""
        return self._height

    @property
    def is_finite(self) -> bool:
        return True

    def __len__(self) -> int:
        return self._width * self._height

    @property
    def num_nodes(self) -> int:
        """Total node count (``width * height``)."""
        return self._width * self._height

    def canonical(self, p: Coord) -> Coord:
        return (int(p[0]) % self._width, int(p[1]) % self._height)

    def contains(self, p: Coord) -> bool:
        return True  # every wrapped coordinate hosts a node

    def nodes(self) -> Iterator[Coord]:
        """All canonical coordinates, row-major."""
        for y in range(self._height):
            for x in range(self._width):
                yield (x, y)

    def neighbors(self, p: Coord) -> Tuple[Coord, ...]:
        x, y = self.canonical(p)
        w, h = self._width, self._height
        return tuple(
            ((x + dx) % w, (y + dy) % h)
            for dx, dy in self.metric.offsets(self.r)
        )

    def toroidal_delta(self, a: Coord, b: Coord) -> Coord:
        """The shortest wrapped displacement from ``a`` to ``b``.

        Each component is reduced to the range ``(-side/2, side/2]``.
        """
        ax, ay = self.canonical(a)
        bx, by = self.canonical(b)
        dx = (bx - ax) % self._width
        if dx > self._width // 2:
            dx -= self._width
        dy = (by - ay) % self._height
        if dy > self._height // 2:
            dy -= self._height
        return (dx, dy)

    def distance(self, a: Coord, b: Coord) -> float:
        """Metric distance using the shortest toroidal displacement."""
        dx, dy = self.toroidal_delta(a, b)
        return self.metric.distance((0, 0), (dx, dy))

    def __repr__(self) -> str:
        return (
            f"Torus({self._width}x{self._height}, r={self.r}, "
            f"metric={self.metric.name!r})"
        )
