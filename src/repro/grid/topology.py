"""Topology interface and the infinite grid.

A :class:`Topology` binds together the lattice, a distance metric and a
transmission radius ``r``.  It answers the two questions every layer above
asks: *which nodes exist* and *who hears whom*.

Two concrete topologies exist:

- :class:`InfiniteGrid` -- every lattice point hosts a node.  Used by the
  analytic/constructive modules (:mod:`repro.core`), which never need to
  materialize the node set.
- :class:`repro.grid.torus.Torus` -- a finite ``width x height`` torus used
  by the simulator.  Per the paper (Section I), the toroidal wrap removes
  boundary anomalies so finite simulations reflect the infinite-grid
  results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Tuple

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric, get_metric


class Topology(ABC):
    """A node layout plus a radio reachability relation.

    Coordinates passed to topology methods are always reduced to a
    *canonical* form first (the identity on the infinite grid; modular
    wrapping on a torus).  All returned coordinates are canonical.
    """

    def __init__(self, r: int, metric="linf") -> None:
        if r < 1:
            raise ConfigurationError(
                f"transmission radius must be a positive integer, got {r}"
            )
        self._r = int(r)
        self._metric = get_metric(metric)

    @property
    def r(self) -> int:
        """The transmission radius (an integer, per the paper)."""
        return self._r

    @property
    def metric(self) -> Metric:
        """The distance metric defining neighborhoods."""
        return self._metric

    @property
    @abstractmethod
    def is_finite(self) -> bool:
        """Whether the node set can be enumerated."""

    @abstractmethod
    def canonical(self, p: Coord) -> Coord:
        """Reduce a coordinate to its canonical representative."""

    @abstractmethod
    def contains(self, p: Coord) -> bool:
        """Whether a node exists at (the canonical form of) ``p``."""

    @abstractmethod
    def neighbors(self, p: Coord) -> Tuple[Coord, ...]:
        """Canonical coordinates of all nodes that hear ``p`` transmit
        (equivalently, all nodes ``p`` hears), excluding ``p`` itself."""

    def nodes(self) -> Iterable[Coord]:
        """Iterate all nodes (finite topologies only)."""
        raise ConfigurationError(
            f"{type(self).__name__} is infinite; its node set cannot be "
            "enumerated"
        )

    def neighborhood_size(self) -> int:
        """Population of a (generic) neighborhood, excluding the center."""
        return self._metric.ball_size(self._r)

    def are_neighbors(self, a: Coord, b: Coord) -> bool:
        """Whether ``a`` and ``b`` are distinct nodes within distance r."""
        ca, cb = self.canonical(a), self.canonical(b)
        if ca == cb:
            return False
        return cb in self.neighbors(ca)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(r={self._r}, metric={self._metric.name!r})"
        )


class InfiniteGrid(Topology):
    """The paper's infinite unit grid: a node at every lattice point.

    Purely analytic -- neighborhoods are computed from metric offsets, and
    the node set is never materialized.
    """

    @property
    def is_finite(self) -> bool:
        return False

    def canonical(self, p: Coord) -> Coord:
        return (int(p[0]), int(p[1]))

    def contains(self, p: Coord) -> bool:
        return True

    def neighbors(self, p: Coord) -> Tuple[Coord, ...]:
        x, y = p
        return tuple((x + dx, y + dy) for dx, dy in self._metric.offsets(self._r))

    def distance(self, a: Coord, b: Coord) -> float:
        """Metric distance between two lattice points."""
        return self._metric.distance(a, b)
