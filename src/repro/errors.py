"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A simulation, protocol, or experiment was configured inconsistently.

    Examples: a torus too small for the transmission radius, a negative
    fault budget, or a protocol attached to a node that already runs one.
    """


class InvalidPlacementError(ReproError):
    """A fault placement violates the locally bounded adversary constraint.

    Raised by :func:`repro.faults.placement.validate_placement` when some
    neighborhood contains more than ``t`` faulty nodes.
    """


class SpoofingError(ReproError):
    """A node attempted to transmit a message claiming another sender.

    The paper's model rules out address spoofing; the channel enforces this
    invariant and raises this error if a (buggy or adversarial) node object
    tries to violate it.
    """


class ProtocolViolationError(ReproError):
    """A protocol implementation broke one of the model's ground rules.

    For instance, transmitting after crashing, or a *correct* node's
    protocol attempting duplicitous per-neighbor delivery (impossible on a
    broadcast channel).
    """


class SimulationLimitError(ReproError):
    """The simulation exceeded its configured round or message budget.

    This is distinct from a protocol legitimately stalling: engines raise
    this only when ``max_rounds``/``max_messages`` safety valves trip.
    """


class WitnessError(ReproError):
    """A constructive witness failed verification.

    Raised by :mod:`repro.core.witnesses` when a claimed set of
    node-disjoint paths is not disjoint, leaves the claimed neighborhood, or
    has the wrong cardinality.
    """
