"""Channel-model rules: no spoofing, immutable payloads.

The paper's Section II channel gives every receiver an unforgeable
sender identity and delivers each transmission identically to all
neighbors.  The simulator realizes that contract in exactly one place --
the engine stamps :class:`~repro.radio.messages.Envelope` objects -- and
these rules keep it that way:

- only :mod:`repro.radio` may construct envelopes (everything else
  would be spoofing by construction);
- payload dataclasses must be frozen (a mutable payload shared by
  reference across receivers is a side channel the model forbids);
- received envelopes and payloads must not be mutated inside
  ``on_receive`` handlers (same object, every receiver).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.findings import Finding
from repro.lint.rules import (
    Rule,
    SourceModule,
    attribute_root,
    name_of,
    register,
    walk_functions,
)
from repro.lint.sources import LintContext

#: the only package allowed to construct envelopes
_ENVELOPE_HOME_PREFIX = "repro.radio"


@register
class NoEnvelopeForgeryRule(Rule):
    """Only ``repro.radio`` may construct :class:`Envelope` objects.

    The sender field is trustworthy *because* the engine stamps it; an
    envelope built anywhere else is a forged transmission that bypasses
    the channel (and with it the no-spoofing assumption every safety
    proof leans on).
    """

    rule_id = "no-envelope-forgery"
    description = (
        "Envelope may only be constructed inside repro.radio (the "
        "engine stamps senders; anything else is spoofing)"
    )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Flag ``Envelope(...)`` calls outside the radio package."""
        if module.name == _ENVELOPE_HOME_PREFIX or module.name.startswith(
            _ENVELOPE_HOME_PREFIX + "."
        ):
            return
        callees = {"Envelope"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "Envelope" and alias.asname:
                        callees.add(alias.asname)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and name_of(node.func) in callees:
                yield self.finding(
                    module,
                    node,
                    "Envelope constructed outside repro.radio; only the "
                    "engine may stamp senders (no-spoofing assumption)",
                )


#: modules whose dataclasses are payload vocabulary wholesale
_PAYLOAD_MODULES = {"repro.radio.messages"}
_PAYLOAD_MODULE_PREFIXES = ("repro.protocols",)
#: class-name suffix marking a payload type wherever it is defined
_PAYLOAD_NAME_SUFFIX = "Msg"


def _dataclass_decorator(node: ast.ClassDef):
    """The ``@dataclass`` decorator node of a class, or ``None``."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if name_of(target) == "dataclass":
            return dec
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    """Whether a ``@dataclass`` decorator sets ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass: frozen defaults to False
    for kw in decorator.keywords:
        if kw.arg == "frozen":
            return (
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            )
    return False


@register
class FrozenPayloadsRule(Rule):
    """Payload dataclasses must be declared ``frozen=True``.

    In scope: every ``@dataclass`` in :mod:`repro.radio.messages` or
    under ``repro.protocols``, plus any dataclass whose name ends in
    ``Msg`` wherever it lives.  The engine delivers one payload object
    to many receivers by reference; a thawed payload would let one
    receiver rewrite what the others saw.
    """

    rule_id = "frozen-payloads"
    description = (
        "protocol payload dataclasses (repro.protocols, "
        "repro.radio.messages, and any *Msg class) must be frozen=True"
    )

    def _in_scope(self, module: SourceModule, cls: ast.ClassDef) -> bool:
        if cls.name.endswith(_PAYLOAD_NAME_SUFFIX):
            return True
        return module.name in _PAYLOAD_MODULES or module.name.startswith(
            _PAYLOAD_MODULE_PREFIXES
        )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Flag in-scope dataclasses that are not frozen."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._in_scope(module, node):
                continue
            dec = _dataclass_decorator(node)
            if dec is not None and not _is_frozen(dec):
                yield self.finding(
                    module,
                    node,
                    f"payload dataclass '{node.name}' must be "
                    "@dataclass(frozen=True): payloads are shared by "
                    "reference across receivers",
                )


#: methods that mutate their receiver in place
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "sort",
    "reverse",
}


#: hook name -> positional index (method form, ``self`` first) of the
#: envelope parameter, for hooks that receive envelopes unannotated:
#: the :class:`~repro.radio.node.NodeProcess` receive hook and the
#: :class:`~repro.obs.metrics.EngineObserver` channel callbacks.
_ENVELOPE_PARAM_INDEX = {
    "on_receive": 2,       # (self, ctx, env)
    "on_transmission": 1,  # (self, env, receivers)
    "on_delivery": 2,      # (self, node, env)
}


def _received_params(func: ast.FunctionDef) -> Set[str]:
    """Parameter names of ``func`` holding received message objects.

    A parameter counts when its annotation is ``Envelope`` or a payload
    type (``*Msg``); for functions literally named after an
    envelope-carrying hook (``on_receive``, or the observer callbacks
    ``on_transmission`` / ``on_delivery``) the envelope's positional
    parameter counts even unannotated, matching the
    :class:`~repro.radio.node.NodeProcess` and
    :class:`~repro.obs.metrics.EngineObserver` hook signatures.
    """
    roots: Set[str] = set()
    args = list(func.args.posonlyargs) + list(func.args.args)
    for arg in args + list(func.args.kwonlyargs):
        head = arg.annotation
        if isinstance(head, ast.Subscript):
            head = head.value
        label = name_of(head) if head is not None else ""
        if label == "Envelope" or label.endswith(_PAYLOAD_NAME_SUFFIX):
            roots.add(arg.arg)
    index = _ENVELOPE_PARAM_INDEX.get(func.name)
    if index is not None and len(args) > index:
        roots.add(args[index].arg)
    return roots


@register
class NoReceivedMutationRule(Rule):
    """Received envelopes and payloads must not be mutated.

    Every receiver of a transmission gets the *same* envelope object;
    assigning to its attributes (or calling ``.append``-style mutators
    on anything reached through it) inside a receive handler rewrites
    history for all later receivers.  Observer callbacks see those very
    objects too -- an observer that mutates an envelope corrupts the
    simulation it claims to merely watch.  Scope: any function annotated
    as handling an ``Envelope`` / ``*Msg`` parameter, plus every
    function named ``on_receive``, ``on_transmission`` or
    ``on_delivery``.
    """

    rule_id = "no-received-mutation"
    description = (
        "on_receive handlers and observer callbacks (on_transmission/"
        "on_delivery) must not assign to, delete from, or call mutating "
        "methods on received envelopes/payloads"
    )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Flag mutation of received-message parameters in handlers."""
        for func in walk_functions(module.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                continue
            roots = _received_params(func)
            if not roots:
                continue
            yield from self._check_handler(module, func, roots)

    def _check_handler(
        self, module: SourceModule, func: ast.FunctionDef, roots: Set[str]
    ) -> Iterator[Finding]:
        """Scan one handler body for writes through ``roots``."""

        def rooted(target: ast.AST) -> bool:
            return (
                isinstance(target, (ast.Attribute, ast.Subscript))
                and attribute_root(target) in roots
            )

        for node in ast.walk(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                    continue
                if rooted(target):
                    yield self.finding(
                        module,
                        node,
                        f"handler '{func.name}' writes through received "
                        f"message parameter "
                        f"'{attribute_root(target)}'; envelopes and "
                        "payloads are shared across receivers and must "
                        "not be mutated",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and rooted(node.func)
            ):
                yield self.finding(
                    module,
                    node,
                    f"handler '{func.name}' calls mutating method "
                    f".{node.func.attr}() on received message parameter "
                    f"'{attribute_root(node.func)}'; received state is "
                    "read-only",
                )
