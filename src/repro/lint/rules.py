"""The rule framework: base class, registry, and shared AST helpers.

A rule inspects parsed source and yields :class:`~repro.lint.findings.
Finding` objects.  Rules come in two scopes:

- **module rules** override :meth:`Rule.check_module` and run once per
  file;
- **project rules** override :meth:`Rule.check_project` and run once per
  lint invocation with the full :class:`~repro.lint.sources.LintContext`
  (for cross-module invariants such as registry conformance).

Concrete rules register themselves with the :func:`register` decorator;
:func:`all_rules` returns one instance of each.  To add a rule: subclass
:class:`Rule`, set ``rule_id`` / ``severity`` / ``description``,
implement a ``check_*`` method, decorate with ``@register``, and make
sure the defining module is imported by :func:`load_builtin_rules`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.lint.findings import Finding, Severity
from repro.lint.sources import LintContext, SourceModule


class Rule:
    """Base class for lint rules.

    Subclasses must set :attr:`rule_id` and :attr:`description` and
    override at least one of :meth:`check_module` /
    :meth:`check_project`.
    """

    #: unique kebab-case identifier (used in reports and suppressions)
    rule_id: str = ""
    severity: Severity = Severity.ERROR
    #: one-line human description for ``--list-rules`` and the docs
    description: str = ""
    #: deep rules build the whole-program :class:`~repro.lint.analysis.
    #: project.ProjectModel`; they are skipped by default and run under
    #: ``repro lint --deep`` (or when selected explicitly by id)
    deep: bool = False

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Yield findings for one module (default: none)."""
        return iter(())

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield cross-module findings (default: none)."""
        return iter(())

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` inside ``module``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 0) or 0,
            col=getattr(node, "col_offset", 0) or 0,
            message=message,
            module=module.name,
        )


#: rule id -> rule instance, populated by :func:`register`
REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in REGISTRY and not isinstance(
        REGISTRY[rule.rule_id], cls
    ):
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    REGISTRY[rule.rule_id] = rule
    return cls


def load_builtin_rules() -> None:
    """Import every built-in rule module (idempotent)."""
    from repro.lint import conformance, determinism, model  # noqa: F401
    from repro.lint.analysis import (  # noqa: F401
        cachekey,
        forksafety,
        taint,
    )


def all_rules() -> List[Rule]:
    """All registered rules (deep ones included), sorted by id."""
    load_builtin_rules()
    return [REGISTRY[k] for k in sorted(REGISTRY)]


def get_rules(
    rule_ids: Optional[Sequence[str]] = None,
    include_deep: bool = False,
) -> List[Rule]:
    """Resolve a rule-id selection.

    ``None`` selects every registered rule except the deep
    (whole-program) ones unless ``include_deep`` is set; an explicit id
    list always wins, so ``--rules nondet-taint`` runs a deep rule
    without ``--deep``.  Raises :class:`KeyError` naming the unknown id
    when the selection does not resolve.
    """
    rules = all_rules()
    if rule_ids is None:
        return [r for r in rules if include_deep or not r.deep]
    known = {r.rule_id: r for r in rules}
    out = []
    for rid in rule_ids:
        if rid not in known:
            raise KeyError(
                f"unknown rule id {rid!r}; known: {sorted(known)}"
            )
        out.append(known[rid])
    return out


# ---------------------------------------------------------------------------
# shared AST helpers


def name_of(node: ast.AST) -> str:
    """The trailing identifier of a ``Name`` / ``Attribute``, else ``""``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def attribute_root(node: ast.AST) -> Optional[str]:
    """The root ``Name`` id of an attribute/subscript chain.

    ``env.payload.relays`` -> ``"env"``; ``env.data[k]`` -> ``"env"``;
    anything not rooted in a plain name -> ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def walk_functions(
    tree: ast.AST,
) -> Iterable["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function definition in ``tree`` (nested ones included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
