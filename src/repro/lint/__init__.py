"""Static analysis for simulator-model invariants (``repro lint``).

The paper's guarantees hold only while the simulator preserves its
channel-model invariants: engine-stamped unforgeable senders, immutable
payloads, deterministic round/slot ordering, and registry-driven
discoverability.  Those invariants used to live in docstrings; this
package enforces them with an AST-based linter so they survive growth.

Shipped rules (see :mod:`repro.lint.determinism`, :mod:`repro.lint.model`
and :mod:`repro.lint.conformance` for the full contracts):

========================  ==================================================
rule id                   invariant
========================  ==================================================
``no-unseeded-rng``       library code draws only from injected/seeded
                          ``random.Random`` generators
``no-envelope-forgery``   only ``repro.radio`` constructs ``Envelope``
``frozen-payloads``       payload dataclasses are ``frozen=True``
``ordered-iteration``     engine/protocol code iterates sets (and
                          delivery-path dict views) via ``sorted(...)``
``registry-conformance``  protocols and experiments are registered
``no-received-mutation``  receive handlers never mutate received messages
========================  ==================================================

Violations can be silenced per line with
``# repro: lint-ok[rule-id] reason`` (the reason is mandatory).  Run via
``python -m repro lint [paths...]`` or programmatically through
:func:`lint_paths`.
"""

from repro.lint.findings import Finding, Severity, Suppression
from repro.lint.reporters import format_json, format_text
from repro.lint.rules import REGISTRY, Rule, all_rules, get_rules, register
from repro.lint.runner import LintReport, lint_modules, lint_paths
from repro.lint.sources import LintContext, ParseFailure, SourceModule

__all__ = [
    "Finding",
    "Severity",
    "Suppression",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "get_rules",
    "LintReport",
    "lint_modules",
    "lint_paths",
    "LintContext",
    "ParseFailure",
    "SourceModule",
    "format_text",
    "format_json",
]
