"""Static analysis for simulator-model invariants (``repro lint``).

The paper's guarantees hold only while the simulator preserves its
channel-model invariants: engine-stamped unforgeable senders, immutable
payloads, deterministic round/slot ordering, and registry-driven
discoverability.  Those invariants used to live in docstrings; this
package enforces them with an AST-based linter so they survive growth.

Shipped rules (see :mod:`repro.lint.determinism`, :mod:`repro.lint.model`
and :mod:`repro.lint.conformance` for the full contracts):

=========================  =================================================
rule id                    invariant
=========================  =================================================
``no-unseeded-rng``        library code draws only from injected/seeded
                           ``random.Random`` generators
``no-envelope-forgery``    only ``repro.radio`` constructs ``Envelope``
``frozen-payloads``        payload dataclasses are ``frozen=True``
``ordered-iteration``      engine/protocol code iterates sets (and
                           delivery-path dict views) via ``sorted(...)``
``registry-conformance``   protocols and experiments are registered
``no-received-mutation``   receive handlers never mutate received messages
``adversary-injected-rng`` move kernels draw only from their injected rng
=========================  =================================================

Three whole-program passes (:mod:`repro.lint.analysis`) run under
``repro lint --deep``, powered by an interprocedural project model
(symbol tables, class hierarchy, call graph):

=========================  =================================================
rule id                    invariant
=========================  =================================================
``nondet-taint``           no nondeterminism source (module rng, time,
                           urandom, uuid, set/dict iteration order) reaches
                           ``Engine.run`` / ``run_trial`` /
                           ``build_scenario`` / move kernels except through
                           ``derive_seed``
``cache-key-soundness``    every ``ScenarioSpec`` field read in
                           ``run_trial``'s call closure is in the cache key
                           or explicitly exempted in ``KEY_EXEMPT_FIELDS``
``fork-safety``            pool-submitted closures carry no mutable
                           defaults, rebind no globals, mutate no module
                           state, and read only frozen registries
=========================  =================================================

Violations can be silenced per line with
``# repro: lint-ok[rule-id] reason`` (the reason is mandatory), or
accepted as known debt in the checked-in ``lint-baseline.json``
(:mod:`repro.lint.baseline`).  Run via ``python -m repro lint
[paths...]`` or programmatically through :func:`lint_paths`; see
``docs/LINTING.md`` for the full guide.
"""

from repro.lint.baseline import fingerprint, load_baseline, write_baseline
from repro.lint.findings import Finding, Severity, Suppression
from repro.lint.reporters import format_json, format_sarif, format_text
from repro.lint.rules import REGISTRY, Rule, all_rules, get_rules, register
from repro.lint.runner import LintReport, lint_modules, lint_paths
from repro.lint.sources import LintContext, ParseFailure, SourceModule

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "format_sarif",
    "Finding",
    "Severity",
    "Suppression",
    "Rule",
    "REGISTRY",
    "register",
    "all_rules",
    "get_rules",
    "LintReport",
    "lint_modules",
    "lint_paths",
    "LintContext",
    "ParseFailure",
    "SourceModule",
    "format_text",
    "format_json",
]
