"""Drive a lint run: discover, parse, check, suppress, report.

:func:`lint_paths` is the single entry point used by the CLI and the
self-check test.  Exit-code contract (:attr:`LintReport.exit_code`):

- ``0`` -- no error-severity findings (warnings alone stay green);
- ``1`` -- at least one unsuppressed error finding;
- ``2`` -- at least one file could not be parsed (the tree cannot be
  verified, which is worse than a finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.lint.findings import (
    Finding,
    Severity,
    Suppression,
    scan_suppressions,
)
from repro.lint.rules import get_rules
from repro.lint.sources import (
    LintContext,
    ParseFailure,
    SourceModule,
    discover_py_files,
    load_modules,
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: unsuppressed findings, sorted by (path, line, col, rule)
    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by a valid suppression, with the suppression
    suppressed: List[Tuple[Finding, Suppression]] = field(
        default_factory=list
    )
    parse_failures: List[ParseFailure] = field(default_factory=list)
    #: findings matched by the baseline file (known debt: reported in
    #: the artifacts, excluded from :attr:`findings` and the exit code)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: ids of the rules that ran
    rule_ids: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        """Unsuppressed findings at error severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Unsuppressed findings at warning severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """Process exit status (see module docstring for the contract)."""
        if self.parse_failures:
            return 2
        return 1 if self.errors else 0


def _bad_suppression_findings(module: SourceModule) -> List[Finding]:
    """Warnings for malformed suppression comments in one module."""
    out: List[Finding] = []
    for sup in scan_suppressions(module.lines):
        if sup.reason:
            continue
        out.append(
            Finding(
                rule_id="bad-suppression",
                severity=Severity.WARNING,
                path=module.path,
                line=sup.line,
                col=0,
                message=(
                    f"suppression of [{sup.rule_id}] has no reason; it is "
                    "inert -- write '# repro: lint-ok[rule-id] why'"
                ),
                module=module.name,
            )
        )
    return out


def _apply_suppressions(
    modules: Sequence[SourceModule], findings: Sequence[Finding]
) -> Tuple[List[Finding], List[Tuple[Finding, Suppression]]]:
    """Split findings into (kept, suppressed) using per-file comments.

    A finding inside a multi-line statement is also covered by a
    suppression anchored at the statement's *first* line (see
    :meth:`SourceModule.statement_anchor`).
    """
    by_path = {
        m.path: (scan_suppressions(m.lines), m) for m in modules
    }
    kept: List[Finding] = []
    silenced: List[Tuple[Finding, Suppression]] = []
    for finding in findings:
        sups, module = by_path.get(finding.path, ((), None))
        anchor = (
            module.statement_anchor(finding.line)
            if module is not None
            else None
        )
        match = next(
            (s for s in sups if s.covers(finding, anchor)),
            None,
        )
        if match is None:
            kept.append(finding)
        else:
            silenced.append((finding, match))
    return kept, silenced


def lint_modules(
    modules: Sequence[SourceModule],
    rule_ids: Optional[Sequence[str]] = None,
    deep: bool = False,
    baseline: Optional[Set[str]] = None,
) -> LintReport:
    """Run the (selected) rules over already-parsed modules.

    ``deep`` includes the whole-program rules in the default selection;
    ``baseline`` is a fingerprint set (see :mod:`repro.lint.baseline`)
    whose matches are moved to :attr:`LintReport.baselined` and stop
    affecting the exit code.
    """
    rules = get_rules(rule_ids, include_deep=deep)
    ctx = LintContext(modules)
    raw: List[Finding] = []
    for rule in rules:
        for module in ctx.modules:
            raw.extend(rule.check_module(ctx, module))
        raw.extend(rule.check_project(ctx))
    for module in ctx.modules:
        raw.extend(_bad_suppression_findings(module))
    kept, silenced = _apply_suppressions(ctx.modules, raw)
    baselined: List[Finding] = []
    if baseline:
        from repro.lint.baseline import fingerprint

        still_new = []
        for finding in kept:
            if fingerprint(finding) in baseline:
                baselined.append(finding)
            else:
                still_new.append(finding)
        kept = still_new
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return LintReport(
        findings=kept,
        suppressed=silenced,
        baselined=baselined,
        files_checked=len(ctx.modules),
        rule_ids=[r.rule_id for r in rules],
    )


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
    deep: bool = False,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint files and directories; the main entry point.

    Raises :class:`FileNotFoundError` for a nonexistent path and
    :class:`KeyError` for an unknown rule id (both usage errors, exit
    status 2 at the CLI); parse failures inside existing files are
    reported in the result instead.  ``baseline_path`` loads a
    fingerprint baseline (missing/invalid file = usage error too).
    """
    files = discover_py_files(paths)
    modules, failures = load_modules(files)
    baseline: Optional[Set[str]] = None
    if baseline_path is not None:
        from repro.lint.baseline import load_baseline

        baseline = load_baseline(baseline_path)
    report = lint_modules(modules, rule_ids, deep=deep, baseline=baseline)
    report.parse_failures = list(failures)
    report.files_checked = len(modules)
    return report
