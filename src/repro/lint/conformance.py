"""Registry-conformance rule: nothing runnable stays unregistered.

The experiment harness, the CLI, and the benches discover protocols and
experiments exclusively through their registries
(:mod:`repro.protocols.registry`, :mod:`repro.experiments.registry`).
A protocol class or experiment that is not registered silently falls out
of every sweep, conformance test, and comparison table -- the worst kind
of coverage rot, because nothing fails.  This rule makes it fail.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import Rule, SourceModule, name_of, register
from repro.lint.sources import LintContext

_PROTOCOLS_PACKAGE = "repro.protocols"
_PROTOCOL_REGISTRY_MODULE = "repro.protocols.registry"
_PROTOCOL_BASE_CLASS = "BroadcastProtocolNode"
#: modules of the protocols package that define infrastructure, not
#: concrete protocols
_PROTOCOL_EXEMPT_MODULES = {
    "repro.protocols.base",
    _PROTOCOL_REGISTRY_MODULE,
}

_EXPERIMENTS_PACKAGE = "repro.experiments"
_EXPERIMENT_REGISTRY_MODULE = "repro.experiments.registry"
_EXPERIMENT_CLASS = "Experiment"
_EXPERIMENT_TABLE = "_EXPERIMENTS"


def _class_defs(
    modules: List[SourceModule],
) -> List[Tuple[SourceModule, ast.ClassDef]]:
    """Every class definition across ``modules`` with its home module."""
    out: List[Tuple[SourceModule, ast.ClassDef]] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                out.append((module, node))
    return out


def _protocol_subclasses(
    classes: List[Tuple[SourceModule, ast.ClassDef]],
) -> List[Tuple[SourceModule, ast.ClassDef]]:
    """Transitive subclasses of the protocol base class, by base name."""
    protocol_names: Set[str] = {_PROTOCOL_BASE_CLASS}
    chosen: Dict[str, Tuple[SourceModule, ast.ClassDef]] = {}
    while True:
        grew = False
        for module, cls in classes:
            if cls.name in protocol_names:
                continue
            if any(name_of(base) in protocol_names for base in cls.bases):
                protocol_names.add(cls.name)
                chosen[cls.name] = (module, cls)
                grew = True
        if not grew:
            return [chosen[name] for name in sorted(chosen)]


def _assigns_to(node: ast.AST, target_name: str) -> bool:
    """Whether ``node`` is a (possibly annotated) assignment to
    ``target_name`` at any nesting level of its targets."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    else:
        return False
    return any(
        isinstance(t, ast.Name) and t.id == target_name for t in targets
    )


def _registered_protocol_classes(registry: SourceModule) -> Set[str]:
    """Class names appearing as values of the ``PROTOCOLS`` mapping."""
    names: Set[str] = set()
    for node in ast.walk(registry.tree):
        if not _assigns_to(node, "PROTOCOLS"):
            continue
        value = node.value
        # the registry may be frozen (``MappingProxyType({...})``) -- look
        # through a single call wrapper at the dict literal inside
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if isinstance(value, ast.Dict):
            for entry in value.values:
                label = name_of(entry)
                if label:
                    names.add(label)
    return names


@register
class RegistryConformanceRule(Rule):
    """Concrete protocols and experiments must be registered.

    Two checks, both cross-module (this is a project rule):

    - every concrete :class:`BroadcastProtocolNode` subclass defined
      under ``repro.protocols`` (infrastructure modules exempt) must
      appear as a value of the ``PROTOCOLS`` mapping in
      :mod:`repro.protocols.registry`;
    - every :class:`Experiment` must be constructed inside the
      ``_EXPERIMENTS`` table of :mod:`repro.experiments.registry` --
      an ``Experiment(...)`` call anywhere else builds an experiment
      the registry (and therefore the CLI and benches) cannot see.

    Classes prefixed with ``_`` are treated as internal helpers and
    skipped.  When the relevant registry module is not among the linted
    paths the corresponding check is skipped (a partial lint cannot
    judge registration).
    """

    rule_id = "registry-conformance"
    description = (
        "every concrete protocol class must be in PROTOCOLS and every "
        "Experiment must be constructed in the experiment registry"
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Run both registry checks over the full lint context."""
        yield from self._check_protocols(ctx)
        yield from self._check_experiments(ctx)

    def _check_protocols(self, ctx: LintContext) -> Iterator[Finding]:
        registry = ctx.get(_PROTOCOL_REGISTRY_MODULE)
        if registry is None:
            return
        in_package = [
            m
            for m in ctx.modules
            if m.name.startswith(_PROTOCOLS_PACKAGE + ".")
            and m.name not in _PROTOCOL_EXEMPT_MODULES
        ]
        registered = _registered_protocol_classes(registry)
        for module, cls in _protocol_subclasses(_class_defs(in_package)):
            if cls.name.startswith("_"):
                continue
            if cls.name not in registered:
                yield self.finding(
                    module,
                    cls,
                    f"protocol class '{cls.name}' is not registered in "
                    f"{_PROTOCOL_REGISTRY_MODULE}.PROTOCOLS; unregistered "
                    "protocols are invisible to the harness and benches",
                )

    def _check_experiments(self, ctx: LintContext) -> Iterator[Finding]:
        registry = ctx.get(_EXPERIMENT_REGISTRY_MODULE)
        table_calls: Set[int] = set()
        if registry is not None:
            for node in ast.walk(registry.tree):
                if _assigns_to(node, _EXPERIMENT_TABLE):
                    table_calls.update(
                        id(sub)
                        for sub in ast.walk(node)
                        if isinstance(sub, ast.Call)
                    )
        for module in ctx.modules:
            if not (
                module.name == _EXPERIMENTS_PACKAGE
                or module.name.startswith(_EXPERIMENTS_PACKAGE + ".")
            ):
                continue
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and name_of(node.func) == _EXPERIMENT_CLASS
                ):
                    continue
                if module.name == _EXPERIMENT_REGISTRY_MODULE and (
                    id(node) in table_calls
                ):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"Experiment constructed outside "
                    f"{_EXPERIMENT_REGISTRY_MODULE}.{_EXPERIMENT_TABLE}; "
                    "register it there so the CLI and benches can see it",
                )
