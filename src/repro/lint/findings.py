"""Findings, severities, and per-line suppression comments.

A :class:`Finding` is one rule violation at one source location.  Findings
can be silenced in place with a suppression comment::

    risky_call()  # repro: lint-ok[rule-id] reason the rule does not apply

or, for lines too long to share with a comment, on a standalone comment
line directly above the flagged line::

    # repro: lint-ok[rule-id] reason the rule does not apply
    risky_call()

The rule id must name the rule being silenced and the reason is
mandatory: a suppression without one is inert and is itself reported
(rule id ``bad-suppression``), so "silenced because somebody said so"
never survives review.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the lint run (nonzero exit); ``WARNING``
    findings are reported but do not affect the exit status.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # noqa: D105 - enum display form
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: id of the rule that produced the finding (e.g. ``no-unseeded-rng``)
    rule_id: str
    severity: Severity
    #: path of the offending file, as given on the command line
    path: str
    #: 1-based line number
    line: int
    #: 0-based column offset
    col: int
    message: str
    #: dotted module name (``repro.radio.engine``), when derivable
    module: str = ""

    def format(self) -> str:
        """The canonical one-line text rendering."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule_id}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "module": self.module,
        }


#: Matches ``# repro: lint-ok[rule-id] reason...`` anywhere in a line.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_.-]+)\]\s*(.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    #: rule id being silenced
    rule_id: str
    #: 1-based line the comment sits on
    line: int
    #: justification text after the bracket (may be empty = malformed)
    reason: str
    #: True when the comment is alone on its line (then it covers the
    #: *next* line instead of its own)
    standalone: bool

    @property
    def target_line(self) -> int:
        """The line whose findings this suppression covers."""
        return self.line + 1 if self.standalone else self.line

    def covers(
        self, finding: Finding, anchor_line: Optional[int] = None
    ) -> bool:
        """Whether this suppression silences ``finding``.

        ``anchor_line`` is the first line of the statement the finding
        sits in (see :meth:`~repro.lint.sources.SourceModule.
        statement_anchor`): a suppression on (or above) a multi-line
        statement's first line covers findings reported anywhere inside
        that statement.
        """
        if not self.reason or finding.rule_id != self.rule_id:
            return False
        if finding.line == self.target_line:
            return True
        return anchor_line is not None and anchor_line == self.target_line


def scan_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract every suppression comment from a file's source lines."""
    out: List[Suppression] = []
    for i, text in enumerate(lines, start=1):
        m = SUPPRESSION_RE.search(text)
        if not m:
            continue
        standalone = text[: m.start()].strip() == ""
        out.append(
            Suppression(
                rule_id=m.group(1),
                line=i,
                reason=m.group(2).strip(),
                standalone=standalone,
            )
        )
    return out
