"""Source discovery and parsing for the linter.

The linter works on files, not imported modules: it must be able to
check code that would fail at import time, and it must see suppression
comments, which imports discard.  Each checked file becomes a
:class:`SourceModule` carrying its path, its derived dotted module name,
its raw lines, and its parsed AST.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SourceModule:
    """One parsed source file under analysis."""

    #: path as given (kept for reporting)
    path: str
    #: dotted module name derived from the package layout
    #: (``repro.radio.engine``); the bare stem when the file is not
    #: inside a package
    name: str
    #: raw source text
    source: str
    #: parsed module AST
    tree: ast.Module
    #: source split into lines (1-based addressing via ``lines[n - 1]``)
    lines: List[str] = field(default_factory=list)
    #: lazy line -> first-line-of-innermost-statement map (see
    #: :meth:`statement_anchor`)
    _anchors: Optional[Dict[int, int]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:  # noqa: D105 - dataclass hook
        if not self.lines:
            self.lines = self.source.splitlines()

    def statement_anchor(self, line: int) -> int:
        """First line of the innermost statement covering ``line``.

        A suppression comment anchors to the line a *statement* starts
        on, but a rule may report a node several lines into a multi-line
        statement (a call argument on line 3 of a wrapped call).  This
        maps any line of the statement back to its first line so the
        suppression still applies.  Lines outside any statement map to
        themselves.
        """
        if self._anchors is None:
            anchors: Dict[int, int] = {}
            # ast.walk is breadth-first: parents are visited before
            # their children, so the innermost statement wins each line
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                end = getattr(node, "end_lineno", None) or node.lineno
                for n in range(node.lineno, end + 1):
                    anchors[n] = node.lineno
            self._anchors = anchors
        return self._anchors.get(line, line)


@dataclass(frozen=True)
class ParseFailure:
    """A file the linter could not parse (reported, exit status 2)."""

    path: str
    line: int
    message: str


def module_name_for(path: str) -> str:
    """Derive the dotted module name of a file from its package layout.

    Walks up from the file while each parent directory contains an
    ``__init__.py``, mirroring how the import system would name the
    module.  Files outside any package get their bare stem.
    """
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def discover_py_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files.

    Directories are walked recursively; hidden directories and
    ``*.egg-info`` trees are skipped.  Raises :class:`FileNotFoundError`
    for a path that does not exist (a CLI usage error, not a finding).
    """
    out: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and not d.endswith(".egg-info")
                )
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        out.append(os.path.join(dirpath, fn))
        else:
            raise FileNotFoundError(f"no such file or directory: {p!r}")
    return out


def load_modules(
    files: Sequence[str],
) -> Tuple[List[SourceModule], List[ParseFailure]]:
    """Parse every file, splitting parse failures out of the results."""
    modules: List[SourceModule] = []
    failures: List[ParseFailure] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            failures.append(ParseFailure(path, line, str(exc)))
            continue
        except OSError as exc:
            failures.append(ParseFailure(path, 0, str(exc)))
            continue
        modules.append(
            SourceModule(
                path=path,
                name=module_name_for(path),
                source=source,
                tree=tree,
            )
        )
    return modules, failures


class LintContext:
    """Everything the rules may look at: all modules under analysis.

    Project-scoped rules (registry conformance) use :meth:`get` to find
    sibling modules; module-scoped rules receive one module at a time.
    """

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: List[SourceModule] = list(modules)
        self._by_name: Dict[str, SourceModule] = {
            m.name: m for m in self.modules
        }
        self._project = None

    def get(self, name: str) -> Optional[SourceModule]:
        """The module with dotted name ``name``, if under analysis."""
        return self._by_name.get(name)

    @property
    def project(self):
        """The whole-program :class:`~repro.lint.analysis.project.
        ProjectModel`, built on first use and shared by all deep rules
        in the run."""
        if self._project is None:
            from repro.lint.analysis.project import ProjectModel

            self._project = ProjectModel(self)
        return self._project

    def get_by_path(self, path: str) -> Optional[SourceModule]:
        """The module loaded from ``path``, if under analysis."""
        for m in self.modules:
            if m.path == path:
                return m
        return None
