"""Finding baselines: ratchet deep-lint adoption without a flag day.

A baseline file records the fingerprints of known, triaged findings so
CI can gate on *new* findings immediately while the backlog is burned
down.  The fingerprint deliberately hashes ``rule | module | message``
-- not line numbers -- so unrelated edits that shift a finding a few
lines do not resurrect it, while any change to what the finding *says*
(a different field, a different call path) registers as new.

Workflow::

    repro lint --deep --baseline lint-baseline.json             # gate
    repro lint --deep --baseline lint-baseline.json \\
        --write-baseline                                        # accept

The file is JSON, versioned, sorted, and newline-terminated so diffs
review cleanly.  An entry whose finding no longer fires is *dropped* on
rewrite: baselines only shrink unless someone consciously accepts new
debt in review.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Set

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.runner import LintReport

#: current baseline file schema version
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across line-number churn."""
    basis = f"{finding.rule_id}|{finding.module}|{finding.message}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]


def load_baseline(path: str) -> Set[str]:
    """The fingerprint set from a baseline file.

    Raises :class:`FileNotFoundError` for a missing file and
    :class:`ValueError` for an unrecognized shape -- both usage errors
    (exit status 2 at the CLI), never silently an empty baseline.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != (
        BASELINE_VERSION
    ):
        raise ValueError(
            f"unrecognized baseline file {path!r}: expected "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}'
        )
    out: Set[str] = set()
    for entry in data.get("findings", []):
        fp = entry.get("fingerprint") if isinstance(entry, dict) else None
        if not isinstance(fp, str):
            raise ValueError(
                f"baseline entry without a fingerprint in {path!r}"
            )
        out.add(fp)
    return out


def write_baseline(path: str, report: "LintReport") -> int:
    """Write the baseline for ``report``; returns the entry count.

    Covers every finding still firing -- both the currently-baselined
    ones and the new ones being accepted -- so rewriting drops stale
    entries automatically.
    """
    entries: List[Dict[str, str]] = []
    seen: Set[str] = set()
    for finding in list(report.findings) + list(report.baselined):
        fp = fingerprint(finding)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule_id,
                "module": finding.module,
                "message": finding.message,
            }
        )
    entries.sort(key=lambda e: (e["rule"], e["module"], e["fingerprint"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)
