"""Render a lint report as text (for humans) or JSON (for tooling).

The JSON shape is stable and consumed by CI (the workflow uploads it as
a build artifact): a top-level object with ``summary``, ``findings``,
``suppressed`` and ``parse_failures`` keys, every finding in the
:meth:`~repro.lint.findings.Finding.to_dict` shape.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.runner import LintReport


def format_text(report: "LintReport") -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = []
    for failure in report.parse_failures:
        lines.append(
            f"{failure.path}:{failure.line}:0: "
            f"error[parse-error] {failure.message}"
        )
    for finding in report.findings:
        lines.append(finding.format())
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.suppressed)} suppressed"
    )
    if report.parse_failures:
        summary += f", {len(report.parse_failures)} unparseable"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: "LintReport") -> str:
    """Machine-readable rendering (see module docstring for the shape)."""
    payload = {
        "summary": {
            "files_checked": report.files_checked,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "suppressed": len(report.suppressed),
            "parse_failures": len(report.parse_failures),
            "rules": report.rule_ids,
            "clean": report.exit_code == 0,
        },
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [
            {
                "finding": f.to_dict(),
                "suppressed_at_line": s.line,
                "reason": s.reason,
            }
            for f, s in report.suppressed
        ],
        "parse_failures": [
            {"path": p.path, "line": p.line, "message": p.message}
            for p in report.parse_failures
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
