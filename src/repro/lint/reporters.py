"""Render a lint report as text (for humans) or JSON (for tooling).

The JSON shape is stable and consumed by CI (the workflow uploads it as
a build artifact): a top-level object with ``summary``, ``findings``,
``suppressed`` and ``parse_failures`` keys, every finding in the
:meth:`~repro.lint.findings.Finding.to_dict` shape.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.runner import LintReport


def format_text(report: "LintReport") -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = []
    for failure in report.parse_failures:
        lines.append(
            f"{failure.path}:{failure.line}:0: "
            f"error[parse-error] {failure.message}"
        )
    for finding in report.findings:
        lines.append(finding.format())
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.suppressed)} suppressed"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    if report.parse_failures:
        summary += f", {len(report.parse_failures)} unparseable"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: "LintReport") -> str:
    """Machine-readable rendering (see module docstring for the shape)."""
    payload = {
        "summary": {
            "files_checked": report.files_checked,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "parse_failures": len(report.parse_failures),
            "rules": report.rule_ids,
            "clean": report.exit_code == 0,
        },
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": [
            {
                "finding": f.to_dict(),
                "suppressed_at_line": s.line,
                "reason": s.reason,
            }
            for f, s in report.suppressed
        ],
        "parse_failures": [
            {"path": p.path, "line": p.line, "message": p.message}
            for p in report.parse_failures
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding, baselined: bool) -> dict:
    from repro.lint.baseline import fingerprint

    result = {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": fingerprint(finding)},
    }
    if baselined:
        result["baselineState"] = "unchanged"
    return result


def format_sarif(report: "LintReport") -> str:
    """SARIF 2.1.0 rendering, for code-scanning UIs and CI annotation.

    Minimal but valid: one run, one driver, per-rule metadata, one
    result per finding (baselined findings included with
    ``baselineState: unchanged`` so dashboards can show known debt
    without failing on it).  Parse failures surface as tool
    ``notifications`` -- they are about the *run*, not the code model.
    """
    from repro.lint.rules import get_rules

    try:
        rules_meta = [
            {
                "id": r.rule_id,
                "shortDescription": {"text": r.description},
                "defaultConfiguration": {"level": r.severity.value},
            }
            for r in get_rules(report.rule_ids or None, include_deep=True)
        ]
    except KeyError:  # pragma: no cover - report from a foreign registry
        rules_meta = []
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/bhandari-vaidya-repro"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": [
                    _sarif_result(f, baselined=False)
                    for f in report.findings
                ]
                + [
                    _sarif_result(f, baselined=True)
                    for f in report.baselined
                ],
                "invocations": [
                    {
                        "executionSuccessful": not report.parse_failures,
                        "toolExecutionNotifications": [
                            {
                                "level": "error",
                                "message": {
                                    "text": (
                                        f"{p.path}:{p.line}: {p.message}"
                                    )
                                },
                            }
                            for p in report.parse_failures
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
