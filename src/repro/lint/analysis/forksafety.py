"""``fork-safety``: worker-submitted closures must not touch shared
state.

The sweep tier fans work units out to workers in other processes -- a
forked ``multiprocessing`` pool, or remote hosts reached over the
socket backend's pickle wire.  Either way the worker sees a *snapshot*
of module state (fork copy or fresh import); anything the submitted
closure mutates -- or reads from a module-level mutable that the parent
may have mutated -- silently diverges between serial (``workers=1``)
and parallel/remote runs, breaking the executor's byte-identical
contract.

The pass finds every function submitted across a process boundary:

- the first argument of ``pool.map`` / ``imap`` / ``apply_async`` /
  ... on a variable bound from a ``...Pool(...)`` call (the literal
  multiprocessing idiom), and
- the first argument of **any** ``.run_units(fn, payloads)`` call --
  the :class:`~repro.exec.backends.base.ExecutionBackend` protocol
  method, regardless of receiver, so a unit function handed to the
  campaign manager is covered no matter which backend (pool, socket,
  a future one) ends up shipping it

and walks its call closure for:

1. **mutable default arguments** -- shared across calls *within* one
   worker but reset per fork: results depend on the chunk-to-worker
   assignment;
2. **``global`` rebinding** of a module-level name;
3. **in-place mutation** of module-level state (mutating method calls,
   subscript stores, ``del``, augmented assignment);
4. **reads of public module-level mutable registries** (``UPPER_CASE``
   dict/list/set literals): these work today only because nobody
   mutates them -- freeze them (``types.MappingProxyType``, ``tuple``,
   ``frozenset``) so the invariant is structural, not social.

Private underscore names and ``__all__`` are out of scope for check 4
(they are module-internal by convention); checks 1-3 apply everywhere
in the closure.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.analysis.project import (
    FunctionInfo,
    ModuleBinding,
    ProjectModel,
    _head_name,
    _value_mutability,
)
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register
from repro.lint.sources import LintContext

#: pool methods whose first argument is a function shipped to workers
_SUBMIT_METHODS = {
    "map", "imap", "imap_unordered", "starmap", "apply", "apply_async",
    "map_async", "starmap_async", "submit",
}

#: ExecutionBackend methods whose first argument is a function shipped
#: to workers -- matched on *any* receiver, because backends are passed
#: around as parameters/attributes and rarely constructed in scope
_BACKEND_SUBMIT_METHODS = {"run_units"}

#: method names that mutate their receiver in place (the model-rule set
#: plus container extras)
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "extendleft",
}


def _bound_names(target: ast.AST, out: Set[str]) -> None:
    """Names a binding target actually binds.

    ``x, (y, *z) = ...`` binds x/y/z; ``d[k] = ...`` and ``o.a = ...``
    bind *nothing* (they mutate an existing object), so recursion stops
    at Subscript/Attribute -- treating those as local bindings would
    hide real module-state mutations behind the shadowing guard.
    """
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bound_names(elt, out)
    elif isinstance(target, ast.Starred):
        _bound_names(target.value, out)


def _local_names(fn: FunctionInfo) -> Set[str]:
    """Names bound locally in ``fn`` (params, assignments, loops, ...)."""
    out: Set[str] = set(fn.params)
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for tgt in targets:
                _bound_names(tgt, out)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _bound_names(node.target, out)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                _bound_names(node.optional_vars, out)
        elif isinstance(node, ast.comprehension):
            _bound_names(node.target, out)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
    # names declared global are *not* local -- mutations must be seen
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            out.difference_update(node.names)
    return out


def _binding_for(
    model: ProjectModel, fn: FunctionInfo, node: ast.AST, locals_: Set[str]
) -> "ModuleBinding | None":
    """Module binding a Name/Attribute chain refers to, if any."""
    root = node
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        root = root.value
    if isinstance(root, ast.Name) and root.id in locals_:
        return None
    if isinstance(node, ast.Name):
        qn = model.resolve_symbol(fn.module.name, node.id)
    elif isinstance(node, (ast.Attribute,)):
        qn = model.resolve_dotted(fn.module.name, node)
    else:
        return None
    return model.bindings.get(qn) if qn else None


def _record_submitted(
    model: ProjectModel,
    fn: FunctionInfo,
    call: ast.Call,
    seen: Set[str],
    entries: List[FunctionInfo],
) -> None:
    """Resolve a submission call's first argument to a module function
    and record it as an entry (once)."""
    if not call.args or not isinstance(call.args[0], ast.Name):
        return
    qn = model.resolve_symbol(fn.module.name, call.args[0].id)
    target = model.functions.get(qn) if qn else None
    if target is not None and target.qualname not in seen:
        seen.add(target.qualname)
        entries.append(target)


def pool_entry_functions(model: ProjectModel) -> List[FunctionInfo]:
    """Every function shipped across a process boundary: passed to a
    multiprocessing pool, or submitted through any ExecutionBackend's
    ``run_units``."""
    entries: List[FunctionInfo] = []
    seen: Set[str] = set()
    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        pool_vars: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.withitem):
                call = node.context_expr
                if (
                    isinstance(call, ast.Call)
                    and _head_name(call.func).endswith("Pool")
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    pool_vars.add(node.optional_vars.id)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if _head_name(node.value.func).endswith("Pool"):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            pool_vars.add(tgt.id)
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            # backend protocol submissions: any receiver -- backends
            # travel as parameters and attributes, so requiring a
            # resolvable constructor would miss every real site
            if node.func.attr in _BACKEND_SUBMIT_METHODS:
                _record_submitted(model, fn, node, seen, entries)
            # literal multiprocessing submissions: only on variables
            # bound from a ...Pool(...) call (method names like 'map'
            # are far too common to match bare)
            elif (
                node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_vars
            ):
                _record_submitted(model, fn, node, seen, entries)
    return entries


@register
class ForkSafetyRule(Rule):
    """Flag shared-state hazards in pool-submitted call closures."""

    rule_id = "fork-safety"
    deep = True
    description = (
        "functions shipped to the multiprocessing pool must not carry "
        "mutable defaults, rebind globals, mutate module state, or "
        "read unfrozen module-level mutable registries"
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the fork-safety pass over the whole lint context."""
        model = ctx.project
        seen: Set[Tuple[str, int, int, str]] = set()
        for entry in pool_entry_functions(model):
            parents = model.reachable_from([entry.qualname])
            for qualname in sorted(parents):
                fn = model.functions.get(qualname)
                if fn is None:
                    continue
                for f in self._check_function(model, fn, entry):
                    key = (f.path, f.line, f.col, f.message)
                    if key not in seen:
                        seen.add(key)
                        yield f

    def _check_function(
        self, model: ProjectModel, fn: FunctionInfo, entry: FunctionInfo
    ) -> Iterator[Finding]:
        where = (
            f"'{fn.qualname}' (in the pool-submitted closure of "
            f"'{entry.qualname}')"
        )
        args = fn.node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable, kind = _value_mutability(default)
            if mutable:
                yield self.finding(
                    fn.module,
                    default,
                    f"mutable default argument ({kind}) on {where}; "
                    "worker results depend on call history -- default "
                    "to None and build inside",
                )
        global_names: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        locals_ = _local_names(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Name)
                        and tgt.id in global_names
                    ):
                        yield self.finding(
                            fn.module,
                            node,
                            f"rebinds global '{tgt.id}' in {where}; "
                            "worker-local rebinding diverges from the "
                            "parent process",
                        )
                    elif isinstance(tgt, (ast.Subscript, ast.Attribute)):
                        binding = _binding_for(
                            model, fn, tgt.value, locals_
                        )
                        if binding is not None:
                            yield self.finding(
                                fn.module,
                                node,
                                f"mutates module-level "
                                f"'{binding.qualname}' in {where}; "
                                "forked workers never see each "
                                "other's writes",
                            )
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript):
                        binding = _binding_for(
                            model, fn, tgt.value, locals_
                        )
                        if binding is not None:
                            yield self.finding(
                                fn.module,
                                node,
                                f"deletes from module-level "
                                f"'{binding.qualname}' in {where}",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATING_METHODS:
                    binding = _binding_for(
                        model, fn, node.func.value, locals_
                    )
                    if binding is not None and binding.mutable:
                        yield self.finding(
                            fn.module,
                            node,
                            f"calls mutating '.{node.func.attr}()' on "
                            f"module-level '{binding.qualname}' in "
                            f"{where}",
                        )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                binding = _binding_for(model, fn, node, locals_)
                yield from self._registry_read(fn, where, node, binding)

    def _registry_read(
        self,
        fn: FunctionInfo,
        where: str,
        node: ast.AST,
        binding: "ModuleBinding | None",
    ) -> Iterator[Finding]:
        if binding is None or not binding.mutable:
            return
        name = binding.name
        if name.startswith("_") or name == "__all__" or not name.isupper():
            return
        yield self.finding(
            fn.module,
            node,
            f"reads module-level mutable registry '{binding.qualname}' "
            f"({binding.kind}) in {where}; freeze it with "
            "types.MappingProxyType / tuple / frozenset so a parent-"
            "process mutation can never diverge from the fork snapshot",
        )
