"""``cache-key-soundness``: every spec field read must be in the key.

The sweep cache (:mod:`repro.exec.cache`) reuses work-unit rows keyed by
``unit_cache_key`` -- which is built from
:meth:`repro.exec.specs.ScenarioSpec.key_payload`.  If any code reachable
from :func:`~repro.exec.specs.run_trial` reads a ``ScenarioSpec`` field
that is *not* part of that key, two specs differing only in that field
hash identically and one silently serves the other's cached rows: stale
results masquerading as ground truth.

This pass proves the complement statically:

1. recover the field list from the ``ScenarioSpec`` class body;
2. recover the *key field* set from ``key_payload``'s exclusion tuple
   (``f.name not in (...)``) and its explicit ``payload["..."] = ...``
   re-adds;
3. recover the sanctioned exemptions from the module-level
   ``KEY_EXEMPT_FIELDS`` dict (field -> reason, reason mandatory);
4. collect every ``<spec>.field`` attribute read in the call closure of
   ``run_trial`` (receivers typed ``ScenarioSpec`` via annotations or
   inference; the spec's own methods are exempt -- they *define* the
   key) and flag any read outside ``key fields | exemptions``.

Exemption hygiene is checked too: an exempt entry that names an unknown
field, an already-keyed field, or carries no reason is reported as a
warning anchored at the table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.analysis.project import FunctionInfo, ProjectModel
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register
from repro.lint.sources import LintContext

#: name of the spec class whose fields feed the cache key
SPEC_CLASS = "ScenarioSpec"
#: module suffix where the spec class and key live
SPEC_MODULE_SUFFIX = "exec.specs"
#: name of the module-level exemption table (field -> reason)
EXEMPT_TABLE = "KEY_EXEMPT_FIELDS"


def _spec_module(model: ProjectModel) -> Optional[str]:
    for name in sorted(model.tables):
        if name == SPEC_MODULE_SUFFIX or name.endswith(
            "." + SPEC_MODULE_SUFFIX
        ):
            return name
    return None


def _spec_fields(cls_node: ast.ClassDef) -> List[str]:
    """Dataclass field names from the class body, in declaration order."""
    out: List[str] = []
    for stmt in cls_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            ann = stmt.annotation
            head = ""
            if isinstance(ann, ast.Subscript):
                head = getattr(ann.value, "id", "") or getattr(
                    ann.value, "attr", ""
                )
            if head == "ClassVar":
                continue
            out.append(stmt.target.id)
    return out


def _key_fields(
    fields: List[str], key_payload: ast.AST
) -> Tuple[Set[str], bool]:
    """``(key fields, recognized)`` from the ``key_payload`` body.

    Recognizes the canonical shape: a comprehension filtering
    ``f.name not in (<str>, ...)`` plus explicit
    ``payload["name"] = ...`` re-adds.  ``recognized`` is False when no
    exclusion filter was found (then the pass assumes *all* fields are
    keyed rather than guessing).
    """
    excluded: Set[str] = set()
    readded: Set[str] = set()
    recognized = False
    for node in ast.walk(key_payload):
        if isinstance(node, ast.Compare) and len(node.ops) == 1 and (
            isinstance(node.ops[0], ast.NotIn)
        ):
            comp = node.comparators[0]
            if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                names = [
                    e.value
                    for e in comp.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                ]
                if names:
                    recognized = True
                    excluded.update(names)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.slice, ast.Constant)
                    and isinstance(tgt.slice.value, str)
                ):
                    readded.add(tgt.slice.value)
    if not recognized:
        return set(fields), False
    return (set(fields) - excluded) | (readded & set(fields)), True


def _exempt_entries(
    model: ProjectModel, spec_module: str
) -> Tuple[Dict[str, str], Optional[ast.AST]]:
    """Parse the ``KEY_EXEMPT_FIELDS`` literal: field -> reason."""
    binding = model.bindings.get(f"{spec_module}.{EXEMPT_TABLE}")
    if binding is None:
        return {}, None
    value = binding.value
    if isinstance(value, ast.Call) and value.args:
        value = value.args[0]  # unwrap MappingProxyType({...})
    entries: Dict[str, str] = {}
    if isinstance(value, ast.Dict):
        for k, v in zip(value.keys, value.values):
            if isinstance(k, ast.Constant) and isinstance(k.value, str):
                reason = (
                    v.value
                    if isinstance(v, ast.Constant)
                    and isinstance(v.value, str)
                    else ""
                )
                entries[k.value] = reason
    return entries, binding.value


@register
class CacheKeySoundnessRule(Rule):
    """Prove every reachable ``ScenarioSpec`` read is key-covered."""

    rule_id = "cache-key-soundness"
    deep = True
    description = (
        "every ScenarioSpec field read reachable from run_trial must be "
        "in scenario_key()/key_payload or listed in KEY_EXEMPT_FIELDS"
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the cache-key pass over the whole lint context."""
        model = ctx.project
        spec_module = _spec_module(model)
        if spec_module is None:
            return
        spec_cls = model.classes.get(f"{spec_module}.{SPEC_CLASS}")
        if spec_cls is None:
            return
        run_trial = model.functions.get(f"{spec_module}.run_trial")
        if run_trial is None:
            return
        fields = _spec_fields(spec_cls.node)
        key_payload = spec_cls.methods.get("key_payload")
        if key_payload is None:
            yield self.finding(
                spec_cls.module,
                spec_cls.node,
                f"{SPEC_CLASS} has no key_payload() method; the cache "
                "key cannot be audited",
            )
            return
        key_fields, _ = _key_fields(fields, key_payload.node)
        exempt, table_node = _exempt_entries(model, spec_module)

        yield from self._check_exemptions(
            spec_cls, fields, key_fields, exempt, table_node
        )
        yield from self._check_reads(
            model, spec_cls.qualname, run_trial, fields, key_fields,
            set(exempt),
        )

    def _check_exemptions(
        self,
        spec_cls,
        fields: List[str],
        key_fields: Set[str],
        exempt: Dict[str, str],
        table_node: Optional[ast.AST],
    ) -> Iterator[Finding]:
        anchor = table_node if table_node is not None else spec_cls.node
        for name in sorted(exempt):
            problem = None
            if name not in fields:
                problem = f"names unknown field {name!r}"
            elif name in key_fields:
                problem = (
                    f"names field {name!r} which is already part of the "
                    "key (remove the stale entry)"
                )
            elif not exempt[name].strip():
                problem = f"entry for {name!r} has no reason"
            if problem:
                f = self.finding(
                    spec_cls.module,
                    anchor,
                    f"{EXEMPT_TABLE} {problem}",
                )
                yield Finding(
                    rule_id=f.rule_id,
                    severity=Severity.WARNING,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    module=f.module,
                )

    def _check_reads(
        self,
        model: ProjectModel,
        spec_qualname: str,
        run_trial: FunctionInfo,
        fields: List[str],
        key_fields: Set[str],
        exempt: Set[str],
    ) -> Iterator[Finding]:
        field_set = set(fields)
        covered = key_fields | exempt
        parents = model.reachable_from([run_trial.qualname])
        seen: Set[Tuple[str, int, int, str]] = set()
        for qualname in sorted(parents):
            fn = model.functions.get(qualname)
            if fn is None or fn.cls == spec_qualname:
                continue
            env = model.local_env(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr not in field_set or node.attr in covered:
                    continue
                base_t = model.expr_type(fn, env, node.value)
                if base_t is None or base_t.cls != spec_qualname:
                    continue
                key = (
                    fn.module.name,
                    node.lineno,
                    node.col_offset,
                    node.attr,
                )
                if key in seen:
                    continue
                seen.add(key)
                chain = " -> ".join(
                    model.call_chain(parents, qualname)
                )
                yield self.finding(
                    fn.module,
                    node,
                    f"ScenarioSpec.{node.attr} is read here (reachable "
                    f"from run_trial via {chain}) but is not part of "
                    "key_payload() and not listed in "
                    f"{EXEMPT_TABLE}; cached rows could be reused "
                    f"across specs differing in {node.attr!r}",
                )
