"""Whole-program analysis layer for the deep lint passes.

The per-file rules in :mod:`repro.lint` check what a single AST can
prove.  The determinism contract of :mod:`repro.exec` is a *whole
program* property: a nondeterministic draw three calls upstream of
:func:`repro.exec.specs.run_trial` corrupts cached sweep rows exactly as
badly as one inside it.  This subpackage supplies the missing layer:

- :mod:`repro.lint.analysis.project` -- the :class:`ProjectModel`:
  per-module symbol tables, an import graph with re-export chasing, a
  call graph with class-method resolution (CHA over project subclasses),
  and interprocedural set-valuedness propagation;
- :mod:`repro.lint.analysis.taint` -- the ``nondet-taint`` pass;
- :mod:`repro.lint.analysis.cachekey` -- the ``cache-key-soundness``
  pass;
- :mod:`repro.lint.analysis.forksafety` -- the ``fork-safety`` pass.

The passes are registered like any other rule but carry
``deep = True``: they only run under ``repro lint --deep`` (or when
selected explicitly with ``--rules``), because building the project
model over a large tree costs real time and the per-file rules should
stay instant.
"""

from repro.lint.analysis.project import (
    CallEdge,
    ClassInfo,
    FunctionInfo,
    ModuleBinding,
    ModuleTable,
    ProjectModel,
    TypeRef,
)

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleBinding",
    "ModuleTable",
    "ProjectModel",
    "TypeRef",
]
