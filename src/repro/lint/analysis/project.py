"""The project model: symbol tables, import graph, call graph, types.

Everything the deep passes know about the program lives here, computed
once per lint run from the parsed :class:`~repro.lint.sources.
SourceModule` list (no imports are executed -- this is still a static
tool that must survive unimportable code).

The model is deliberately a *linter's* model, not a compiler's:

- types are a three-field lattice (:class:`TypeRef`: project class,
  container kind, element type) -- enough to resolve ``self.processes[
  nb].on_receive(...)`` through a ``Mapping[Coord, NodeProcess]``
  annotation, and to know that ``sorted(faulty)`` is no longer a set;
- method calls resolve through the static receiver type *and* every
  project subclass override (class-hierarchy analysis), because the
  engine dispatches protocol behavior virtually;
- ``from repro.exec import derive_seed`` chases the re-export chain to
  the defining module, so barrier/sink matching works on canonical
  qualified names;
- set-valuedness flows interprocedurally: a call site passing a set
  into an ``Iterable`` (or unannotated) parameter marks that parameter
  set-valued, to a fixpoint, so iteration-order hazards surface in the
  callee where they actually bite.

Unresolved *project-internal* imports are recorded in
:attr:`ProjectModel.warnings`; the self-check test pins that list empty
over ``src/repro`` so the model provably covers the tree it gates.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.sources import LintContext, SourceModule

#: annotation heads meaning "this is a set"
_SET_HEADS = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet",
              "MutableSet"}
#: annotation heads meaning "this is a mapping"
_DICT_HEADS = {"dict", "Dict", "Mapping", "MutableMapping", "DefaultDict",
               "OrderedDict", "Counter"}
#: annotation heads with a guaranteed iteration order
_SEQ_HEADS = {"list", "List", "Sequence", "MutableSequence", "tuple",
              "Tuple", "Deque", "deque"}
#: annotation heads that promise only iterability -- a set passed here
#: is still iterated in set order, so set-ness may flow in
_ITER_HEADS = {"Iterable", "Iterator", "Collection", "Container",
               "Generator", "Reversible"}
#: transparent annotation wrappers to unwrap
_WRAPPER_HEADS = {"Optional", "Final", "ClassVar", "Annotated", "Union"}


@dataclass(frozen=True)
class TypeRef:
    """A linter-grade type: project class and/or container shape.

    ``cls`` is the fully qualified name of a project class when the
    value is (an instance of) one.  ``container`` is one of ``"set"``,
    ``"dict"``, ``"seq"``, ``"iter"`` or ``None``; ``elem`` is the
    element type for sets/sequences and the *value* type for dicts.
    """

    cls: Optional[str] = None
    container: Optional[str] = None
    elem: Optional["TypeRef"] = None

    @property
    def is_set(self) -> bool:
        """Whether iterating this value visits elements in set order."""
        return self.container == "set"


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    name: str
    #: ``module.func`` or ``module.Class.func``
    qualname: str
    module: SourceModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: owning class qualname for methods, else ``None``
    cls: Optional[str] = None
    params: List[str] = field(default_factory=list)
    param_types: Dict[str, TypeRef] = field(default_factory=dict)
    returns: Optional[TypeRef] = None
    #: parameters proven set-valued at some call site (interprocedural)
    set_params: Set[str] = field(default_factory=set)
    decorators: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        """Whether this function is defined inside a class body."""
        return self.cls is not None


@dataclass
class ClassInfo:
    """One project class: bases, methods, attribute types."""

    name: str
    qualname: str
    module: SourceModule
    node: ast.ClassDef
    #: resolved base-class qualnames (project classes only)
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: instance-attribute types harvested from ``__init__`` assignments,
    #: annotated class-body fields, and property return annotations
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    #: direct project subclasses (qualnames), filled by the model
    subclasses: List[str] = field(default_factory=list)


@dataclass
class ModuleBinding:
    """One module-level name binding (``X = <expr>``)."""

    name: str
    qualname: str
    module: SourceModule
    #: the bound value expression
    value: ast.AST
    lineno: int
    #: whether the bound value is a mutable container by construction
    mutable: bool = False
    #: short description of the value kind (for messages)
    kind: str = ""


@dataclass(frozen=True)
class CallEdge:
    """One resolved call-graph edge."""

    caller: str
    callee: str
    #: the call expression at the call site
    node: ast.Call
    lineno: int


@dataclass
class ModuleTable:
    """Per-module symbol table."""

    module: SourceModule
    #: local name -> qualified target (module, or ``module.symbol``)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    bindings: Dict[str, ModuleBinding] = field(default_factory=dict)


_MUTABLE_DISPLAYS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)
_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "deque",
                  "OrderedDict", "Counter"}
#: calls producing an immutable view/copy -- the sanctioned freezers
_FREEZER_CALLS = {"MappingProxyType", "frozenset", "tuple"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _head_name(node: ast.AST) -> str:
    """Trailing identifier of a Name/Attribute (``typing.Set`` -> Set)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _value_mutability(value: ast.AST) -> Tuple[bool, str]:
    """``(mutable, kind)`` judgment for a module-level bound value."""
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return True, "dict literal"
    if isinstance(value, (ast.List, ast.ListComp)):
        return True, "list literal"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True, "set literal"
    if isinstance(value, ast.Call):
        head = _head_name(value.func)
        if head in _MUTABLE_CALLS:
            return True, f"{head}() call"
        if head in _FREEZER_CALLS:
            return False, f"{head}() view"
    return False, type(value).__name__


class ProjectModel:
    """Whole-program facts over one :class:`LintContext`.

    Construction is pure analysis over already-parsed ASTs: build the
    symbol tables, resolve imports (chasing re-exports), resolve class
    bases and subclass lists, harvest attribute/parameter/return types,
    build the call graph, then propagate set-valuedness to a fixpoint.
    """

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.tables: Dict[str, ModuleTable] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.bindings: Dict[str, ModuleBinding] = {}
        #: caller qualname -> outgoing edges (call-site order)
        self.calls: Dict[str, List[CallEdge]] = {}
        #: unresolved project-internal imports (should be empty on a
        #: healthy tree; pinned by the self-check test)
        self.warnings: List[str] = []
        self._chase_cache: Dict[str, Optional[str]] = {}
        self._roots = {m.name.split(".")[0] for m in ctx.modules}

        for module in ctx.modules:
            self._build_table(module)
        # types resolve only after *every* table exists: resolving an
        # annotation mid-build would cache negative import chases
        self._resolve_types()
        for table in self.tables.values():
            self._resolve_class_hierarchy(table)
        for table in self.tables.values():
            self._harvest_attr_types(table)
        self._build_call_graph()
        self._propagate_set_params()

    # -- symbol tables ------------------------------------------------------

    def _build_table(self, module: SourceModule) -> None:
        table = ModuleTable(module=module)
        self.tables[module.name] = table
        is_package = os.path.basename(module.path) == "__init__.py"
        # imports anywhere in the file (function-local lazy imports are
        # hoisted into the module scope -- unsound for shadowing, right
        # for resolution)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
                    table.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module.name, is_package, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, stmt, cls=None)
                table.functions[stmt.name] = info
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._class_table(module, table, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                for tgt in targets:
                    if not isinstance(tgt, ast.Name):
                        continue
                    mutable, kind = _value_mutability(value)
                    binding = ModuleBinding(
                        name=tgt.id,
                        qualname=f"{module.name}.{tgt.id}",
                        module=module,
                        value=value,
                        lineno=stmt.lineno,
                        mutable=mutable,
                        kind=kind,
                    )
                    table.bindings[tgt.id] = binding
                    self.bindings[binding.qualname] = binding

    def _import_base(
        self, module_name: str, is_package: bool, node: ast.ImportFrom
    ) -> Optional[str]:
        """The absolute package a ``from ... import`` pulls from."""
        if not node.level:
            return node.module or ""
        parts = module_name.split(".")
        if not is_package:
            parts = parts[:-1]
        strip = node.level - 1
        if strip:
            if strip >= len(parts):
                return None
            parts = parts[:-strip]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _class_table(
        self, module: SourceModule, table: ModuleTable, node: ast.ClassDef
    ) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            name=node.name, qualname=qualname, module=module, node=node
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(module, stmt, cls=qualname)
                info.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn
        table.classes[node.name] = info
        self.classes[qualname] = info

    def _function_info(
        self,
        module: SourceModule,
        node: ast.AST,
        cls: Optional[str],
    ) -> FunctionInfo:
        prefix = cls if cls else module.name
        info = FunctionInfo(
            name=node.name,
            qualname=f"{prefix}.{node.name}",
            module=module,
            node=node,
            cls=cls,
            decorators=[
                _head_name(d.func if isinstance(d, ast.Call) else d)
                for d in node.decorator_list
            ],
        )
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for a in all_args:
            info.params.append(a.arg)
        return info

    def _resolve_types(self) -> None:
        """Resolve parameter/return/class-field annotations (phase 2)."""
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            args = fn.node.args
            all_args = (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
            for a in all_args:
                if a.annotation is not None:
                    t = self.type_from_annotation(
                        fn.module.name, a.annotation
                    )
                    if t is not None:
                        fn.param_types[a.arg] = t
            if fn.node.returns is not None:
                fn.returns = self.type_from_annotation(
                    fn.module.name, fn.node.returns
                )
        for table in self.tables.values():
            for info in table.classes.values():
                for stmt in info.node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        t = self.type_from_annotation(
                            table.module.name, stmt.annotation
                        )
                        if t is not None:
                            info.attr_types[stmt.target.id] = t

    # -- name resolution ----------------------------------------------------

    def resolve_symbol(
        self, module_name: str, name: str
    ) -> Optional[str]:
        """Canonical qualname a bare ``name`` denotes in ``module_name``.

        Locals win over imports; imported names chase re-export chains
        to the defining module.  Returns ``None`` for names the model
        cannot see (builtins, external libraries, true unknowns).
        """
        table = self.tables.get(module_name)
        if table is None:
            return None
        if name in table.functions or name in table.classes or (
            name in table.bindings
        ):
            return f"{module_name}.{name}"
        if name in table.imports:
            return self._chase(table.imports[name])
        return None

    def resolve_dotted(
        self, module_name: str, node: ast.AST
    ) -> Optional[str]:
        """Resolve a Name/Attribute chain (``registry.make_protocol``)."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.resolve_symbol(module_name, head)
        if base is None:
            return None
        return self._chase(f"{base}.{rest}") if rest else base

    def _chase(self, target: str) -> Optional[str]:
        """Follow ``target`` through re-exports to a defining module."""
        if target in self._chase_cache:
            return self._chase_cache[target]
        self._chase_cache[target] = None  # cycle guard
        result = self._chase_uncached(target)
        self._chase_cache[target] = result
        return result

    def _chase_uncached(self, target: str) -> Optional[str]:
        if target in self.tables:
            return target
        head, _, last = target.rpartition(".")
        if not head:
            return target  # bare external name (e.g. ``random``)
        table = self.tables.get(head)
        if table is None:
            # external module, or a dotted path through one we cannot
            # see; resolve the head as far as possible
            if target.split(".")[0] in self._roots:
                resolved_head = self._chase(head)
                if resolved_head is not None and resolved_head != head:
                    return self._chase(f"{resolved_head}.{last}")
                if resolved_head in self.classes or (
                    resolved_head in self.bindings
                ):
                    # attribute of a known symbol (Class.method,
                    # REGISTRY.get, ...) -- resolved, not a dangling
                    # import
                    return f"{resolved_head}.{last}"
                self.warnings.append(
                    f"unresolved project-internal import target "
                    f"{target!r}"
                )
                return None
            return target
        if last in table.functions or last in table.classes or (
            last in table.bindings
        ):
            return target
        if last in table.imports:
            return self._chase(table.imports[last])
        if f"{head}.{last}" in self.tables:
            return f"{head}.{last}"
        self.warnings.append(
            f"'{last}' imported from project module '{head}' but not "
            "defined there"
        )
        return None

    # -- class hierarchy ----------------------------------------------------

    def _resolve_class_hierarchy(self, table: ModuleTable) -> None:
        for info in table.classes.values():
            for base in info.node.bases:
                qn = self.resolve_dotted(table.module.name, base)
                if qn is not None and qn in self.classes:
                    info.bases.append(qn)
        for info in table.classes.values():
            for base_qn in info.bases:
                self.classes[base_qn].subclasses.append(info.qualname)

    def mro(self, class_qualname: str) -> List[str]:
        """Approximate MRO: depth-first over project bases."""
        out: List[str] = []
        seen: Set[str] = set()

        def visit(qn: str) -> None:
            if qn in seen or qn not in self.classes:
                return
            seen.add(qn)
            out.append(qn)
            for b in self.classes[qn].bases:
                visit(b)

        visit(class_qualname)
        return out

    def all_subclasses(self, class_qualname: str) -> List[str]:
        """Transitive project subclasses of ``class_qualname``."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qn = stack.pop()
            info = self.classes.get(qn)
            if info is None:
                continue
            for sub in info.subclasses:
                if sub not in seen:
                    seen.add(sub)
                    out.append(sub)
                    stack.append(sub)
        return sorted(out)

    def lookup_method(
        self, class_qualname: str, name: str
    ) -> List[FunctionInfo]:
        """Possible targets of ``<instance of class>.name(...)``.

        The statically-typed target (first definition along the MRO)
        plus every subclass override -- class-hierarchy analysis, since
        the receiver may be any project subtype at runtime.
        """
        out: List[FunctionInfo] = []
        for qn in self.mro(class_qualname):
            m = self.classes[qn].methods.get(name)
            if m is not None:
                out.append(m)
                break
        for sub in self.all_subclasses(class_qualname):
            m = self.classes[sub].methods.get(name)
            if m is not None and m not in out:
                out.append(m)
        return out

    def attr_type(
        self, class_qualname: str, attr: str
    ) -> Optional[TypeRef]:
        """Instance-attribute type, searched along the MRO."""
        for qn in self.mro(class_qualname):
            t = self.classes[qn].attr_types.get(attr)
            if t is not None:
                return t
        return None

    def _harvest_attr_types(self, table: ModuleTable) -> None:
        """Fill :attr:`ClassInfo.attr_types` from ``__init__`` bodies and
        property return annotations (class-body ``AnnAssign`` fields were
        already harvested while building the table)."""
        for info in table.classes.values():
            for name, m in info.methods.items():
                if "property" in m.decorators and m.returns is not None:
                    info.attr_types.setdefault(name, m.returns)
            init = info.methods.get("__init__")
            if init is None:
                continue
            env = self.local_env(init)
            for node in ast.walk(init.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                    ann = None
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                    ann = node.annotation
                else:
                    continue
                for tgt in targets:
                    if not (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        continue
                    t = (
                        self.type_from_annotation(table.module.name, ann)
                        if ann is not None
                        else None
                    )
                    if t is None and value is not None:
                        t = self.expr_type(init, env, value)
                    if t is not None:
                        info.attr_types.setdefault(tgt.attr, t)

    # -- annotations --------------------------------------------------------

    def type_from_annotation(
        self, module_name: str, ann: ast.AST
    ) -> Optional[TypeRef]:
        """Interpret an annotation expression as a :class:`TypeRef`."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
            return self.type_from_annotation(module_name, ann)
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            # X | None -- take the non-None side
            for side in (ann.left, ann.right):
                if not (
                    isinstance(side, ast.Constant) and side.value is None
                ):
                    return self.type_from_annotation(module_name, side)
            return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            head = _head_name(ann)
            if head in _SET_HEADS:
                return TypeRef(container="set")
            if head in _DICT_HEADS:
                return TypeRef(container="dict")
            if head in _SEQ_HEADS:
                return TypeRef(container="seq")
            if head in _ITER_HEADS:
                return TypeRef(container="iter")
            qn = self.resolve_dotted(module_name, ann)
            if qn is not None and qn in self.classes:
                return TypeRef(cls=qn)
            return None
        if isinstance(ann, ast.Subscript):
            head = _head_name(ann.value)
            inner = ann.slice
            parts = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            if head in _WRAPPER_HEADS:
                for p in parts:
                    if isinstance(p, ast.Constant) and p.value is None:
                        continue
                    return self.type_from_annotation(module_name, p)
                return None
            if head in _SET_HEADS:
                return TypeRef(
                    container="set",
                    elem=self.type_from_annotation(module_name, parts[0]),
                )
            if head in _DICT_HEADS:
                value_t = (
                    self.type_from_annotation(module_name, parts[1])
                    if len(parts) > 1
                    else None
                )
                return TypeRef(container="dict", elem=value_t)
            if head in _SEQ_HEADS:
                return TypeRef(
                    container="seq",
                    elem=self.type_from_annotation(module_name, parts[0]),
                )
            if head in _ITER_HEADS:
                return TypeRef(
                    container="iter",
                    elem=self.type_from_annotation(module_name, parts[0]),
                )
            if head == "Type":
                return None
            return self.type_from_annotation(module_name, ann.value)
        return None

    # -- local type environments -------------------------------------------

    def local_env(self, fn: FunctionInfo) -> Dict[str, TypeRef]:
        """Forward-inferred local variable types for one function.

        Single forward pass in statement order: parameter annotations
        (overridden by interprocedurally-proven set-ness), assignments
        from constructor calls / typed calls / container displays /
        attribute loads, loop targets from element types.
        """
        env: Dict[str, TypeRef] = {}
        if fn.cls is not None and fn.params and fn.params[0] == "self":
            env["self"] = TypeRef(cls=fn.cls)
        for p in fn.params:
            t = fn.param_types.get(p)
            if p in fn.set_params:
                t = TypeRef(
                    cls=None,
                    container="set",
                    elem=t.elem if t else None,
                )
            if t is not None:
                env[p] = t

        def assign(target: ast.AST, t: Optional[TypeRef]) -> None:
            if isinstance(target, ast.Name):
                if t is not None:
                    env[target.id] = t
                else:
                    env.pop(target.id, None)

        def visit(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    t = self.expr_type(fn, env, stmt.value)
                    for tgt in stmt.targets:
                        assign(tgt, t)
                elif isinstance(stmt, ast.AnnAssign):
                    t = self.type_from_annotation(
                        fn.module.name, stmt.annotation
                    )
                    if t is None and stmt.value is not None:
                        t = self.expr_type(fn, env, stmt.value)
                    assign(stmt.target, t)
                elif isinstance(stmt, ast.AugAssign):
                    pass
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    it = self.expr_type(fn, env, stmt.iter)
                    assign(stmt.target, it.elem if it else None)
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if item.optional_vars is not None:
                            assign(
                                item.optional_vars,
                                self.expr_type(
                                    fn, env, item.context_expr
                                ),
                            )
                    visit(stmt.body)
                elif isinstance(stmt, ast.If):
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.While,)):
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body)
                    for h in stmt.handlers:
                        visit(h.body)
                    visit(stmt.orelse)
                    visit(stmt.finalbody)

        visit(fn.node.body)
        return env

    def expr_type(
        self,
        fn: FunctionInfo,
        env: Dict[str, TypeRef],
        expr: ast.AST,
    ) -> Optional[TypeRef]:
        """Best-effort type of ``expr`` under ``env`` (may be None)."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return TypeRef(container="set")
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return TypeRef(container="dict")
        if isinstance(expr, (ast.List, ast.ListComp)):
            return TypeRef(container="seq")
        if isinstance(expr, ast.Tuple):
            return TypeRef(container="seq")
        if isinstance(expr, ast.IfExp):
            return self.expr_type(fn, env, expr.body) or self.expr_type(
                fn, env, expr.orelse
            )
        if isinstance(expr, ast.BoolOp):
            # ``rng or random.Random(0)`` -- any operand's type
            for v in expr.values:
                t = self.expr_type(fn, env, v)
                if t is not None:
                    return t
            return None
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            left = self.expr_type(fn, env, expr.left)
            if left is not None and left.is_set:
                return left
            return None
        if isinstance(expr, ast.Subscript):
            base = self.expr_type(fn, env, expr.value)
            return base.elem if base is not None else None
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(fn, env, expr.value)
            if base is not None and base.cls is not None:
                t = self.attr_type(base.cls, expr.attr)
                if t is not None:
                    return t
                # zero-arg property lookups via methods
                info = self.classes.get(base.cls)
                if info is not None:
                    m = self._property_method(base.cls, expr.attr)
                    if m is not None and m.returns is not None:
                        return m.returns
            return None
        if isinstance(expr, ast.Call):
            return self._call_type(fn, env, expr)
        return None

    def _property_method(
        self, class_qualname: str, name: str
    ) -> Optional[FunctionInfo]:
        for qn in self.mro(class_qualname):
            m = self.classes[qn].methods.get(name)
            if m is not None and "property" in m.decorators:
                return m
        return None

    def _call_type(
        self,
        fn: FunctionInfo,
        env: Dict[str, TypeRef],
        call: ast.Call,
    ) -> Optional[TypeRef]:
        func = call.func
        head = _head_name(func)
        arg0_t = (
            self.expr_type(fn, env, call.args[0]) if call.args else None
        )
        if head in {"set", "frozenset"}:
            return TypeRef(
                container="set", elem=arg0_t.elem if arg0_t else None
            )
        if head in {"sorted", "list", "tuple"}:
            return TypeRef(
                container="seq", elem=arg0_t.elem if arg0_t else None
            )
        if head == "dict":
            return TypeRef(
                container="dict",
                elem=arg0_t.elem
                if arg0_t and arg0_t.container == "dict"
                else None,
            )
        for target in self.resolve_call(fn, env, call):
            if target.name == "__init__" and target.cls is not None:
                return TypeRef(cls=target.cls)
            if target.returns is not None:
                return target.returns
        # direct constructor call of a project class without __init__
        qn = (
            self.resolve_dotted(fn.module.name, func)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        if qn is not None and qn in self.classes:
            return TypeRef(cls=qn)
        return None

    # -- call graph ---------------------------------------------------------

    def resolve_call(
        self,
        fn: FunctionInfo,
        env: Dict[str, TypeRef],
        call: ast.Call,
    ) -> List[FunctionInfo]:
        """Possible targets of one call expression inside ``fn``."""
        func = call.func
        out: List[FunctionInfo] = []
        if isinstance(func, ast.Name):
            qn = self.resolve_symbol(fn.module.name, func.id)
            if qn is None:
                return out
            if qn in self.functions:
                out.append(self.functions[qn])
            elif qn in self.classes:
                init = self.classes[qn].methods.get("__init__")
                if init is not None:
                    out.append(init)
            return out
        if not isinstance(func, ast.Attribute):
            return out
        # self.method(...) inside a class
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and fn.cls is not None
        ):
            return self.lookup_method(fn.cls, func.attr)
        # typed receiver: a local/param/attribute with a known class
        recv_t = self.expr_type(fn, env, func.value)
        if recv_t is not None and recv_t.cls is not None:
            return self.lookup_method(recv_t.cls, func.attr)
        # dotted module path (``registry.make_protocol``, class methods
        # referenced through an imported class, etc.)
        qn = self.resolve_dotted(fn.module.name, func)
        if qn is not None:
            if qn in self.functions:
                out.append(self.functions[qn])
            elif qn in self.classes:
                init = self.classes[qn].methods.get("__init__")
                if init is not None:
                    out.append(init)
            else:
                # Class.method referenced through the class
                head, _, last = qn.rpartition(".")
                if head in self.classes:
                    out.extend(self.lookup_method(head, last))
        return out

    def _build_call_graph(self) -> None:
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            env = self.local_env(fn)
            edges: List[CallEdge] = []
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                for target in self.resolve_call(fn, env, node):
                    edges.append(
                        CallEdge(
                            caller=qualname,
                            callee=target.qualname,
                            node=node,
                            lineno=node.lineno,
                        )
                    )
            self.calls[qualname] = edges

    def callees(self, qualname: str) -> List[CallEdge]:
        """Outgoing call edges of one function."""
        return self.calls.get(qualname, [])

    def reachable_from(
        self,
        roots: Sequence[str],
        stop: Optional[Set[str]] = None,
    ) -> Dict[str, Optional[CallEdge]]:
        """BFS call closure of ``roots``.

        Returns ``reached qualname -> the edge that first reached it``
        (``None`` for the roots themselves), so callers can reconstruct
        a witness call chain.  Functions whose bare name is in ``stop``
        are neither entered nor traversed (taint barriers).
        """
        stop = stop or set()
        parents: Dict[str, Optional[CallEdge]] = {}
        queue: List[str] = []
        for r in roots:
            if r not in parents:
                parents[r] = None
                queue.append(r)
        while queue:
            current = queue.pop(0)
            for edge in self.callees(current):
                callee = edge.callee
                if callee in parents:
                    continue
                if callee.rpartition(".")[2] in stop:
                    continue
                parents[callee] = edge
                queue.append(callee)
        return parents

    def call_chain(
        self, parents: Dict[str, Optional[CallEdge]], qualname: str
    ) -> List[str]:
        """Reconstruct root -> ... -> qualname from a BFS parent map."""
        chain = [qualname]
        seen = {qualname}
        while True:
            edge = parents.get(chain[0])
            if edge is None or edge.caller in seen:
                return chain
            chain.insert(0, edge.caller)
            seen.add(edge.caller)

    # -- interprocedural set-valuedness ------------------------------------

    def _propagate_set_params(self) -> None:
        """Flow set-ness from call-site arguments into parameters.

        A set passed into an ``Iterable``-annotated or unannotated
        parameter is still iterated in set order inside the callee, so
        the parameter inherits set-ness.  Ordered annotations
        (``Sequence``, ``List``) are trusted to reject sets.  Iterated
        to a fixpoint because set-ness can flow through several hops.
        """
        for _ in range(6):
            changed = False
            for qualname in sorted(self.functions):
                fn = self.functions[qualname]
                env = self.local_env(fn)
                for edge in self.callees(qualname):
                    target = self.functions.get(edge.callee)
                    if target is None:
                        continue
                    changed |= self._flow_set_args(fn, env, edge, target)
            if not changed:
                return

    def _flow_set_args(
        self,
        fn: FunctionInfo,
        env: Dict[str, TypeRef],
        edge: CallEdge,
        target: FunctionInfo,
    ) -> bool:
        params = target.params
        if target.is_method and params and params[0] == "self":
            params = params[1:]
        changed = False
        bound: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(edge.node.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                break
            bound.append((params[i], arg))
        for kw in edge.node.keywords:
            if kw.arg is not None and kw.arg in target.params:
                bound.append((kw.arg, kw.value))
        for pname, arg in bound:
            if pname in target.set_params:
                continue
            t = self.expr_type(fn, env, arg)
            if t is None or not t.is_set:
                continue
            declared = target.param_types.get(pname)
            if declared is not None and declared.container not in (
                None,
                "iter",
                "set",
            ):
                continue  # ordered annotation: trusted
            target.set_params.add(pname)
            changed = True
        return changed


def iter_module_functions(
    model: ProjectModel, module_name: str
) -> Iterator[FunctionInfo]:
    """All functions/methods defined in one module, sorted by qualname."""
    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        if fn.module.name == module_name:
            yield fn
