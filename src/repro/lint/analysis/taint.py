"""``nondet-taint``: interprocedural nondeterminism reachability.

The determinism contract (see :mod:`repro.exec.executor`) makes four
entry points *sinks* whose entire call closure must be deterministic:

- :func:`repro.exec.specs.run_trial` and
  :func:`repro.exec.specs.build_scenario` (cached ground truth);
- :meth:`repro.radio.engine.Engine.run` (the simulation itself);
- every public adversary move kernel (``repro.adversary.moves``), whose
  draws must replay byte-identically during certification.

A *source* is anything whose value depends on process state rather than
the derived seed: module-level ``random`` draws, unseeded
``random.Random()`` / ``random.SystemRandom()``, global
``numpy.random.*`` draws and unseeded ``numpy.random.default_rng()`` /
``RandomState()``, ``time.*``, ``os.urandom``, ``uuid.*``, ``id()`` /
``hash()`` of objects, and order-sensitive iteration over a set
(including sets proven interprocedurally, e.g. a set passed into an
``Iterable`` parameter).

The only sanctioned barrier is :func:`repro.exec.seeds.derive_seed`:
call edges into it are not traversed (whatever enters it comes out as a
pure function of the spec identity).  Every source found in a sink's
closure is reported *at the source line* (so ordinary per-line
suppressions apply) with a witness call chain from the sink.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.lint.analysis.project import (
    FunctionInfo,
    ProjectModel,
    _head_name,
)
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register
from repro.lint.sources import LintContext

#: bare function names never entered during closure traversal -- the
#: sanctioned nondeterminism barrier
BARRIER_NAMES = frozenset({"derive_seed"})

#: ``random`` members that are constructors, not draws
_RNG_CONSTRUCTORS = {"Random", "SystemRandom"}

#: call heads that materialize an iterable in iteration order
_ORDER_MATERIALIZERS = {"list", "tuple", "enumerate"}


def _is_sink(fn: FunctionInfo) -> bool:
    """Whether ``fn`` is one of the determinism sinks."""
    mod = fn.module.name
    if fn.cls is None and fn.name in ("run_trial", "build_scenario"):
        if mod == "exec.specs" or mod.endswith(".exec.specs"):
            return True
    if (
        fn.cls is not None
        and fn.name == "run"
        and fn.cls.rpartition(".")[2] == "Engine"
        and (mod == "radio.engine" or mod.endswith(".radio.engine"))
    ):
        return True
    parts = mod.split(".")
    if (
        fn.cls is None
        and "adversary" in parts
        and parts[-1] == "moves"
        and not fn.name.startswith("_")
    ):
        return True
    return False


def _sources(
    model: ProjectModel, fn: FunctionInfo
) -> List[Tuple[ast.AST, str]]:
    """``(node, description)`` for every nondeterminism source in ``fn``."""
    env = model.local_env(fn)
    mod = fn.module.name
    out: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Attribute):
            dotted = model.resolve_dotted(mod, node)
            if dotted and dotted.startswith("time."):
                out.append(
                    (node, f"wall-clock read '{dotted}'")
                )
            continue
        if isinstance(node, ast.For):
            t = model.expr_type(fn, env, node.iter)
            if t is not None and t.is_set:
                out.append(
                    (node.iter, "for-loop over a set (unordered)")
                )
            continue
        if isinstance(node, (ast.ListComp, ast.DictComp)):
            kind = (
                "list" if isinstance(node, ast.ListComp) else "dict"
            )
            for gen in node.generators:
                t = model.expr_type(fn, env, gen.iter)
                if t is not None and t.is_set:
                    out.append(
                        (
                            gen.iter,
                            f"{kind} comprehension over a set "
                            "(unordered)",
                        )
                    )
            continue
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("id", "hash") and (
                model.resolve_symbol(mod, func.id) is None
            ):
                out.append(
                    (node, f"identity-dependent builtin '{func.id}()'")
                )
        head = _head_name(func)
        if head in _ORDER_MATERIALIZERS and node.args:
            t = model.expr_type(fn, env, node.args[0])
            if t is not None and t.is_set:
                out.append(
                    (node, f"'{head}()' materializes a set in set order")
                )
        dotted = (
            model.resolve_dotted(mod, func)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        if not dotted:
            continue
        root, _, member = dotted.partition(".")
        member = member.rpartition(".")[2] or member
        if root == "random" and member:
            if member == "Random":
                if not node.args and not node.keywords:
                    out.append((node, "unseeded 'random.Random()'"))
            elif member == "SystemRandom":
                out.append((node, "OS-entropy 'random.SystemRandom()'"))
            elif member != "seed":
                out.append(
                    (
                        node,
                        f"module-level RNG draw 'random.{member}' "
                        "(shared hidden state)",
                    )
                )
        elif dotted == "os.urandom":
            out.append((node, "OS-entropy 'os.urandom()'"))
        elif root == "uuid" and member:
            out.append((node, f"'uuid.{member}' (host/clock dependent)"))
        elif root == "numpy" and dotted.startswith("numpy.random."):
            # numpy's RNG surface mirrors stdlib random: the global
            # draws share hidden state, and the constructors are
            # OS-entropy unless explicitly seeded
            if member in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    out.append(
                        (node, f"unseeded 'numpy.random.{member}()'")
                    )
            elif member not in ("seed", "Generator"):
                out.append(
                    (
                        node,
                        f"global numpy RNG draw 'numpy.random.{member}' "
                        "(shared hidden state)",
                    )
                )
    return out


@register
class NondetTaintRule(Rule):
    """Flag nondeterminism sources reachable from determinism sinks.

    Whole-program pass over the :class:`ProjectModel` call graph:
    BFS the call closure of every sink (never crossing
    :data:`BARRIER_NAMES`), scan every reached function for sources,
    and report each source site once with the shortest witness chain.
    A source two calls upstream of ``run_trial`` is exactly as fatal as
    one inside it: the cached rows stop being a pure function of
    ``(spec, root_seed)``.
    """

    rule_id = "nondet-taint"
    deep = True
    description = (
        "no nondeterminism source (random/numpy.random/time/uuid/"
        "os.urandom/id/hash/set iteration) may reach Engine.run, "
        "run_trial, build_scenario, or an adversary move kernel except "
        "through derive_seed"
    )

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        """Run the taint pass over the whole lint context."""
        model = ctx.project
        sinks = sorted(
            (f for f in model.functions.values() if _is_sink(f)),
            key=lambda f: f.qualname,
        )
        reported: Dict[Tuple[str, int, int, str], bool] = {}
        for sink in sinks:
            parents = model.reachable_from(
                [sink.qualname], stop=set(BARRIER_NAMES)
            )
            for qualname in sorted(parents):
                fn = model.functions.get(qualname)
                if fn is None:
                    continue
                for node, desc in _sources(model, fn):
                    key = (
                        fn.module.name,
                        getattr(node, "lineno", 0),
                        getattr(node, "col_offset", 0),
                        desc,
                    )
                    if key in reported:
                        continue
                    reported[key] = True
                    chain = model.call_chain(parents, qualname)
                    path = " -> ".join(chain)
                    yield self.finding(
                        fn.module,
                        node,
                        f"{desc} reaches determinism sink "
                        f"'{sink.qualname}' (call path: {path}); "
                        "derive randomness via derive_seed or iterate "
                        "via sorted(...)",
                    )
