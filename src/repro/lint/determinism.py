"""Determinism rules: seeded randomness and ordered iteration.

The engine's contract (see :mod:`repro.radio.engine`) is that two runs
with identical inputs produce identical traces.  Two code patterns break
that silently:

- drawing from the process-global ``random`` module (seeded by the
  interpreter, shared across every component);
- iterating a ``set`` -- or a dict view on a transmit/deliver path --
  whose order is an implementation detail, so message emission and
  delivery order can differ between runs or interpreter builds.

Both are cheap to avoid (inject a ``random.Random(seed)``; wrap the
iterable in ``sorted(...)``) and impossible to debug after the fact,
which is exactly the profile of an invariant worth linting.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import Rule, SourceModule, name_of, register
from repro.lint.sources import LintContext

#: ``random`` module members that are fine to reference: constructing a
#: generator class is how callers *obey* the injection rule.
_ALLOWED_RANDOM_MEMBERS = {"Random", "SystemRandom"}


@register
class NoUnseededRngRule(Rule):
    """Forbid draws from the process-global ``random`` module.

    Library code must take an injected ``random.Random`` (or construct
    one from an explicit seed); ``random.random()`` and friends read the
    interpreter-global generator, whose state depends on everything else
    that ran before -- reproducibility dies quietly.  ``random.Random()``
    called *without* a seed is flagged for the same reason.
    """

    rule_id = "no-unseeded-rng"
    description = (
        "library code must use an injected/seeded random.Random, never "
        "the global random module or an unseeded generator"
    )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Flag global-``random`` draws, unseeded generators, and
        ``from random import <draw function>`` imports."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_RANDOM_MEMBERS:
                        yield self.finding(
                            module,
                            node,
                            f"'from random import {alias.name}' pulls in a "
                            "global-state draw function; import random and "
                            "construct a seeded random.Random instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                continue
            if func.attr not in _ALLOWED_RANDOM_MEMBERS:
                yield self.finding(
                    module,
                    node,
                    f"random.{func.attr}() draws from the process-global "
                    "generator; inject a seeded random.Random instead",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )


# ---------------------------------------------------------------------------
# adversary mutation kernels


def _is_adversary_moves_module(name: str) -> bool:
    """Whether a dotted module name is an adversary ``moves`` module."""
    parts = name.split(".")
    return "adversary" in parts and parts[-1] == "moves"


@register
class AdversaryInjectedRngRule(Rule):
    """Mutation kernels must *receive* their generator, never own one.

    Scope: ``moves`` modules inside an ``adversary`` package -- the
    search's mutation kernels.  The search strategies replay kernel
    sequences deterministically by owning the single ``random.Random``
    and threading it through every kernel call; a kernel that constructs
    its own generator (or draws from the global module) forks the random
    stream and silently breaks the serial-equals-parallel contract.
    Flags:

    - any public top-level function without an ``rng`` parameter;
    - any ``random.Random`` / ``random.SystemRandom`` construction
      inside the module (on top of the global-draw checks
      :class:`NoUnseededRngRule` already applies everywhere).
    """

    rule_id = "adversary-injected-rng"
    description = (
        "adversary mutation kernels must take an injected random.Random "
        "('rng' parameter) and never construct their own generator"
    )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Check one adversary ``moves`` module."""
        if not _is_adversary_moves_module(module.name):
            return
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            names = {
                a.arg
                for a in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            }
            if "rng" not in names:
                yield self.finding(
                    module,
                    node,
                    f"mutation kernel '{node.name}' takes no 'rng' "
                    "parameter; kernels must use an injected "
                    "random.Random",
                )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in _ALLOWED_RANDOM_MEMBERS
            ):
                yield self.finding(
                    module,
                    node,
                    f"random.{node.func.attr}(...) constructed inside a "
                    "mutation-kernel module; kernels receive their "
                    "generator from the strategy",
                )


# ---------------------------------------------------------------------------
# ordered iteration

#: modules whose iteration order feeds the on-air transmission order
_SCOPED_MODULE_PREFIXES = ("repro.protocols.",)
_SCOPED_MODULES = {"repro.radio.engine", "repro.protocols"}

#: function names that form the transmit/deliver path (dict views are
#: additionally flagged inside these)
_DELIVERY_FUNC_NAMES = {
    "_transmit",
    "_flush_pending_deliveries",
    "_run_round",
    "_start",
    "_deliver",
}
_DELIVERY_FUNC_PREFIXES = ("on_", "_on_")

#: outermost annotation heads that denote a set
_SET_TYPE_HEADS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "MutableSet",
    "AbstractSet",
}
#: annotation wrappers to look through (``Optional[Set[...]]``)
_TYPE_WRAPPERS = {"Optional", "Final", "ClassVar", "Annotated"}

#: set methods that return another set
_SET_PRODUCING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

#: builtins that materialize their argument's (unordered) iteration order
_ORDER_MATERIALIZERS = {"list", "tuple", "enumerate"}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    """Whether a type annotation's outermost type is a set type."""
    while (
        isinstance(node, ast.Subscript)
        and name_of(node.value) in _TYPE_WRAPPERS
    ):
        node = node.slice
    if isinstance(node, ast.Subscript):
        node = node.value
    return node is not None and name_of(node) in _SET_TYPE_HEADS


def _binding_key(target: ast.AST) -> Optional[Tuple[str, str]]:
    """A stable key for a set-typed binding target.

    ``("self", attr)`` for ``self.attr``; ``("", name)`` for a plain
    local/parameter name; ``None`` for anything else.
    """
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return ("self", target.attr)
    if isinstance(target, ast.Name):
        return ("", target.id)
    return None


class _SetBindings:
    """Module-wide registry of names/attributes known to hold sets."""

    def __init__(self) -> None:
        self.keys: Set[Tuple[str, str]] = set()

    def is_set_expr(self, node: ast.AST) -> bool:
        """Syntactic judgment: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = _binding_key(node)
            return key is not None and key in self.keys
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if (
                    func.attr == "setdefault"
                    and len(node.args) == 2
                    and self.is_set_expr(node.args[1])
                ):
                    return True
                if func.attr in _SET_PRODUCING_METHODS and self.is_set_expr(
                    func.value
                ):
                    return True
        return False

    def collect(self, tree: ast.Module) -> None:
        """Record every binding whose annotation or value is a set.

        Runs to a fixpoint so chained assignments (``a = set(); b = a``)
        resolve regardless of collection order.
        """
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                node.annotation
            ):
                key = _binding_key(node.target)
                if key:
                    self.keys.add(key)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    if _annotation_is_set(arg.annotation):
                        self.keys.add(("", arg.arg))
        while True:
            before = len(self.keys)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Assign):
                    continue
                if self.is_set_expr(node.value):
                    for target in node.targets:
                        key = _binding_key(target)
                        if key:
                            self.keys.add(key)
            if len(self.keys) == before:
                return


def _iter_description(node: ast.AST) -> str:
    """A short source-ish rendering of an iterable expression."""
    try:
        return ast.unparse(node)  # py >= 3.9
    except Exception:  # pragma: no cover - unparse fallback
        return name_of(node) or node.__class__.__name__.lower()


def _in_delivery_path(func_stack: List[str]) -> bool:
    """Whether the innermost enclosing function is a transmit/deliver
    hook (see module docstring for the name conventions)."""
    if not func_stack:
        return False
    name = func_stack[-1]
    return name in _DELIVERY_FUNC_NAMES or name.startswith(
        _DELIVERY_FUNC_PREFIXES
    )


def _is_dict_view(node: ast.AST) -> bool:
    """Whether ``node`` is a ``.keys()`` / ``.values()`` / ``.items()``
    call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


@register
class OrderedIterationRule(Rule):
    """Require a defined order when iterating sets on protocol paths.

    Scope: :mod:`repro.radio.engine` and every ``repro.protocols``
    module -- the code whose iteration order determines what goes on the
    air and in which sequence.  Flags:

    - any iteration (``for``, comprehension, generator expression) over
      an expression known to be a set -- a literal, a ``set()`` /
      ``frozenset()`` call, or a name/attribute bound or annotated as a
      set anywhere in the module;
    - ``list(...)`` / ``tuple(...)`` / ``enumerate(...)`` over such an
      expression (materializing the unordered order is the same bug one
      step removed);
    - iteration over a dict view (``.keys()`` / ``.values()`` /
      ``.items()``) inside a transmit/deliver-path function (``on_*``,
      ``_on_*``, ``_transmit``, ``_run_round``, ...), where insertion
      order is itself history-dependent.

    The fix is ``sorted(...)`` around the iterable, which also
    suppresses the finding (the rule only looks at the raw iterable).
    """

    rule_id = "ordered-iteration"
    description = (
        "iteration over sets (and dict views on transmit/deliver paths) "
        "in engine/protocol code must be wrapped in sorted(...)"
    )

    def _scoped(self, module: SourceModule) -> bool:
        return module.name in _SCOPED_MODULES or module.name.startswith(
            _SCOPED_MODULE_PREFIXES
        )

    def check_module(
        self, ctx: LintContext, module: SourceModule
    ) -> Iterator[Finding]:
        """Run the two iteration checks over one scoped module."""
        if not self._scoped(module):
            return
        bindings = _SetBindings()
        bindings.collect(module.tree)
        yield from self._visit(module, bindings, module.tree, [])

    def _visit(
        self,
        module: SourceModule,
        bindings: _SetBindings,
        node: ast.AST,
        func_stack: List[str],
    ) -> Iterator[Finding]:
        """Depth-first walk tracking the enclosing-function stack."""
        iters: List[ast.AST] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_MATERIALIZERS
            and node.args
        ):
            if bindings.is_set_expr(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    f"{node.func.id}() over set-valued "
                    f"'{_iter_description(node.args[0])}' materializes an "
                    "undefined order; use sorted(...)",
                )
        for it in iters:
            if bindings.is_set_expr(it):
                yield self.finding(
                    module,
                    it,
                    f"iteration over set-valued '{_iter_description(it)}' "
                    "has no defined order; wrap it in sorted(...)",
                )
            elif _is_dict_view(it) and _in_delivery_path(func_stack):
                yield self.finding(
                    module,
                    it,
                    f"iteration over dict view "
                    f"'{_iter_description(it)}' inside transmit/deliver "
                    f"path '{func_stack[-1]}' pins delivery order to "
                    "insertion history; iterate sorted(...) instead",
                )
        pushed = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if pushed:
            func_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, bindings, child, func_stack)
        if pushed:
            func_stack.pop()
