"""The ``repro serve`` HTTP layer: stdlib ``http.server`` over
:class:`~repro.serve.service.CampaignService`.

Endpoints (see ``docs/SERVICE.md`` for request/response shapes):

========  ====================  =========================================
method    path                  action
========  ====================  =========================================
POST      ``/sweeps``           submit a sweep (JSON body); runs it and
                                returns the full report
GET       ``/sweeps/{id}``      re-fetch a finished sweep's report
GET       ``/results/{key}``    rows for one content-addressed unit key
GET       ``/metrics``          Prometheus text exposition (format 0.0.4)
GET       ``/healthz``          liveness probe
========  ====================  =========================================

The server is a ``ThreadingHTTPServer``: a long sweep executing inside
its ``POST /sweeps`` request thread never blocks ``/metrics`` scrapes,
which read the in-flight campaign's queue depth and worker liveness
live.  All JSON responses are canonical (sorted keys), so identical
submissions return byte-identical ``rows`` -- the property CI's
``serve-smoke`` job asserts over this very interface.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.serve.service import CampaignService, canonical_report

#: Content type for Prometheus text exposition.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Cap on accepted request bodies (a sweep submission is kilobytes).
MAX_BODY_BYTES = 16 * 1024 * 1024


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the attached :class:`CampaignService`.

    The service instance is injected as a class attribute by
    :func:`make_server` (the ``http.server`` handler-class contract).
    """

    #: injected by :func:`make_server`
    service: CampaignService = None  # type: ignore[assignment]
    #: silenced access log unless make_server(quiet=False)
    quiet = True

    protocol_version = "HTTP/1.1"

    # pylint-style note: BaseHTTPRequestHandler uses camelCase hooks
    def log_message(self, format: str, *args: Any) -> None:
        """Access log; suppressed by default (tests, CI smoke)."""
        if not self.quiet:  # pragma: no cover - log formatting
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(
        self, code: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        """Write one complete response."""
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        """Write a canonical-JSON response."""
        self._send(code, canonical_report(payload).encode("utf-8"))

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """Parse the request body as JSON; answers 400 and returns
        ``None`` on any malformation."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "bad Content-Length"})
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return body

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        """``POST /sweeps``: submit and execute one sweep."""
        if self.path.rstrip("/") != "/sweeps":
            self._send_json(404, {"error": f"no such endpoint {self.path}"})
            return
        body = self._read_json_body()
        if body is None:
            return
        try:
            report = self.service.submit(body)
        except ReproError as exc:
            self._send_json(
                400, {"error": str(exc), "type": type(exc).__name__}
            )
            return
        self._send_json(200, report)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        """Dispatch GET endpoints (sweeps, results, metrics, health)."""
        path = self.path.rstrip("/") or "/"
        if path == "/metrics":
            self._send(
                200,
                self.service.metrics_text().encode("utf-8"),
                content_type=PROM_CONTENT_TYPE,
            )
            return
        if path == "/healthz":
            self._send_json(200, {"ok": True})
            return
        if path.startswith("/sweeps/"):
            report = self.service.get_sweep(path[len("/sweeps/"):])
            if report is None:
                self._send_json(404, {"error": "unknown sweep id"})
            else:
                self._send_json(200, report)
            return
        if path.startswith("/results/"):
            result = self.service.get_result(path[len("/results/"):])
            if result is None:
                self._send_json(
                    404, {"error": "unit key not in the result store"}
                )
            else:
                self._send_json(200, result)
            return
        self._send_json(404, {"error": f"no such endpoint {self.path}"})


def make_server(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build a ready-to-serve HTTP server bound to ``host:port``.

    Port ``0`` binds an ephemeral port (read it from
    ``server.server_address``).  Call ``serve_forever()`` to block, or
    run it on a thread and ``shutdown()`` to stop -- the pattern the
    tests and the smoke job use.
    """
    handler = type(
        "BoundCampaignRequestHandler",
        (CampaignRequestHandler,),
        {"service": service, "quiet": quiet},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 8321,
    quiet: bool = False,
) -> Tuple[str, int]:
    """Blocking entry point for ``repro serve``; returns the bound
    address once the server is shut down (KeyboardInterrupt-safe)."""
    server = make_server(service, host, port, quiet=quiet)
    address = server.server_address[:2]
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
    return address
