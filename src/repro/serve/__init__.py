"""``repro.serve``: the long-running sweep campaign service.

``repro serve`` turns the sweep layer into a service: a stdlib
``http.server`` process that accepts sweep submissions over HTTP, runs
them through any :mod:`execution backend <repro.exec.backends>` against
the shared content-addressed result store, and exposes progress as
Prometheus metrics.  Two modules:

- :mod:`repro.serve.service` -- :class:`CampaignService`, the
  transport-free core (submission parsing, campaign execution,
  cumulative accounting, metric families);
- :mod:`repro.serve.http` -- the HTTP shim (``POST /sweeps``,
  ``GET /sweeps/{id}``, ``GET /results/{unit_key}``, ``GET /metrics``,
  ``GET /healthz``).

Determinism carries through the wire: identical submissions return
byte-identical rows, the second one entirely from cache.  See
``docs/SERVICE.md``.
"""

from repro.serve.http import (
    PROM_CONTENT_TYPE,
    CampaignRequestHandler,
    make_server,
    serve,
)
from repro.serve.service import CampaignService, canonical_report

__all__ = [
    "CampaignRequestHandler",
    "CampaignService",
    "PROM_CONTENT_TYPE",
    "canonical_report",
    "make_server",
    "serve",
]
