"""The campaign service: sweep submission, result lookup, metrics.

:class:`CampaignService` is the transport-free core of ``repro serve``
(the HTTP layer in :mod:`repro.serve.http` is a thin shim over it).  It
owns one shared :class:`~repro.exec.cache.ResultCache` and runs every
submitted sweep through a :class:`~repro.exec.campaign.CampaignRunner`
on the backend the submission (or the service default) names.

Because work units are content-addressed and rows are a pure function
of ``(specs, root_seed)``, the service inherits the repo's determinism
contract for free: resubmitting an identical sweep -- from any client,
against any backend -- is a 100% cache hit and returns byte-identical
rows (CI's ``serve-smoke`` job pins exactly this).

Observability: cumulative counters (sweeps, units, trials, rounds,
messages) fold every finished campaign's accounting via
:meth:`~repro.exec.executor.ExecStats.merge`; the in-flight campaign's
queue depth and worker liveness are read live from its runner.
:meth:`CampaignService.metrics_text` renders it all as Prometheus text
(:mod:`repro.obs.prom`).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.exec.backends import make_backend
from repro.exec.cache import ResultCache
from repro.exec.campaign import CampaignRunner, plan_units
from repro.exec.executor import DEFAULT_CHUNK_SIZE, ExecStats
from repro.exec.specs import ScenarioSpec
from repro.obs.prom import MetricFamily, render_metrics


def canonical_report(report: Dict[str, Any]) -> str:
    """Render a report dict to canonical JSON (sorted keys, trailing
    newline) -- the byte-comparable wire form every endpoint returns."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


class CampaignService:
    """Accept sweep submissions, execute them, and account for them.

    Parameters
    ----------
    cache:
        The shared result store (also the cross-submission memo); may
        be ``None`` to always recompute (testing only -- resubmission
        identity then costs full recomputation).
    backend:
        Default backend name for submissions that do not pick one.
    workers:
        Pool size for ``pool``-backend campaigns.
    worker_addrs:
        ``host:port`` fleet for ``socket``-backend campaigns.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        backend: str = "serial",
        workers: int = 1,
        worker_addrs: Optional[Sequence[str]] = None,
    ) -> None:
        self.cache = cache
        self.default_backend = backend
        self.workers = workers
        self.worker_addrs = list(worker_addrs or [])
        self._lock = threading.Lock()
        self._sweeps: Dict[str, Dict[str, Any]] = {}
        self._next_id = 1
        self._current_runner: Optional[CampaignRunner] = None
        # cumulative accounting, folded sweep by sweep
        self._stats = ExecStats()
        self._sweeps_total = 0
        self._sweeps_failed = 0
        self._units_completed = 0
        self._units_cached = 0
        self._units_failed = 0
        self._rounds_total = 0
        self._messages_total = 0

    # -- submission ---------------------------------------------------------

    def _parse_request(self, request: Dict[str, Any]):
        """Validate a submission dict into (specs, root_seed,
        chunk_size, backend_name)."""
        if not isinstance(request, dict):
            raise ConfigurationError("sweep request must be a JSON object")
        raw_specs = request.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ConfigurationError(
                "sweep request needs a non-empty 'specs' list"
            )
        specs = [ScenarioSpec.from_dict(s) for s in raw_specs]
        root_seed = int(request.get("root_seed", 0))
        chunk_size = int(request.get("chunk_size", DEFAULT_CHUNK_SIZE))
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        backend_name = str(request.get("backend", self.default_backend))
        return specs, root_seed, chunk_size, backend_name

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one sweep submission synchronously; return its report.

        The report carries the sweep id, per-spec rows (plan order --
        deterministic bytes), execution stats, and the unit keys so a
        client can fetch individual units later via
        :meth:`get_result`.  Raises
        :class:`~repro.errors.ConfigurationError` on a malformed
        request and lets backend failures
        (:class:`~repro.exec.backends.base.BackendError`) propagate
        after being counted.
        """
        specs, root_seed, chunk_size, backend_name = self._parse_request(
            request
        )
        with self._lock:
            sweep_id = f"sweep-{self._next_id}"
            self._next_id += 1
            self._sweeps_total += 1
        backend = make_backend(
            backend_name,
            workers=self.workers,
            worker_addrs=self.worker_addrs or None,
        )
        runner = CampaignRunner(
            backend, cache=self.cache, chunk_size=chunk_size
        )
        with self._lock:
            self._current_runner = runner
        try:
            with backend:
                result = runner.run(specs, root_seed=root_seed)
        except ReproError as exc:
            with self._lock:
                self._sweeps_failed += 1
                self._fold_runner(runner)
                self._current_runner = None
                self._sweeps[sweep_id] = {
                    "id": sweep_id,
                    "status": "failed",
                    "error": str(exc),
                }
            raise
        unit_keys = [
            u.key for u in plan_units(specs, root_seed, chunk_size)
        ]
        report = {
            "id": sweep_id,
            "status": "done",
            "backend": backend_name,
            "root_seed": root_seed,
            "rows": result.rows,
            "stats": result.stats.as_dict(),
            "hit_fraction": result.stats.hit_fraction,
            "unit_keys": unit_keys,
        }
        with self._lock:
            self._stats = self._stats.merge(result.stats)
            self._fold_runner(runner)
            self._current_runner = None
            for spec_rows in result.rows:
                for row in spec_rows:
                    self._rounds_total += int(row.get("rounds", 0))
                    self._messages_total += int(row.get("messages", 0))
            self._sweeps[sweep_id] = report
        return report

    def _fold_runner(self, runner: CampaignRunner) -> None:
        """Fold a finished runner's counters into the cumulative totals
        (caller holds the lock)."""
        self._units_completed += runner.units_completed
        self._units_cached += runner.units_cached
        self._units_failed += runner.units_failed

    # -- lookup -------------------------------------------------------------

    def get_sweep(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        """The stored report for ``sweep_id``, or ``None``."""
        with self._lock:
            return self._sweeps.get(sweep_id)

    def get_result(self, unit_key: str) -> Optional[Dict[str, Any]]:
        """Rows for one content-addressed unit key from the shared
        store, or ``None`` when uncached/unknown."""
        if self.cache is None:
            return None
        rows = self.cache.get(unit_key)
        if rows is None:
            return None
        return {"key": unit_key, "rows": rows}

    # -- metrics ------------------------------------------------------------

    def metrics_families(self) -> List[MetricFamily]:
        """The service's state as Prometheus metric families."""
        with self._lock:
            stats = self._stats
            runner = self._current_runner
            fams = [
                MetricFamily(
                    "repro_sweeps_total",
                    "counter",
                    "Sweep submissions accepted",
                ).add(self._sweeps_total),
                MetricFamily(
                    "repro_sweeps_failed_total",
                    "counter",
                    "Sweep submissions that errored",
                ).add(self._sweeps_failed),
                MetricFamily(
                    "repro_units_total",
                    "counter",
                    "Work units finished, by how they resolved",
                )
                .add(self._units_completed, {"outcome": "computed"})
                .add(self._units_cached, {"outcome": "cached"})
                .add(self._units_failed, {"outcome": "failed"}),
                MetricFamily(
                    "repro_trials_total",
                    "counter",
                    "Simulation trials covered by finished sweeps",
                ).add(stats.trials_total),
                MetricFamily(
                    "repro_trials_computed_total",
                    "counter",
                    "Simulation trials actually recomputed",
                ).add(stats.trials_computed),
                MetricFamily(
                    "repro_wall_clock_seconds_total",
                    "counter",
                    "Total campaign wall-clock seconds",
                ).add(stats.wall_clock_s),
                MetricFamily(
                    "repro_rounds_total",
                    "counter",
                    "Protocol rounds simulated across finished sweeps",
                ).add(self._rounds_total),
                MetricFamily(
                    "repro_messages_total",
                    "counter",
                    "Protocol messages sent across finished sweeps",
                ).add(self._messages_total),
            ]
        backend_status = (
            runner.backend.status()
            if runner is not None
            else {
                "backend": self.default_backend,
                "queue_depth": 0,
                "workers_total": 0,
                "workers_live": 0,
            }
        )
        label = {"backend": str(backend_status["backend"])}
        fams.extend(
            [
                MetricFamily(
                    "repro_backend_queue_depth",
                    "gauge",
                    "Units submitted to the active backend, not yet done",
                ).add(backend_status["queue_depth"], label),
                MetricFamily(
                    "repro_backend_workers",
                    "gauge",
                    "Backend workers, by liveness",
                )
                .add(
                    backend_status["workers_live"],
                    dict(label, state="live"),
                )
                .add(
                    backend_status["workers_total"],
                    dict(label, state="configured"),
                ),
            ]
        )
        return fams

    def metrics_text(self) -> str:
        """Prometheus text exposition of :meth:`metrics_families`."""
        return render_metrics(self.metrics_families())
