"""ASCII visualization of grids, fault maps, commit waves and the paper's
proof constructions."""

from repro.viz.ascii_art import render_grid, render_fault_map, render_commit_wave
from repro.viz.regions_art import (
    render_m_decomposition,
    render_s1_construction,
    render_u_construction,
)

__all__ = [
    "render_grid",
    "render_fault_map",
    "render_commit_wave",
    "render_m_decomposition",
    "render_s1_construction",
    "render_u_construction",
]
