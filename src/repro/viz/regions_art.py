"""ASCII rendering of the paper's proof constructions.

Draws the Table I relay regions exactly as Figs. 4-6 lay them out, so a
reader can see the construction rather than decode coordinates:

- ``render_u_construction``: the A/B/C/D regions around a U node with the
  committed neighborhood square and the frontier node P (Fig. 5);
- ``render_s1_construction``: the J/K regions for an S1 node (Fig. 6);
- ``render_m_decomposition``: the M = R + U + S1 + S2 partition (Fig. 3).

Legend: region letters mark member lattice points; ``N`` the determined
node, ``P`` the frontier node, ``*`` the containing-neighborhood center,
``.`` everything else.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.core.paths import corner_P
from repro.core.regions import (
    region_R,
    region_S1,
    region_S2,
    region_U,
    table1_S1_regions,
    table1_U_regions,
)
from repro.geometry.coords import Coord


def _render_points(
    marks: Mapping[Coord, str],
    highlight: Mapping[Coord, str],
) -> str:
    """Grid-render marks (region letters) with highlights on top."""
    pts = list(marks) + list(highlight)
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    lines: List[str] = []
    for y in range(max(ys), min(ys) - 1, -1):
        row = []
        for x in range(min(xs), max(xs) + 1):
            p = (x, y)
            row.append(highlight.get(p) or marks.get(p, "."))
        lines.append("".join(row))
    return "\n".join(lines)


def render_u_construction(a: int, b: int, r: int, p: int, q: int) -> str:
    """Fig. 5 as text: the relay regions for U node ``N = (a+p, b+q)``."""
    regions = table1_U_regions(a, b, r, p, q)
    marks: Dict[Coord, str] = {}
    letter = {
        "A": "A",
        "B1": "b",
        "B2": "B",
        "C1": "c",
        "C2": "C",
        "D1": "d",
        "D2": "e",
        "D3": "D",
    }
    for name, rect in regions.items():
        for pt in rect:
            marks[pt] = letter[name]
    highlight = {
        (a + p, b + q): "N",
        corner_P(a, b, r): "P",
        (a, b + r + 1): "*",
        (a, b): "o",  # the committed neighborhood's center
    }
    legend = (
        "A direct relays | b/B = B1->B2 | c/C = C1->C2 | d/e/D = D1->D2->D3\n"
        "N determined node, P frontier node, * containing-nbd center, "
        "o nbd(a,b) center"
    )
    return _render_points(marks, highlight) + "\n" + legend


def render_s1_construction(a: int, b: int, r: int, p: int) -> str:
    """Fig. 6 as text: the J/K regions for S1 node ``N = (a-r, b-p)``."""
    regions = table1_S1_regions(a, b, r, p)
    marks: Dict[Coord, str] = {}
    letter = {"J": "J", "K1": "k", "K2": "K"}
    for name, rect in regions.items():
        for pt in rect:
            marks[pt] = letter[name]
    highlight = {
        (a - r, b - p): "N",
        corner_P(a, b, r): "P",
        (a - r, b + 1): "*",
        (a, b): "o",
    }
    legend = (
        "J common neighbors | k/K = K1->K2 pairs\n"
        "N determined node, P frontier node, * containing-nbd center"
    )
    return _render_points(marks, highlight) + "\n" + legend


def render_m_decomposition(a: int, b: int, r: int) -> str:
    """Fig. 3 as text: M = R + U + S1 + S2 inside nbd(a, b)."""
    marks: Dict[Coord, str] = {}
    for pt in region_R(a, b, r):
        marks[pt] = "R"
    for pt in region_U(a, b, r):
        marks[pt] = "U"
    for pt in region_S1(a, b, r):
        marks[pt] = "1"
    for pt in region_S2(a, b, r):
        marks[pt] = "2"
    # frame: the rest of nbd(a, b)
    for x in range(a - r, a + r + 1):
        for y in range(b - r, b + r + 1):
            marks.setdefault((x, y), "-")
    highlight = {corner_P(a, b, r): "P", (a, b): "o"}
    legend = "R direct | U upper triangle | 1 = S1 | 2 = S2 | - rest of nbd"
    return _render_points(marks, highlight) + "\n" + legend
