"""ASCII rendering of tori, fault placements and commit waves.

The examples print these maps so a reader can *see* the constructions:
the Fig. 8 strips, the half-density Byzantine checkerboard, and how far a
blocked broadcast reached.  Legend characters are configurable; defaults:

- ``S``: the source;
- ``#``: a faulty node (crashed or Byzantine);
- ``.``: a correct node without the value;
- ``o``: a correct node that committed the correct value;
- ``X``: a correct node that committed a *wrong* value (should never
  appear -- safety);
- digits: commit round modulo 10, when rendering a wave.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Set

from repro.geometry.coords import Coord
from repro.grid.torus import Torus


def _grid_lines(
    torus: Torus, cell: Mapping[Coord, str], default: str = "."
) -> str:
    lines = []
    for y in range(torus.height - 1, -1, -1):  # y grows upward, like the figures
        row = "".join(cell.get((x, y), default) for x in range(torus.width))
        lines.append(row)
    return "\n".join(lines)


def render_grid(torus: Torus, marks: Mapping[Coord, str]) -> str:
    """Render arbitrary per-node marks (single characters)."""
    canon = {torus.canonical(k): v for k, v in marks.items()}
    return _grid_lines(torus, canon)


def render_fault_map(
    torus: Torus,
    faulty: Iterable[Coord],
    source: Coord = (0, 0),
) -> str:
    """Source + fault placement map."""
    cell: Dict[Coord, str] = {torus.canonical(f): "#" for f in faulty}
    cell[torus.canonical(source)] = "S"
    return _grid_lines(torus, cell)


def render_commit_wave(
    torus: Torus,
    committed: Mapping[Coord, Any],
    value: Any,
    faulty: Iterable[Coord] = (),
    source: Coord = (0, 0),
    commit_rounds: Optional[Mapping[Coord, int]] = None,
) -> str:
    """Render the outcome of a broadcast run.

    With ``commit_rounds`` the map shows the commit round digit (mod 10)
    instead of ``o`` -- the visual equivalent of Figs. 14-19's stage
    shading.
    """
    cell: Dict[Coord, str] = {}
    fault_set: Set[Coord] = {torus.canonical(f) for f in faulty}
    for f in fault_set:
        cell[f] = "#"
    for node, v in committed.items():
        cn = torus.canonical(node)
        if cn in fault_set:
            continue
        if v != value:
            cell[cn] = "X"
        elif commit_rounds is not None and cn in commit_rounds:
            cell[cn] = str(max(commit_rounds[cn], 0) % 10)
        else:
            cell[cn] = "o"
    cell[torus.canonical(source)] = "S"
    return _grid_lines(torus, cell)
