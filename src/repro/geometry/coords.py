"""Lattice points and elementary vector arithmetic.

Nodes in the paper are identified by their grid location ``(x, y)``.  We
represent a location as a plain 2-tuple of ints.  :class:`Point` is a
``NamedTuple`` that *is* such a tuple (it compares and hashes equal to the
bare tuple), so library code may construct ``Point`` values for readability
while hot paths and user code may use plain tuples interchangeably.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

Coord = Tuple[int, int]
"""Type alias for a lattice coordinate; any ``(int, int)`` tuple qualifies."""


class Point(NamedTuple):
    """A lattice point.

    ``Point(3, -1)`` is equal (and hashes equal) to the tuple ``(3, -1)``,
    so the two spellings are interchangeable everywhere in the library.
    """

    x: int
    y: int

    def __add__(self, other: Coord) -> "Point":  # type: ignore[override]
        """Translate this point by ``other`` (vector addition)."""
        return Point(self.x + other[0], self.y + other[1])

    def __sub__(self, other: Coord) -> "Point":
        """Vector from ``other`` to this point."""
        return Point(self.x - other[0], self.y - other[1])

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)


def add(a: Coord, b: Coord) -> Coord:
    """Component-wise sum of two coordinates."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Coord, b: Coord) -> Coord:
    """Component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1])


def neg(a: Coord) -> Coord:
    """Component-wise negation."""
    return (-a[0], -a[1])


def scale(a: Coord, k: int) -> Coord:
    """Scalar multiple ``k * a``."""
    return (a[0] * k, a[1] * k)


def manhattan(a: Coord, b: Coord) -> int:
    """The L1 (Manhattan) distance between ``a`` and ``b``."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


ORIGIN = Point(0, 0)
"""The designated source location (w.l.o.g. per the paper, Section II)."""

UNIT_STEPS: Tuple[Coord, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
"""The four axial unit steps; ``pnbd`` perturbs a neighborhood center by
one of these (paper, Section IV)."""
