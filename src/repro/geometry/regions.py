"""Axis-aligned integer rectangles.

Every region in the paper's constructions (Table I and Figures 1-7, 9-10,
14-19) is an axis-aligned rectangle of lattice points, described by x- and
y-extents like ``(a+1) <= x <= (a+p-1), (b+1) <= y <= (b+q+r)``.
:class:`Rect` models exactly that: a closed integer box ``[x_min, x_max] x
[y_min, y_max]``.  An *empty* rectangle (some ``min > max``) is legal and
contains no points -- the paper's regions degenerate to empty for boundary
parameter values (e.g. region B1 when ``p = 1``), and the path-counting
arithmetic still works out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.geometry.coords import Coord


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box of lattice points.

    ``Rect(0, 2, 0, 1)`` contains the 6 points with ``0 <= x <= 2`` and
    ``0 <= y <= 1``.  Boxes with ``x_min > x_max`` or ``y_min > y_max`` are
    empty.
    """

    x_min: int
    x_max: int
    y_min: int
    y_max: int

    @property
    def is_empty(self) -> bool:
        """Whether the box contains no lattice points."""
        return self.x_min > self.x_max or self.y_min > self.y_max

    @property
    def width(self) -> int:
        """Number of distinct x values (0 if empty)."""
        return max(0, self.x_max - self.x_min + 1)

    @property
    def height(self) -> int:
        """Number of distinct y values (0 if empty)."""
        return max(0, self.y_max - self.y_min + 1)

    def __len__(self) -> int:
        return self.width * self.height

    def __contains__(self, p: Coord) -> bool:
        return (
            self.x_min <= p[0] <= self.x_max and self.y_min <= p[1] <= self.y_max
        )

    def __iter__(self) -> Iterator[Coord]:
        """Iterate points in row-major order (y outer, x inner)."""
        for y in range(self.y_min, self.y_max + 1):
            for x in range(self.x_min, self.x_max + 1):
                yield (x, y)

    def points(self) -> List[Coord]:
        """Materialize all points (row-major)."""
        return list(self)

    def translate(self, dx: int, dy: int) -> "Rect":
        """The box shifted by ``(dx, dy)``.

        The paper's pairings between regions (e.g. B1 <-> B2) are exactly
        such translations.
        """
        return Rect(
            self.x_min + dx, self.x_max + dx, self.y_min + dy, self.y_max + dy
        )

    def intersect(self, other: "Rect") -> "Rect":
        """The (possibly empty) intersection box."""
        return Rect(
            max(self.x_min, other.x_min),
            min(self.x_max, other.x_max),
            max(self.y_min, other.y_min),
            min(self.y_max, other.y_max),
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two boxes share at least one lattice point."""
        return not self.intersect(other).is_empty

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` (if non-empty) lies entirely inside this box."""
        if other.is_empty:
            return True
        return (
            self.x_min <= other.x_min
            and other.x_max <= self.x_max
            and self.y_min <= other.y_min
            and other.y_max <= self.y_max
        )

    def corners(self) -> Tuple[Coord, Coord, Coord, Coord]:
        """The four corner points (SW, SE, NW, NE); undefined if empty."""
        return (
            (self.x_min, self.y_min),
            (self.x_max, self.y_min),
            (self.x_min, self.y_max),
            (self.x_max, self.y_max),
        )

    @staticmethod
    def ball_linf(center: Coord, r: int) -> "Rect":
        """The L-infinity ball of radius ``r`` around ``center`` as a box
        (this box *includes* the center point)."""
        cx, cy = center
        return Rect(cx - r, cx + r, cy - r, cy + r)


def rect_from_extents(
    x_lo: int, x_hi: int, y_lo: int, y_hi: int, name: Optional[str] = None
) -> Rect:
    """Build a :class:`Rect` from paper-style extents.

    Table I in the paper writes extents as ``lo <= x <= hi``; this helper
    keeps call sites visually close to the paper's table.  ``name`` is
    accepted for call-site documentation and ignored.
    """
    return Rect(x_lo, x_hi, y_lo, y_hi)
