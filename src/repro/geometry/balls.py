"""Cardinality formulas and point-set helpers for lattice balls.

The paper's thresholds are all fractions of a neighborhood population:

- L-infinity: ``|nbd| = (2r+1)^2 - 1 = 4r^2 + 4r`` and the Byzantine
  threshold ``r(2r+1)/2`` is "slightly less than one-fourth" of it;
- L2: ``|nbd| ~= pi r^2`` (Gauss circle problem) and the thresholds
  ``0.23 pi r^2`` / ``0.3 pi r^2`` are fractions of that.

This module provides exact counts (by formula where one exists, by
enumeration otherwise) plus the half-ball helper used in the L2 argument of
Section VIII (nodes in the half-neighborhood demarcated by the medial axis
perpendicular to the segment NQ).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.coords import Coord
from repro.geometry.metrics import get_metric


def linf_ball_size(r: int) -> int:
    """Population of an L-infinity neighborhood (excluding the center).

    ``(2r+1)^2 - 1 = 4r(r+1)``.

    >>> linf_ball_size(2)
    24
    """
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return (2 * r + 1) ** 2 - 1


def l1_ball_size(r: int) -> int:
    """Population of an L1 neighborhood (excluding the center).

    The L1 ball of radius ``r`` has ``2r(r+1) + 1`` lattice points.
    """
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return 2 * r * (r + 1)


def l2_ball_size(r: int) -> int:
    """Population of an L2 neighborhood (excluding the center), exact.

    There is no simple closed form (Gauss circle problem); we count
    row-by-row with integer arithmetic: for each ``dx`` the admissible
    ``dy`` span is ``2*floor(sqrt(r^2-dx^2)) + 1``.
    """
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    rr = r * r
    total = 0
    for dx in range(-r, r + 1):
        total += 2 * _isqrt(rr - dx * dx) + 1
    return total - 1  # exclude the center


def _isqrt(n: int) -> int:
    """Integer square root (floor)."""
    if n < 0:
        raise ValueError("negative operand")
    x = int(n**0.5)
    # correct any floating point drift
    while x * x > n:
        x -= 1
    while (x + 1) * (x + 1) <= n:
        x += 1
    return x


def ball_size(metric, r: int) -> int:
    """Population of a neighborhood under any metric (excluding center)."""
    m = get_metric(metric)
    if m.name == "linf":
        return linf_ball_size(r)
    if m.name == "l1":
        return l1_ball_size(r)
    if m.name == "l2":
        return l2_ball_size(r)
    return m.ball_size(r)


def ball_offsets(metric, r: int) -> Tuple[Coord, ...]:
    """All nonzero lattice offsets within radius ``r`` of the origin."""
    return get_metric(metric).offsets(r)


def ball_points(metric, center: Coord, r: int) -> List[Coord]:
    """All lattice points within radius ``r`` of ``center`` (excluding it)."""
    cx, cy = center
    return [(cx + dx, cy + dy) for dx, dy in get_metric(metric).offsets(r)]


def closed_ball_points(
    metric, center: Coord, r: int, topology=None
) -> List[Coord]:
    """All lattice points within radius ``r`` of ``center``, including it.

    This is the *closed* metric ball the locally-bounded fault budget is
    counted over (paper, Section II).  With a finite ``topology`` every
    point is wrapped to its canonical coordinate, so the returned list
    may contain duplicates only if the topology is smaller than the
    ball -- which topology constructors reject.

    On topologies without wrap-around (:class:`~repro.grid.bounded.
    BoundedGrid`, :class:`~repro.grid.rgg.RandomGeometricGraph`) the ball
    is *truncated* to the points that actually host nodes: canonicalizing
    is the identity there, so without the ``contains`` filter a corner
    ball would count phantom off-grid centers and the budget accounting
    would be asymmetric between interior and boundary (the latent bug
    pinned by ``tests/test_grid_bounded.py``).
    """
    cx, cy = center
    pts = [(cx + dx, cy + dy) for dx, dy in get_metric(metric).offsets(r)]
    pts.append((cx, cy))
    if topology is not None:
        pts = [
            q
            for q in (topology.canonical(p) for p in pts)
            if topology.contains(q)
        ]
    return pts


def half_ball_points(
    metric, center: Coord, r: int, direction: Coord, *, strict: bool = True
) -> List[Coord]:
    """Points of the ball around ``center`` on the far side of the medial axis.

    Used in the paper's Section VIII: given a node ``N`` at ``center`` and a
    target node ``Q`` in direction ``direction`` from ``N``, the relevant
    half-neighborhood of ``N`` consists of points ``P`` with
    ``<P - N, direction> > 0`` (``>= 0`` when ``strict`` is ``False``),
    i.e. the half of ``nbd(N)`` nearer ``Q``, not counting points on the
    medial axis itself when ``strict``.

    ``direction`` need not be normalized; only its orientation matters.

    :raises ValueError: if ``direction`` is the zero vector.
    """
    dx, dy = direction
    if dx == 0 and dy == 0:
        raise ValueError("direction must be a nonzero vector")
    cx, cy = center
    out: List[Coord] = []
    for ox, oy in get_metric(metric).offsets(r):
        dot = ox * dx + oy * dy
        if dot > 0 or (dot == 0 and not strict):
            out.append((cx + ox, cy + oy))
    return out
