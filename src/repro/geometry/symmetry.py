"""Dihedral symmetries of the square lattice.

The paper repeatedly argues "for all other positions the argument holds by
symmetry" (Section VI-A, and the S2-region argument which uses the axial
symmetry about the axis OO').  This module makes those arguments
executable: the eight symmetries of the square (the dihedral group D4) act
on lattice points, and both the L-infinity and L2 metrics are invariant
under all of them, so any verified construction can be transported to the
other seven orientations and re-verified.

Each transform is a function ``Coord -> Coord`` fixing the origin; compose
with translations to pivot around an arbitrary center.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Iterable, List, Mapping, Sequence, Tuple

from repro.geometry.coords import Coord

Transform = Callable[[Coord], Coord]


def identity(p: Coord) -> Coord:
    """The identity transform."""
    return (p[0], p[1])


def rot90(p: Coord) -> Coord:
    """Rotation by 90 degrees counterclockwise about the origin."""
    return (-p[1], p[0])


def rot180(p: Coord) -> Coord:
    """Rotation by 180 degrees about the origin."""
    return (-p[0], -p[1])


def rot270(p: Coord) -> Coord:
    """Rotation by 270 degrees counterclockwise about the origin."""
    return (p[1], -p[0])


def mirror_x(p: Coord) -> Coord:
    """Reflection across the x-axis (y -> -y)."""
    return (p[0], -p[1])


def mirror_y(p: Coord) -> Coord:
    """Reflection across the y-axis (x -> -x)."""
    return (-p[0], p[1])


def mirror_diag(p: Coord) -> Coord:
    """Reflection across the main diagonal y = x (swap coordinates).

    This is the symmetry the paper's S2 argument uses: the axis OO' in
    Fig. 3 / Fig. 7 is a diagonal of the construction.
    """
    return (p[1], p[0])


def mirror_anti(p: Coord) -> Coord:
    """Reflection across the anti-diagonal y = -x."""
    return (-p[1], -p[0])


DIHEDRAL_TRANSFORMS: Mapping[str, Transform] = MappingProxyType({
    "identity": identity,
    "rot90": rot90,
    "rot180": rot180,
    "rot270": rot270,
    "mirror_x": mirror_x,
    "mirror_y": mirror_y,
    "mirror_diag": mirror_diag,
    "mirror_anti": mirror_anti,
})
"""All eight elements of D4, keyed by name."""


def transform_point(
    transform: Transform, p: Coord, center: Coord = (0, 0)
) -> Coord:
    """Apply ``transform`` to ``p`` pivoting about ``center``.

    Conjugates the origin-fixing ``transform`` by the translation taking
    ``center`` to the origin.
    """
    tx, ty = transform((p[0] - center[0], p[1] - center[1]))
    return (tx + center[0], ty + center[1])


def transform_points(
    transform: Transform, points: Iterable[Coord], center: Coord = (0, 0)
) -> List[Coord]:
    """Apply :func:`transform_point` to every point of an iterable."""
    return [transform_point(transform, p, center) for p in points]


def transform_path(
    transform: Transform, path: Sequence[Coord], center: Coord = (0, 0)
) -> Tuple[Coord, ...]:
    """Apply a symmetry to a path (sequence of lattice points)."""
    return tuple(transform_point(transform, p, center) for p in path)
