"""Distance metrics on the integer lattice.

The paper analyzes two metrics (Section II):

- **L-infinity** (``max`` metric): ``nbd(a, b)`` is the square of side
  ``2r`` centered at ``(a, b)``.  This is the metric under which the paper
  establishes *exact* thresholds.
- **L2** (Euclidean): ``nbd(a, b)`` is the disc of radius ``r``.  The
  paper's L2 results are approximate ("informal arguments").

We additionally provide **L1** (Manhattan) for completeness; it is useful
for sanity experiments and exercises the metric abstraction.

A metric object knows how to measure distance between lattice points and
how to enumerate the lattice offsets that fall within a given radius.  All
offset enumerations are memoized because neighborhoods are queried millions
of times during simulation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Dict, Tuple

from repro.geometry.coords import Coord


class Metric(ABC):
    """A distance metric on the integer lattice.

    Subclasses are stateless singletons; use the module-level instances
    :data:`L1`, :data:`L2` and :data:`LINF`, or :func:`get_metric`.
    """

    #: short machine-readable name ("l1", "l2", "linf")
    name: str = "abstract"

    @abstractmethod
    def distance(self, a: Coord, b: Coord) -> float:
        """Distance between lattice points ``a`` and ``b``."""

    @abstractmethod
    def within(self, a: Coord, b: Coord, r: int) -> bool:
        """``True`` iff ``distance(a, b) <= r``.

        Implemented without floating point so that neighborhood membership
        is exact (important for L2, where ``sqrt`` rounding could
        misclassify boundary points).
        """

    @abstractmethod
    def _offsets_uncached(self, r: int) -> Tuple[Coord, ...]:
        """All lattice offsets ``(dx, dy) != (0, 0)`` with norm <= r."""

    def offsets(self, r: int) -> Tuple[Coord, ...]:
        """Memoized tuple of all nonzero offsets within radius ``r``.

        The neighborhood of a node ``v`` is ``{v + o for o in offsets(r)}``
        (the paper's ``nbd`` excludes the node itself when counting
        *neighbors*, and a node always knows its own value anyway).
        """
        return _offsets_cache(self.name, r, self)

    def ball_size(self, r: int) -> int:
        """Number of lattice points at distance <= r from a point,
        *excluding* the point itself (i.e. the neighborhood population)."""
        return len(self.offsets(r))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@lru_cache(maxsize=None)
def _offsets_cache(name: str, r: int, metric: "Metric") -> Tuple[Coord, ...]:
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return metric._offsets_uncached(r)


class LInfMetric(Metric):
    """The L-infinity (Chebyshev / max) metric.

    ``d((x1,y1),(x2,y2)) = max(|x1-x2|, |y1-y2|)``; the ball of radius
    ``r`` is the ``(2r+1) x (2r+1)`` square.
    """

    name = "linf"

    def distance(self, a: Coord, b: Coord) -> float:
        return float(max(abs(a[0] - b[0]), abs(a[1] - b[1])))

    def within(self, a: Coord, b: Coord, r: int) -> bool:
        return abs(a[0] - b[0]) <= r and abs(a[1] - b[1]) <= r

    def _offsets_uncached(self, r: int) -> Tuple[Coord, ...]:
        return tuple(
            (dx, dy)
            for dx in range(-r, r + 1)
            for dy in range(-r, r + 1)
            if (dx, dy) != (0, 0)
        )


class L2Metric(Metric):
    """The L2 (Euclidean) metric.

    Membership tests use exact integer arithmetic (``dx*dx + dy*dy <=
    r*r``), so boundary lattice points (e.g. ``(3, 4)`` for ``r = 5``) are
    classified exactly.
    """

    name = "l2"

    def distance(self, a: Coord, b: Coord) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def within(self, a: Coord, b: Coord, r: int) -> bool:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return dx * dx + dy * dy <= r * r

    def _offsets_uncached(self, r: int) -> Tuple[Coord, ...]:
        rr = r * r
        return tuple(
            (dx, dy)
            for dx in range(-r, r + 1)
            for dy in range(-r, r + 1)
            if (dx, dy) != (0, 0) and dx * dx + dy * dy <= rr
        )


class L1Metric(Metric):
    """The L1 (Manhattan / taxicab) metric; ball is a diamond."""

    name = "l1"

    def distance(self, a: Coord, b: Coord) -> float:
        return float(abs(a[0] - b[0]) + abs(a[1] - b[1]))

    def within(self, a: Coord, b: Coord, r: int) -> bool:
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) <= r

    def _offsets_uncached(self, r: int) -> Tuple[Coord, ...]:
        return tuple(
            (dx, dy)
            for dx in range(-r, r + 1)
            for dy in range(-r, r + 1)
            if (dx, dy) != (0, 0) and abs(dx) + abs(dy) <= r
        )


L1 = L1Metric()
L2 = L2Metric()
LINF = LInfMetric()

_METRICS: Dict[str, Metric] = {m.name: m for m in (L1, L2, LINF)}
_ALIASES: Dict[str, str] = {
    "manhattan": "l1",
    "taxicab": "l1",
    "euclidean": "l2",
    "chebyshev": "linf",
    "max": "linf",
    "l_inf": "linf",
    "linfinity": "linf",
    "l∞": "linf",
}


def get_metric(name) -> Metric:
    """Resolve a metric by name or pass an existing :class:`Metric` through.

    Accepts canonical names (``"l1"``, ``"l2"``, ``"linf"``) and common
    aliases (``"euclidean"``, ``"chebyshev"``, ``"manhattan"``, ...).

    >>> get_metric("euclidean") is L2
    True
    """
    if isinstance(name, Metric):
        return name
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _METRICS[key]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; expected one of {sorted(_METRICS)} "
            f"or aliases {sorted(_ALIASES)}"
        ) from None
