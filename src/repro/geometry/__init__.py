"""Integer-lattice geometry substrate.

The paper's network model places one node on every point of the integer
lattice (each grid unit is a 1x1 square).  Everything above this package
speaks in lattice coordinates; this package owns the primitive vocabulary:

- :mod:`repro.geometry.coords` -- points and vector arithmetic;
- :mod:`repro.geometry.metrics` -- the L1, L2 and L-infinity metrics and
  lattice-ball enumeration;
- :mod:`repro.geometry.balls` -- cardinality formulas and half-plane /
  annulus helpers used by the threshold arguments;
- :mod:`repro.geometry.regions` -- axis-aligned integer rectangles (the
  shape every region in the paper's Table I takes);
- :mod:`repro.geometry.symmetry` -- the dihedral symmetries of the lattice,
  used to extend "corner node" arguments to all positions.
"""

from repro.geometry.coords import Point, add, sub, neg, scale, manhattan
from repro.geometry.metrics import (
    Metric,
    L1Metric,
    L2Metric,
    LInfMetric,
    L1,
    L2,
    LINF,
    get_metric,
)
from repro.geometry.balls import (
    ball_offsets,
    ball_size,
    closed_ball_points,
    linf_ball_size,
    l2_ball_size,
    l1_ball_size,
    half_ball_points,
)
from repro.geometry.regions import Rect, rect_from_extents
from repro.geometry.symmetry import (
    DIHEDRAL_TRANSFORMS,
    identity,
    rot90,
    rot180,
    rot270,
    mirror_x,
    mirror_y,
    mirror_diag,
    mirror_anti,
    transform_point,
)

__all__ = [
    "Point",
    "add",
    "sub",
    "neg",
    "scale",
    "manhattan",
    "Metric",
    "L1Metric",
    "L2Metric",
    "LInfMetric",
    "L1",
    "L2",
    "LINF",
    "get_metric",
    "ball_offsets",
    "ball_size",
    "closed_ball_points",
    "linf_ball_size",
    "l2_ball_size",
    "l1_ball_size",
    "half_ball_points",
    "Rect",
    "rect_from_extents",
    "DIHEDRAL_TRANSFORMS",
    "identity",
    "rot90",
    "rot180",
    "rot270",
    "mirror_x",
    "mirror_y",
    "mirror_diag",
    "mirror_anti",
    "transform_point",
]
