"""repro: a reproduction of "On Reliable Broadcast in a Radio Network".

Bhandari & Vaidya (PODC 2005 / UIUC technical report, May 2005) study
reliable broadcast on an infinite grid (or finite toroidal) radio network
under *locally bounded* Byzantine and crash-stop failures: an adversary may
place at most ``t`` faults inside any single neighborhood.  Their results:

- Byzantine, L-infinity: achievable iff ``t < r(2r+1)/2`` (exact threshold,
  via a protocol with indirect reports);
- crash-stop, L-infinity: achievable iff ``t < r(2r+1)`` (exact threshold);
- Byzantine, L2 (informal): achievable around ``t < 0.23*pi*r^2``,
  impossible around ``t >= 0.3*pi*r^2``;
- the simple protocol of Koo (CPA) achieves ``t <= (2/3) r^2`` in
  L-infinity.

This package implements the whole stack: lattice geometry, grid/torus
topologies, a TDMA radio simulator with reliable local broadcast, the
locally-bounded fault adversary, all four broadcast protocols, the paper's
constructive proofs as executable witnesses, and an experiment harness that
regenerates every figure/table-shaped result.

Quickstart
----------
>>> from repro import byzantine_broadcast_scenario
>>> scenario = byzantine_broadcast_scenario(r=2, t=4)   # t < r(2r+1)/2 = 5
>>> outcome = scenario.run()
>>> outcome.achieved
True
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    InvalidPlacementError,
    SpoofingError,
    ProtocolViolationError,
    SimulationLimitError,
    WitnessError,
)
from repro.geometry import Point, L1, L2, LINF, get_metric
from repro.grid import Torus, InfiniteGrid, nbd, pnbd
from repro.radio import Engine, run_broadcast, BroadcastOutcome

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "InvalidPlacementError",
    "SpoofingError",
    "ProtocolViolationError",
    "SimulationLimitError",
    "WitnessError",
    "Point",
    "L1",
    "L2",
    "LINF",
    "get_metric",
    "Torus",
    "InfiniteGrid",
    "nbd",
    "pnbd",
    "Engine",
    "run_broadcast",
    "BroadcastOutcome",
]

from repro.core.thresholds import (  # noqa: E402
    byzantine_linf_threshold,
    byzantine_linf_max_t,
    koo_impossibility_bound,
    crash_linf_threshold,
    crash_linf_max_t,
    cpa_linf_bound,
    cpa_linf_max_t,
    threshold_table,
)
from repro.protocols import (  # noqa: E402
    CPAProtocol,
    BVIndirectProtocol,
    BVTwoHopProtocol,
    CrashFloodProtocol,
)
from repro.experiments.scenarios import (  # noqa: E402
    BroadcastScenario,
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    recommended_torus,
    strip_torus,
)

__all__ += [
    "byzantine_linf_threshold",
    "byzantine_linf_max_t",
    "koo_impossibility_bound",
    "crash_linf_threshold",
    "crash_linf_max_t",
    "cpa_linf_bound",
    "cpa_linf_max_t",
    "threshold_table",
    "CPAProtocol",
    "BVIndirectProtocol",
    "BVTwoHopProtocol",
    "CrashFloodProtocol",
    "BroadcastScenario",
    "byzantine_broadcast_scenario",
    "crash_broadcast_scenario",
    "recommended_torus",
    "strip_torus",
]
