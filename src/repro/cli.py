"""Command-line interface: run any registered experiment or a one-off demo.

Usage (``python -m repro ...``)::

    python -m repro list
    python -m repro run EXP-THM45
    python -m repro run EXP-F1_3 --radii 1 2 3
    python -m repro thresholds --radii 1 2 4 8
    python -m repro demo --protocol bv-two-hop --r 2 --t 4 \
        --strategy fabricator --map
    python -m repro sweep byzantine --r 1 --trials 16 --workers 4
    python -m repro trace byzantine --r 2 --t 2 --seed 7 --jsonl run.jsonl
    python -m repro lint src/repro --format json

All output is plain text tables (see
:mod:`repro.experiments.report`); exit status is zero unless the run
errored.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core.thresholds import threshold_table
from repro.experiments.registry import REGISTRY, all_experiments, get_experiment
from repro.experiments.report import format_table
from repro.experiments.scenarios import byzantine_broadcast_scenario
from repro.faults.byzantine import BYZANTINE_STRATEGIES
from repro.grid.factory import TOPOLOGY_KINDS
from repro.protocols.registry import protocol_names
from repro.radio.channel import CHANNEL_MODELS
from repro.viz.ascii_art import render_commit_wave


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "id": e.exp_id,
            "paper": e.paper_ref,
            "description": e.description,
        }
        for e in all_experiments()
    ]
    print(format_table(rows, title="registered experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        exp = get_experiment(args.exp_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    kwargs = {}
    if args.radii:
        kwargs["radii"] = tuple(args.radii)
    rows = exp.run(**kwargs)
    print(format_table(rows, title=f"{exp.exp_id}: {exp.description}"))
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    rows = threshold_table(args.radii or [1, 2, 3, 4, 5])
    print(format_table(rows, title="all bounds per radius"))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = byzantine_broadcast_scenario(
        r=args.r,
        t=args.t,
        protocol=args.protocol,
        strategy=args.strategy,
        placement=args.placement,
        seed=args.seed,
    )
    scenario.validate()
    outcome = scenario.run()
    if args.map:
        print(
            render_commit_wave(
                scenario.topology,
                outcome.result.committed(),
                outcome.value,
                faulty=scenario.faulty_nodes,
            )
        )
        print()
    print(format_table([dict(outcome.summary())], title="outcome"))
    return 0 if outcome.safe else 1


def _cli_backend(args: argparse.Namespace):
    """Resolve the --backend/--worker flags into a SweepExecutor
    ``backend`` argument (``None`` keeps the workers-derived default).

    Raises :class:`~repro.errors.ConfigurationError` on a bad
    combination (e.g. ``--backend socket`` with no ``--worker``).
    """
    if not getattr(args, "backend", None):
        return None
    from repro.exec import make_backend

    return make_backend(
        args.backend,
        workers=args.workers,
        worker_addrs=getattr(args, "worker", None),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.analysis.sweep import byzantine_sharpness_run, crash_sharpness_run
    from repro.core.thresholds import (
        byzantine_linf_max_t,
        crash_linf_max_t,
        koo_impossibility_bound,
        crash_linf_threshold,
    )
    from repro.exec import ResultCache, SweepExecutor, default_cache_dir

    if args.resume and args.no_cache:
        print(
            "repro sweep: --resume needs the cache; drop --no-cache",
            file=sys.stderr,
        )
        return 2
    if args.engine == "fastpath" and args.kind == "byzantine":
        from repro.radio.engines import (
            FASTPATH_BYZANTINE_PROTOCOLS,
            FASTPATH_FIXED_STRATEGIES,
        )

        byz_protocol = args.protocol or "bv-two-hop"
        if byz_protocol not in FASTPATH_BYZANTINE_PROTOCOLS:
            print(
                f"repro sweep: protocol {byz_protocol!r} has no "
                "Byzantine-capable fastpath kernel (supported: "
                f"{FASTPATH_BYZANTINE_PROTOCOLS}); drop --engine fastpath",
                file=sys.stderr,
            )
            return 2
        if args.strategy not in FASTPATH_FIXED_STRATEGIES:
            print(
                f"repro sweep: Byzantine strategy {args.strategy!r} runs "
                "arbitrary node code (no fixed-strategy kernel; "
                f"supported: {FASTPATH_FIXED_STRATEGIES}); drop "
                "--engine fastpath",
                file=sys.stderr,
            )
            return 2
    cache = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        )
        cache = ResultCache(cache_dir)
    from repro.errors import ConfigurationError

    try:
        backend = _cli_backend(args)
    except ConfigurationError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    executor = SweepExecutor(
        workers=args.workers, cache=cache, backend=backend
    )

    if args.budgets:
        budgets = list(args.budgets)
    elif args.kind == "byzantine":
        budgets = list(range(0, koo_impossibility_bound(args.r) + 2))
    else:
        budgets = list(range(0, crash_linf_threshold(args.r) + 2))

    if args.resume:
        from repro.exec import ScenarioSpec

        specs = [
            ScenarioSpec(
                kind=args.kind,
                r=args.r,
                t=t,
                trials=args.trials,
                protocol=args.protocol
                or ("bv-two-hop" if args.kind == "byzantine" else "crash-flood"),
                strategy=args.strategy if args.kind == "byzantine" else None,
                placement="random",
                metric=args.metric,
                engine=args.engine,
                topology=args.topology,
                channel=args.channel,
            )
            for t in budgets
        ]
        done, total = executor.checkpointed(specs, root_seed=args.seed)
        print(f"resume: {done}/{total} work units already checkpointed")

    protocol = args.protocol or (
        "bv-two-hop" if args.kind == "byzantine" else "crash-flood"
    )
    from repro.errors import ConfigurationError

    try:
        if args.kind == "byzantine":
            run = byzantine_sharpness_run(
                args.r,
                budgets,
                protocol=protocol,
                strategy=args.strategy,
                trials=args.trials,
                seed=args.seed,
                executor=executor,
                engine=args.engine,
                metric=args.metric,
                topology=args.topology,
                channel=args.channel,
            )
            threshold = byzantine_linf_max_t(args.r)
        else:
            run = crash_sharpness_run(
                args.r,
                budgets,
                trials=args.trials,
                seed=args.seed,
                executor=executor,
                engine=args.engine,
                metric=args.metric,
                topology=args.topology,
                channel=args.channel,
            )
            threshold = crash_linf_max_t(args.r)
    except ConfigurationError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2

    rows = []
    for pt in run.points:
        entry = pt.row()
        if args.metric == "linf" and args.topology == "torus":
            entry["regime"] = (
                "guaranteed" if pt.t <= threshold else "beyond threshold"
            )
        else:
            # the exact thresholds are L-infinity torus results; other
            # axis levels have no proven guarantee line to annotate
            entry["regime"] = "empirical"
        rows.append(entry)
    stats = run.stats.as_dict()
    print(
        format_table(
            rows,
            title=f"sweep: {args.kind} r={args.r} trials={args.trials} "
            f"seed={args.seed} ({protocol}, {args.metric}/{args.topology}"
            f"/{args.channel})",
        )
    )
    print()
    print(format_table([stats], title="execution stats"))
    if args.json:
        report = {
            "kind": args.kind,
            "r": args.r,
            "protocol": protocol,
            "strategy": args.strategy if args.kind == "byzantine" else None,
            "metric": args.metric,
            "topology": args.topology,
            "channel": args.channel,
            "trials": args.trials,
            "seed": args.seed,
            "budgets": budgets,
            "points": rows,
            "stats": stats,
        }
        pathlib.Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_runtable(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.errors import ConfigurationError
    from repro.exec import (
        ResultCache,
        SweepExecutor,
        default_cache_dir,
        execute_runtable,
        load_runtable,
    )

    try:
        table = load_runtable(args.table)
        units = table.expand()
    except (ConfigurationError, OSError) as exc:
        print(f"repro runtable: {exc}", file=sys.stderr)
        return 2

    if args.expand_only:
        expansion = {
            "schema": table.as_dict()["schema"],
            "table": table.as_dict(),
            "runs": [u.as_dict() for u in units],
        }
        rendered = json.dumps(expansion, indent=2, sort_keys=True) + "\n"
        if args.json:
            pathlib.Path(args.json).write_text(rendered)
            print(f"wrote {args.json} ({len(units)} run(s))")
        else:
            print(rendered, end="")
        return 0

    cache = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        )
        cache = ResultCache(cache_dir)
    try:
        backend = _cli_backend(args)
        executor = SweepExecutor(
            workers=args.workers, cache=cache, backend=backend
        )
        result = execute_runtable(table, executor=executor, root_seed=args.seed)
    except ConfigurationError as exc:
        print(f"repro runtable: {exc}", file=sys.stderr)
        return 2

    report = result.report()
    rows = [
        dict({"run_id": run["run_id"]}, **run["summary"])
        for run in report["runs"]
    ]
    print(
        format_table(
            rows,
            title=f"runtable: {table.name} ({table.num_runs()} run(s) x "
            f"{table.repetitions} trial(s), seed={args.seed})",
        )
    )
    print()
    print(format_table([report["stats"]], title="execution stats"))
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.scenarios import crash_broadcast_scenario
    from repro.experiments.report import latency_rows, wavefront_rows
    from repro.obs import (
        JsonlRecorder,
        PhaseProfiler,
        RunMetrics,
        metrics_summary,
    )

    if args.engine == "fastpath" and (
        args.jsonl or args.deliveries or args.profile
    ):
        print(
            "repro trace: --jsonl / --deliveries / --profile need the "
            "per-event reference engine; drop --engine fastpath",
            file=sys.stderr,
        )
        return 2
    if args.kind == "byzantine":
        scenario = byzantine_broadcast_scenario(
            r=args.r,
            t=args.t,
            protocol=args.protocol or "bv-two-hop",
            strategy=args.strategy,
            placement=args.placement,
            seed=args.seed,
            engine=args.engine,
        )
    else:
        scenario = crash_broadcast_scenario(
            r=args.r,
            t=args.t,
            placement=args.placement,
            seed=args.seed,
            protocol=args.protocol or "crash-flood",
            engine=args.engine,
        )
    metrics = RunMetrics(source=scenario.source)
    recorder = None
    if args.engine != "fastpath":
        # the fastpath backend keeps no per-event stream to record
        recorder = JsonlRecorder(record_deliveries=args.deliveries)
    profiler = PhaseProfiler() if args.profile else None
    observers = (metrics, recorder) if recorder is not None else (metrics,)
    outcome = scenario.run(observers=observers, profiler=profiler)
    summary = metrics_summary(metrics)
    if args.jsonl:
        count = recorder.dump(args.jsonl)
        print(f"wrote {count} events to {args.jsonl}")
    if args.summary:
        import pathlib

        pathlib.Path(args.summary).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.summary}")
    print(format_table([dict(outcome.summary())], title="outcome"))
    print()
    print(
        format_table(
            wavefront_rows(summary),
            title=f"wave front from source {scenario.source} "
            f"(commits={summary['commits']}, crashes={summary['crashes']})",
        )
    )
    print()
    print(format_table(latency_rows(summary), title="commit latency"))
    if profiler is not None:
        print()
        print(format_table(profiler.rows(), title="engine phase profile"))
    return 0 if outcome.safe else 1


def _cmd_adversary(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.adversary import SearchConfig, certify_result, run_search
    from repro.exec import ResultCache, default_cache_dir

    if args.engine == "fastpath" and args.kind == "byzantine":
        from repro.radio.engines import (
            FASTPATH_BYZANTINE_PROTOCOLS,
            FASTPATH_FIXED_STRATEGIES,
        )

        byz_protocol = args.protocol or "bv-two-hop"
        if byz_protocol not in FASTPATH_BYZANTINE_PROTOCOLS:
            print(
                f"repro adversary: protocol {byz_protocol!r} has no "
                "Byzantine-capable fastpath kernel (supported: "
                f"{FASTPATH_BYZANTINE_PROTOCOLS}); drop --engine fastpath",
                file=sys.stderr,
            )
            return 2
        if args.byz_strategy not in FASTPATH_FIXED_STRATEGIES:
            print(
                f"repro adversary: Byzantine strategy "
                f"{args.byz_strategy!r} runs arbitrary node code (no "
                "fixed-strategy kernel; supported: "
                f"{FASTPATH_FIXED_STRATEGIES}); drop --engine fastpath",
                file=sys.stderr,
            )
            return 2
    cache = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        )
        cache = ResultCache(cache_dir)
    config = SearchConfig(
        kind=args.kind,
        r=args.r,
        t=args.t,
        protocol=args.protocol or "",
        byz_strategy=args.byz_strategy,
        torus_side=args.side,
        max_rounds=args.max_rounds,
        seed=args.seed,
        eval_budget=args.budget,
    )
    result = run_search(
        config,
        strategy=args.strategy,
        workers=args.workers,
        cache=cache,
        engine=args.engine,
    )
    summary = {
        "kind": args.kind,
        "strategy": args.strategy,
        "t": args.t,
        "r": args.r,
        "defeated": result.defeated,
        "evaluations": result.evaluations,
        "best_value": round(result.best_score.value, 2),
        "faults": len(result.best_faults),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
    }
    print(format_table([summary], title="adversary search"))
    report = result.as_dict()
    if result.defeated:
        cert = certify_result(result)
        report["certificate"] = cert.as_dict()
        print()
        print(
            format_table(
                [
                    {
                        "worst_nbd": cert.worst_nbd,
                        "budget_t": config.t,
                        "defeated": cert.defeated,
                        "trace_events": cert.trace_events,
                        "trace_sha256": cert.trace_sha256[:16],
                    }
                ],
                title="certificate (re-validated + replayed)",
            )
        )
        if args.trace:
            cert.write_trace(args.trace)
            print(f"wrote {cert.trace_events} events to {args.trace}")
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.exec import ResultCache, default_cache_dir
    from repro.serve import CampaignService, make_server

    cache = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        )
        cache = ResultCache(cache_dir)
    service = CampaignService(
        cache=cache,
        backend=args.backend,
        workers=args.workers,
        worker_addrs=args.worker,
    )
    # bind first so the banner carries the real port (matters for --port 0)
    server = make_server(service, host=args.host, port=args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(backend={args.backend}, cache={'off' if cache is None else cache.root})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.exec import WorkerServer

    worker = WorkerServer(
        host=args.host, port=args.port, max_units=args.max_units
    )
    address = worker.start()
    print(
        f"repro worker: listening on {address[0]}:{address[1]}", flush=True
    )
    try:
        while not worker.join(timeout=1.0):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        worker.stop()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from repro.lint import (
        all_rules,
        format_json,
        format_sarif,
        format_text,
        lint_paths,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            tag = " [deep]" if rule.deep else ""
            print(f"{rule.rule_id:24s} {rule.description}{tag}")
        return 0
    if args.write_baseline and not args.baseline:
        print(
            "repro lint: --write-baseline requires --baseline PATH",
            file=sys.stderr,
        )
        return 2
    if args.paths:
        paths = list(args.paths)
    else:
        # default: the installed repro package itself
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        report = lint_paths(
            paths,
            rule_ids,
            deep=args.deep,
            # when (re)writing, a missing baseline is fine (first run);
            # when gating, a missing baseline is a usage error
            baseline_path=args.baseline
            if args.baseline
            and (not args.write_baseline or os.path.exists(args.baseline))
            else None,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro lint: {message}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(args.baseline, report)
        print(
            f"wrote {args.baseline}: {count} baselined finding(s) "
            f"({len(report.findings)} newly accepted)"
        )
        return 0
    if args.sarif:
        pathlib.Path(args.sarif).write_text(format_sarif(report) + "\n")
    if args.format == "json":
        rendered = format_json(report)
    elif args.format == "sarif":
        rendered = format_sarif(report)
    else:
        rendered = format_text(report)
    print(rendered)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On Reliable Broadcast in a Radio "
        "Network' (Bhandari & Vaidya, PODC 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment by id")
    p_run.add_argument("exp_id", help=f"one of {sorted(REGISTRY)}")
    p_run.add_argument(
        "--radii", nargs="+", type=int, help="override the radius sweep"
    )
    p_run.set_defaults(func=_cmd_run)

    p_thr = sub.add_parser("thresholds", help="print the bound table")
    p_thr.add_argument("--radii", nargs="+", type=int)
    p_thr.set_defaults(func=_cmd_thresholds)

    p_demo = sub.add_parser("demo", help="run a single broadcast scenario")
    p_demo.add_argument(
        "--protocol", default="bv-two-hop", choices=sorted(protocol_names())
    )
    p_demo.add_argument("--r", type=int, default=2)
    p_demo.add_argument("--t", type=int, default=4)
    p_demo.add_argument(
        "--strategy",
        default="fabricator",
        choices=sorted(BYZANTINE_STRATEGIES),
    )
    p_demo.add_argument(
        "--placement", default="strip", choices=["strip", "random"]
    )
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--map", action="store_true", help="print the commit-wave map"
    )
    p_demo.set_defaults(func=_cmd_demo)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a threshold-sharpness sweep (parallel + cached)",
        description="Fan randomized sharpness trials over a worker pool "
        "with deterministic per-trial seeding and on-disk work-unit "
        "caching (see docs/EXECUTION.md). Aggregates are byte-identical "
        "for any --workers value; rerunning an identical sweep is pure "
        "cache hits.",
    )
    p_sweep.add_argument(
        "kind", choices=["byzantine", "crash"], help="fault model to sweep"
    )
    p_sweep.add_argument("--r", type=int, default=1, help="radius")
    p_sweep.add_argument(
        "--budgets",
        nargs="+",
        type=int,
        help="fault budgets t to sweep (default: 0..impossibility+1)",
    )
    p_sweep.add_argument(
        "--trials", type=int, default=8, help="random placements per budget"
    )
    p_sweep.add_argument("--seed", type=int, default=0, help="root seed")
    p_sweep.add_argument(
        "--protocol",
        choices=sorted(protocol_names()),
        help="protocol (default: bv-two-hop / crash-flood by kind)",
    )
    p_sweep.add_argument(
        "--strategy",
        default="fabricator",
        choices=sorted(BYZANTINE_STRATEGIES),
        help="Byzantine strategy (ignored for crash sweeps)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    p_sweep.add_argument(
        "--backend",
        choices=["serial", "pool", "socket"],
        help="execution backend (default: serial for --workers 1, else "
        "pool; socket needs --worker, see docs/SERVICE.md)",
    )
    p_sweep.add_argument(
        "--worker",
        action="append",
        metavar="HOST:PORT",
        help="socket-backend worker address (repeatable)",
    )
    p_sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the work-unit cache entirely (no reads, no writes)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="report how many work units a prior (possibly interrupted) "
        "run already checkpointed, then continue from them",
    )
    p_sweep.add_argument(
        "--cache-dir",
        help="cache root (default: $REPRO_CACHE_DIR or "
        "benchmarks/results/cache)",
    )
    p_sweep.add_argument(
        "--json", help="also write a JSON report (points + stats) here"
    )
    p_sweep.add_argument(
        "--engine",
        choices=["reference", "fastpath"],
        default="reference",
        help="simulation backend (fastpath: vectorized crash-flood/"
        "bv-two-hop/cpa, fixed-strategy Byzantine on cpa; identical "
        "results and cache keys, see docs/ENGINES.md)",
    )
    p_sweep.add_argument(
        "--metric",
        choices=["linf", "l1", "l2"],
        default="linf",
        help="distance metric axis (default: the paper's L-infinity)",
    )
    p_sweep.add_argument(
        "--topology",
        choices=list(TOPOLOGY_KINDS),
        default="torus",
        help="topology axis (see docs/TOPOLOGIES.md)",
    )
    p_sweep.add_argument(
        "--channel",
        choices=list(CHANNEL_MODELS),
        default="ideal",
        help="channel-model axis (lossy/jammed need --engine reference)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_rt = sub.add_parser(
        "runtable",
        help="expand and execute a declarative run table",
        description="Read a JSON run table (factors x levels x "
        "repetitions, see docs/TOPOLOGIES.md), expand it to the cartesian "
        "product of scenario work units, and execute them through the "
        "parallel cached sweep layer. Expansion is deterministic and "
        "duplicate-free; rerunning an identical table against a warm "
        "cache is 100% cache hits.",
    )
    p_rt.add_argument("table", help="path to the run-table JSON file")
    p_rt.add_argument(
        "--expand-only",
        action="store_true",
        help="print the expanded run units (no simulation)",
    )
    p_rt.add_argument("--seed", type=int, default=0, help="root seed")
    p_rt.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    p_rt.add_argument(
        "--backend",
        choices=["serial", "pool", "socket"],
        help="execution backend (default: serial for --workers 1, else "
        "pool; socket needs --worker, see docs/SERVICE.md)",
    )
    p_rt.add_argument(
        "--worker",
        action="append",
        metavar="HOST:PORT",
        help="socket-backend worker address (repeatable)",
    )
    p_rt.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the work-unit cache entirely (no reads, no writes)",
    )
    p_rt.add_argument(
        "--cache-dir",
        help="cache root (default: $REPRO_CACHE_DIR or "
        "benchmarks/results/cache)",
    )
    p_rt.add_argument(
        "--json",
        help="write the JSON report (table + per-run rows + stats) here",
    )
    p_rt.set_defaults(func=_cmd_runtable)

    p_trace = sub.add_parser(
        "trace",
        help="replay one scenario with observability attached",
        description="Run a single fixed-seed scenario with the repro.obs "
        "instrumentation: dump the deterministic JSONL event stream "
        "(byte-identical across runs for the same seed), write the "
        "schema-versioned metrics summary, and print wave-front / "
        "commit-latency tables (see docs/OBSERVABILITY.md).",
    )
    p_trace.add_argument(
        "kind", choices=["byzantine", "crash"], help="scenario family"
    )
    p_trace.add_argument("--r", type=int, default=2, help="radius")
    p_trace.add_argument("--t", type=int, default=2, help="fault budget")
    p_trace.add_argument("--seed", type=int, default=0, help="scenario seed")
    p_trace.add_argument(
        "--protocol",
        choices=sorted(protocol_names()),
        help="protocol (default: bv-two-hop / crash-flood by kind)",
    )
    p_trace.add_argument(
        "--strategy",
        default="fabricator",
        choices=sorted(BYZANTINE_STRATEGIES),
        help="Byzantine strategy (ignored for crash scenarios)",
    )
    p_trace.add_argument(
        "--placement", default="random", choices=["strip", "random"]
    )
    p_trace.add_argument("--jsonl", help="write the JSONL event stream here")
    p_trace.add_argument(
        "--summary", help="write the JSON metrics summary here"
    )
    p_trace.add_argument(
        "--deliveries",
        action="store_true",
        help="also record one JSONL event per actual delivery (large)",
    )
    p_trace.add_argument(
        "--profile",
        action="store_true",
        help="print wall-clock phase profile of the engine hot loop",
    )
    p_trace.add_argument(
        "--engine",
        choices=["reference", "fastpath"],
        default="reference",
        help="simulation backend; fastpath has no per-event stream, so "
        "--jsonl/--deliveries/--profile require reference",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_adv = sub.add_parser(
        "adversary",
        help="search for a worst-case fault placement",
        description="Automated adversary search (see docs/ADVERSARY.md): "
        "explore valid locally-bounded placements for one that defeats "
        "reliable broadcast, evaluating candidates in parallel with "
        "work-unit caching. A found counterexample is independently "
        "re-validated and replayed to a deterministic JSONL trace.",
    )
    p_adv.add_argument(
        "kind", choices=["byzantine", "crash"], help="fault model to attack"
    )
    p_adv.add_argument("--r", type=int, default=1, help="radius")
    p_adv.add_argument("--t", type=int, default=2, help="fault budget")
    p_adv.add_argument(
        "--strategy",
        default="anneal",
        choices=["greedy", "hill-climb", "anneal"],
        help="search strategy",
    )
    p_adv.add_argument(
        "--protocol",
        choices=sorted(protocol_names()),
        help="protocol (default: bv-two-hop / crash-flood by kind)",
    )
    p_adv.add_argument(
        "--byz-strategy",
        default="silent",
        choices=sorted(BYZANTINE_STRATEGIES),
        help="Byzantine message strategy (ignored for crash searches)",
    )
    p_adv.add_argument(
        "--budget",
        type=int,
        default=48,
        help="max placement evaluations (simulator runs)",
    )
    p_adv.add_argument("--seed", type=int, default=0, help="search seed")
    p_adv.add_argument(
        "--side", type=int, help="torus side (default: the strip torus)"
    )
    p_adv.add_argument(
        "--max-rounds", type=int, default=120, help="simulation round cap"
    )
    p_adv.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    p_adv.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the work-unit cache entirely (no reads, no writes)",
    )
    p_adv.add_argument(
        "--cache-dir",
        help="cache root (default: $REPRO_CACHE_DIR or "
        "benchmarks/results/cache)",
    )
    p_adv.add_argument(
        "--trace", help="write the certificate's JSONL trace here"
    )
    p_adv.add_argument(
        "--json", help="write the full search report (+certificate) here"
    )
    p_adv.add_argument(
        "--engine",
        choices=["reference", "fastpath"],
        default="reference",
        help="evaluation backend (certification always replays on "
        "reference); fastpath needs kind=crash, or kind=byzantine with "
        "a cpa + fixed-strategy search",
    )
    p_adv.set_defaults(func=_cmd_adversary)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived sweep campaign service",
        description="Start an HTTP campaign service (stdlib http.server, "
        "see docs/SERVICE.md): POST /sweeps submits and executes a sweep "
        "against the shared content-addressed result store, GET /metrics "
        "exposes Prometheus text metrics. Identical submissions return "
        "byte-identical rows, the second entirely from cache.",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0: ephemeral)"
    )
    p_serve.add_argument(
        "--backend",
        choices=["serial", "pool", "socket"],
        default="serial",
        help="default execution backend for submissions",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, help="pool-backend workers"
    )
    p_serve.add_argument(
        "--worker",
        action="append",
        metavar="HOST:PORT",
        help="socket-backend worker address (repeatable)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the shared result store (recompute always)",
    )
    p_serve.add_argument(
        "--cache-dir",
        help="cache root (default: $REPRO_CACHE_DIR or "
        "benchmarks/results/cache)",
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress the access log"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="run one socket-backend execution worker",
        description="Start a long-lived work-unit executor for the socket "
        "backend (see docs/SERVICE.md): it handshakes repro version + "
        "cache-key schema with each coordinator, then executes shipped "
        "work units until stopped.",
    )
    p_worker.add_argument("--host", default="127.0.0.1", help="bind address")
    p_worker.add_argument(
        "--port", type=int, default=0, help="bind port (0: ephemeral)"
    )
    p_worker.add_argument(
        "--max-units",
        type=int,
        help="exit abruptly after N units (failure-injection testing)",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_lint = sub.add_parser(
        "lint",
        help="statically check simulator-model invariants",
        description="AST-based invariant linter (see repro.lint). Exit "
        "status: 0 clean, 1 findings, 2 unparseable files or bad usage.",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format",
    )
    p_lint.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    p_lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program analysis passes "
        "(nondet-taint, cache-key-soundness, fork-safety)",
    )
    p_lint.add_argument(
        "--sarif",
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="fingerprint baseline: matching findings are reported "
        "but do not fail the run",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into --baseline and exit 0",
    )
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
