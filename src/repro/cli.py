"""Command-line interface: run any registered experiment or a one-off demo.

Usage (``python -m repro ...``)::

    python -m repro list
    python -m repro run EXP-THM45
    python -m repro run EXP-F1_3 --radii 1 2 3
    python -m repro thresholds --radii 1 2 4 8
    python -m repro demo --protocol bv-two-hop --r 2 --t 4 \
        --strategy fabricator --map
    python -m repro lint src/repro --format json

All output is plain text tables (see
:mod:`repro.experiments.report`); exit status is zero unless the run
errored.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core.thresholds import threshold_table
from repro.experiments.registry import REGISTRY, all_experiments, get_experiment
from repro.experiments.report import format_table
from repro.experiments.scenarios import byzantine_broadcast_scenario
from repro.faults.byzantine import BYZANTINE_STRATEGIES
from repro.protocols.registry import protocol_names
from repro.viz.ascii_art import render_commit_wave


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "id": e.exp_id,
            "paper": e.paper_ref,
            "description": e.description,
        }
        for e in all_experiments()
    ]
    print(format_table(rows, title="registered experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        exp = get_experiment(args.exp_id)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    kwargs = {}
    if args.radii:
        kwargs["radii"] = tuple(args.radii)
    rows = exp.run(**kwargs)
    print(format_table(rows, title=f"{exp.exp_id}: {exp.description}"))
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    rows = threshold_table(args.radii or [1, 2, 3, 4, 5])
    print(format_table(rows, title="all bounds per radius"))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = byzantine_broadcast_scenario(
        r=args.r,
        t=args.t,
        protocol=args.protocol,
        strategy=args.strategy,
        placement=args.placement,
        seed=args.seed,
    )
    scenario.validate()
    outcome = scenario.run()
    if args.map:
        print(
            render_commit_wave(
                scenario.topology,
                outcome.result.committed(),
                outcome.value,
                faulty=scenario.faulty_nodes,
            )
        )
        print()
    print(format_table([dict(outcome.summary())], title="outcome"))
    return 0 if outcome.safe else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, format_json, format_text, lint_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:24s} {rule.description}")
        return 0
    if args.paths:
        paths = list(args.paths)
    else:
        # default: the installed repro package itself
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        report = lint_paths(paths, rule_ids)
    except (FileNotFoundError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro lint: {message}", file=sys.stderr)
        return 2
    rendered = (
        format_json(report) if args.format == "json" else format_text(report)
    )
    print(rendered)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On Reliable Broadcast in a Radio "
        "Network' (Bhandari & Vaidya, PODC 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment by id")
    p_run.add_argument("exp_id", help=f"one of {sorted(REGISTRY)}")
    p_run.add_argument(
        "--radii", nargs="+", type=int, help="override the radius sweep"
    )
    p_run.set_defaults(func=_cmd_run)

    p_thr = sub.add_parser("thresholds", help="print the bound table")
    p_thr.add_argument("--radii", nargs="+", type=int)
    p_thr.set_defaults(func=_cmd_thresholds)

    p_demo = sub.add_parser("demo", help="run a single broadcast scenario")
    p_demo.add_argument(
        "--protocol", default="bv-two-hop", choices=sorted(protocol_names())
    )
    p_demo.add_argument("--r", type=int, default=2)
    p_demo.add_argument("--t", type=int, default=4)
    p_demo.add_argument(
        "--strategy",
        default="fabricator",
        choices=sorted(BYZANTINE_STRATEGIES),
    )
    p_demo.add_argument(
        "--placement", default="strip", choices=["strip", "random"]
    )
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--map", action="store_true", help="print the commit-wave map"
    )
    p_demo.set_defaults(func=_cmd_demo)

    p_lint = sub.add_parser(
        "lint",
        help="statically check simulator-model invariants",
        description="AST-based invariant linter (see repro.lint). Exit "
        "status: 0 clean, 1 findings, 2 unparseable files or bad usage.",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format",
    )
    p_lint.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
