"""Vertex-disjoint paths via vertex-capacitated max flow (Menger).

The paper's sufficiency arguments hinge on counting *node-disjoint* paths
between a frontier node and an already-committed neighborhood (Theorem 3's
``r(2r+1)`` paths, Section V's ``2f+1``-connectivity condition).  This
module computes, for any adjacency map, the maximum number of internally
vertex-disjoint paths between two nodes -- the local vertex connectivity,
by Menger's theorem equal to a max flow where every *internal* vertex has
capacity one.

Implementation: standard vertex splitting (``v`` becomes ``v_in -> v_out``
with capacity 1) followed by BFS augmentation (Edmonds-Karp).  Each
augmentation adds one disjoint path, and the number of paths is bounded by
the neighborhood degree, so the ``O(paths * E)`` cost is small for every
instance in this library.  Tests cross-check against ``networkx`` where it
is installed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]

# In the split graph every node v becomes (v, "in") and (v, "out").
_IN = 0
_OUT = 1


def _build_residual(
    adj: Adjacency, allowed: Optional[Set[Node]]
) -> Dict[Tuple[Node, int], Dict[Tuple[Node, int], int]]:
    """Residual capacity graph with vertex splitting.

    Every vertex contributes ``v_in -> v_out`` capacity 1; every undirected
    edge ``{u, v}`` contributes ``u_out -> v_in`` and ``v_out -> u_in``
    with capacity 1.  Unit edge capacity is exact for *internally*
    vertex-disjoint paths: two such paths can never share an edge (they
    would share its endpoints), and it is what bounds the flow when the
    source and sink are adjacent -- the direct edge is one path, not
    infinitely many.
    """
    residual: Dict[Tuple[Node, int], Dict[Tuple[Node, int], int]] = {}

    def node_ok(v: Node) -> bool:
        return allowed is None or v in allowed

    for u, nbrs in adj.items():
        if not node_ok(u):
            continue
        residual.setdefault((u, _IN), {})[(u, _OUT)] = 1
        residual.setdefault((u, _OUT), {})
        for v in nbrs:
            if not node_ok(v) or v == u:
                continue
            residual.setdefault((u, _OUT), {})[(v, _IN)] = 1
            residual.setdefault((v, _IN), {}).setdefault((v, _OUT), 1)
            residual.setdefault((v, _OUT), {})
    return residual


def _bfs_augment(
    residual: Dict[Tuple[Node, int], Dict[Tuple[Node, int], int]],
    s: Tuple[Node, int],
    t: Tuple[Node, int],
) -> Optional[List[Tuple[Node, int]]]:
    """Shortest augmenting path in the residual graph, or ``None``."""
    parents: Dict[Tuple[Node, int], Tuple[Node, int]] = {s: s}
    frontier = [s]
    while frontier:
        nxt: List[Tuple[Node, int]] = []
        for u in frontier:
            for v, cap in residual.get(u, {}).items():
                if cap <= 0 or v in parents:
                    continue
                parents[v] = u
                if v == t:
                    path = [t]
                    while path[-1] != s:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                nxt.append(v)
        frontier = nxt
    return None


def max_vertex_disjoint_paths(
    adj: Adjacency,
    source: Node,
    sink: Node,
    *,
    allowed: Optional[Iterable[Node]] = None,
    cap: Optional[int] = None,
) -> int:
    """Maximum number of internally vertex-disjoint source-sink paths.

    Parameters
    ----------
    adj:
        Undirected adjacency map (directed input also works; each listed
        arc is used as given).
    allowed:
        If given, restrict paths to these vertices (the paper's "all lie
        within some single neighborhood" restriction).  ``source`` and
        ``sink`` must be allowed.
    cap:
        Stop augmenting once this many paths are found (the commit rules
        only care whether a bound is reached).

    If ``source`` and ``sink`` are adjacent, the direct edge counts as one
    path (it has no internal vertices and is disjoint from everything).
    """
    allowed_set = set(allowed) if allowed is not None else None
    if allowed_set is not None:
        if source not in allowed_set or sink not in allowed_set:
            return 0
    if source == sink:
        raise ValueError("source and sink must differ")
    residual = _build_residual(adj, allowed_set)
    s = (source, _OUT)
    t = (sink, _IN)
    if s not in residual or t not in residual:
        return 0
    # The source and sink own vertex capacities must not limit the count.
    flow = 0
    while cap is None or flow < cap:
        path = _bfs_augment(residual, s, t)
        if path is None:
            break
        for a, b in zip(path, path[1:]):
            residual[a][b] -= 1
            residual.setdefault(b, {})
            residual[b][a] = residual[b].get(a, 0) + 1
        flow += 1
    return flow


def vertex_disjoint_paths(
    adj: Adjacency,
    source: Node,
    sink: Node,
    *,
    allowed: Optional[Iterable[Node]] = None,
    cap: Optional[int] = None,
) -> List[List[Node]]:
    """Materialize a maximum family of internally vertex-disjoint paths.

    Runs the same flow as :func:`max_vertex_disjoint_paths`, then
    decomposes the flow into paths.  Returned paths include the endpoints.
    """
    allowed_set = set(allowed) if allowed is not None else None
    if allowed_set is not None and (
        source not in allowed_set or sink not in allowed_set
    ):
        return []
    if source == sink:
        raise ValueError("source and sink must differ")
    residual = _build_residual(adj, allowed_set)
    s = (source, _OUT)
    t = (sink, _IN)
    if s not in residual or t not in residual:
        return []
    original = {u: dict(vs) for u, vs in residual.items()}
    flow = 0
    while cap is None or flow < cap:
        path = _bfs_augment(residual, s, t)
        if path is None:
            break
        for a, b in zip(path, path[1:]):
            residual[a][b] -= 1
            residual.setdefault(b, {})
            residual[b][a] = residual[b].get(a, 0) + 1
        flow += 1
    # Flow decomposition: follow saturated arcs from s.
    used: Dict[Tuple[Node, int], Dict[Tuple[Node, int], int]] = {}
    for u, vs in original.items():
        for v, cap0 in vs.items():
            sent = cap0 - residual.get(u, {}).get(v, cap0)
            if sent > 0:
                used.setdefault(u, {})[v] = sent
    paths: List[List[Node]] = []
    for _ in range(flow):
        path_nodes: List[Node] = [source]
        cur = s
        guard = 0
        while cur != t:
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise RuntimeError("flow decomposition did not terminate")
            nxt = next(v for v, amt in used[cur].items() if amt > 0)
            used[cur][nxt] -= 1
            if nxt[1] == _IN and nxt[0] != path_nodes[-1]:
                path_nodes.append(nxt[0])
            cur = nxt
        paths.append(path_nodes)
    return paths


def local_vertex_connectivity(adj: Adjacency, source: Node, sink: Node) -> int:
    """Menger local connectivity (alias with no restriction or cap)."""
    return max_vertex_disjoint_paths(adj, source, sink)
