"""Maximum cardinality matching in general graphs (Edmonds' blossom
algorithm).

Why this lives here: the two-hop Bhandari-Vaidya commit rule packs
node-disjoint evidence chains of size at most two -- and maximum set
packing with sets of size <= 2 *is* maximum matching (a pair ``{a, b}``
is the edge ``a-b``; a singleton ``{a}`` is an edge from ``a`` to a
private auxiliary vertex).  Branch-and-bound handles the typical case
fine but degrades exactly where the protocol needs certainty the most:
proving that *no* ``t+1``-packing exists at the impossibility bound.
Matching answers that in polynomial time, exactly.

Implementation: the classic O(V^3) formulation with blossom contraction
via base pointers (Galil's presentation).  Tested against ``networkx``
on randomized graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Node = Hashable


def max_cardinality_matching(
    edges: Iterable[Tuple[Node, Node]],
) -> Dict[Node, Node]:
    """Maximum matching of an undirected graph given as an edge list.

    Returns the matching as a symmetric dict (``m[u] == v`` iff
    ``m[v] == u``).  Self-loops are ignored; parallel edges are harmless.
    """
    # -- index nodes ----------------------------------------------------
    index: Dict[Node, int] = {}
    names: List[Node] = []
    adj: List[List[int]] = []

    def idx(v: Node) -> int:
        i = index.get(v)
        if i is None:
            i = len(names)
            index[v] = i
            names.append(v)
            adj.append([])
        return i

    for u, v in edges:
        if u == v:
            continue
        ui, vi = idx(u), idx(v)
        adj[ui].append(vi)
        adj[vi].append(ui)

    n = len(names)
    match: List[int] = [-1] * n
    parent: List[int] = [-1] * n
    base: List[int] = list(range(n))
    used: List[bool] = [False] * n
    blossom: List[bool] = [False] * n

    def lca(a: int, b: int) -> int:
        used_path = [False] * n
        while True:
            a = base[a]
            used_path[a] = True
            if match[a] == -1:
                break
            a = parent[match[a]]
        while True:
            b = base[b]
            if used_path[b]:
                return b
            b = parent[match[b]]

    def mark_path(v: int, b: int, child: int) -> None:
        while base[v] != b:
            blossom[base[v]] = True
            blossom[base[match[v]]] = True
            parent[v] = child
            child = match[v]
            v = parent[match[v]]

    def find_path(root: int) -> int:
        nonlocal parent, base, used, blossom
        used = [False] * n
        parent = [-1] * n
        base = list(range(n))
        used[root] = True
        queue = [root]
        while queue:
            v = queue.pop(0)
            for to in adj[v]:
                if base[v] == base[to] or match[v] == to:
                    continue
                if to == root or (
                    match[to] != -1 and parent[match[to]] != -1
                ):
                    # odd cycle: contract the blossom
                    curbase = lca(v, to)
                    blossom = [False] * n
                    mark_path(v, curbase, to)
                    mark_path(to, curbase, v)
                    for i in range(n):
                        if blossom[base[i]]:
                            base[i] = curbase
                            if not used[i]:
                                used[i] = True
                                queue.append(i)
                elif parent[to] == -1:
                    parent[to] = v
                    if match[to] == -1:
                        return to  # augmenting path found
                    used[match[to]] = True
                    queue.append(match[to])
        return -1

    for v in range(n):
        if match[v] == -1:
            u = find_path(v)
            if u == -1:
                continue
            # augment along the found path
            while u != -1:
                pv = parent[u]
                ppv = match[pv]
                match[u] = pv
                match[pv] = u
                u = ppv

    return {
        names[v]: names[match[v]] for v in range(n) if match[v] != -1
    }


def matching_size(edges: Iterable[Tuple[Node, Node]]) -> int:
    """Cardinality of a maximum matching."""
    return len(max_cardinality_matching(edges)) // 2


def max_small_set_packing(
    sets: Sequence[frozenset],
) -> List[frozenset]:
    """Exact maximum packing for sets of size 1 or 2, via matching.

    Every input set must have one or two elements (callers dispatch).
    Returns a maximum family of pairwise-disjoint sets.
    """
    edges: List[Tuple[Node, Node]] = []
    edge_to_set: Dict[frozenset, frozenset] = {}
    for i, s in enumerate(sets):
        if len(s) == 1:
            (a,) = s
            aux = ("__aux__", i)
            edges.append((("el", a), aux))
            edge_to_set[frozenset({("el", a), aux})] = s
        elif len(s) == 2:
            a, b = sorted(s, key=repr)
            edges.append((("el", a), ("el", b)))
            edge_to_set.setdefault(
                frozenset({("el", a), ("el", b)}), s
            )
        else:
            raise ValueError(
                f"max_small_set_packing only handles sets of size <= 2, "
                f"got {s!r}"
            )
    matching = max_cardinality_matching(edges)
    chosen: List[frozenset] = []
    seen = set()
    for u, v in matching.items():
        key = frozenset({u, v})
        if key in seen:
            continue
        seen.add(key)
        s = edge_to_set.get(key)
        if s is not None:
            chosen.append(s)
    return chosen
