"""Reachability on fault-pruned radio graphs.

Under crash-stop failures "the sole criterion for achievability is
reachability" (paper, Section VII): a correct node receives the broadcast
iff the radio graph restricted to correct nodes connects it to the source
(or to a correct neighbor of the source -- the source itself is assumed to
transmit before any crash in the worst-case analyses here, so we model the
source as correct).

These helpers answer reachability questions analytically, without spinning
up the simulator; integration tests check the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set

from repro.geometry.coords import Coord
from repro.grid.topology import Topology


def reachable_from(
    topology: Topology,
    sources: Iterable[Coord],
    blocked: Iterable[Coord] = (),
) -> Set[Coord]:
    """Nodes reachable from ``sources`` in the radio graph minus ``blocked``.

    ``sources`` themselves are included (if not blocked).  BFS over the
    topology's neighbor relation; works on any finite topology.
    """
    blocked_set = {topology.canonical(b) for b in blocked}
    frontier: List[Coord] = []
    seen: Set[Coord] = set()
    for s in sources:
        cs = topology.canonical(s)
        if cs not in blocked_set and cs not in seen:
            seen.add(cs)
            frontier.append(cs)
    while frontier:
        nxt: List[Coord] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if v in seen or v in blocked_set:
                    continue
                seen.add(v)
                nxt.append(v)
        frontier = nxt
    return seen


@dataclass(frozen=True)
class CoverageReport:
    """Result of a crash-stop reachability analysis."""

    reached: FrozenSet[Coord]
    unreached_correct: FrozenSet[Coord]
    total_correct: int

    @property
    def complete(self) -> bool:
        """Whether every correct node is reached (broadcast achieved)."""
        return not self.unreached_correct

    @property
    def coverage(self) -> float:
        """Fraction of correct nodes reached (1.0 on success)."""
        if self.total_correct == 0:
            return 1.0
        return len(self.reached) / self.total_correct


def crash_broadcast_coverage(
    topology: Topology,
    source: Coord,
    crashed: Iterable[Coord],
) -> CoverageReport:
    """Crash-stop broadcast coverage with all of ``crashed`` dead from the
    start (the adversary's strongest move for pure reachability).

    The source transmits once before anything else, so its correct
    neighbors always receive the value; propagation then only crosses
    correct nodes.
    """
    crashed_set = {topology.canonical(c) for c in crashed}
    src = topology.canonical(source)
    if src in crashed_set:
        raise ValueError("the designated source must be correct")
    reached = reachable_from(topology, [src], blocked=crashed_set)
    correct = {n for n in topology.nodes() if n not in crashed_set}
    unreached = correct - reached
    return CoverageReport(
        reached=frozenset(reached),
        unreached_correct=frozenset(unreached),
        total_correct=len(correct),
    )
