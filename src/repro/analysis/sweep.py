"""Threshold-sharpness sweeps.

The theorems give exact worst-case thresholds; these helpers measure how
sharp the transition is *empirically*: for each fault budget ``t``,
run many randomized adversarial placements and record the success
fraction.  Below the threshold the fraction must be 1.0 (the theorems are
worst-case guarantees); above it, random placements may or may not defeat
the protocol -- the curve exposes how special the impossibility
constructions are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
)


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated trials at one fault budget."""

    t: int
    trials: int
    success_fraction: float
    safety_fraction: float
    mean_undecided: float

    def row(self) -> Dict[str, float]:
        """Dict form for tabular reports."""
        return {
            "t": self.t,
            "trials": self.trials,
            "success_fraction": self.success_fraction,
            "safety_fraction": self.safety_fraction,
            "mean_undecided": self.mean_undecided,
        }


def byzantine_sharpness_sweep(
    r: int,
    budgets: Sequence[int],
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    trials: int = 5,
    seed: int = 0,
) -> List[SweepPoint]:
    """Success fraction vs fault budget under random valid placements.

    For each ``t`` the protocol is *told* ``t`` and the adversary places a
    random maximal ``t``-bounded fault set; both sides scale together,
    exactly as in the paper's model.
    """
    points: List[SweepPoint] = []
    for t in budgets:
        successes = 0
        safeties = 0
        undecided_total = 0
        for trial in range(trials):
            sc = byzantine_broadcast_scenario(
                r=r,
                t=t,
                protocol=protocol,
                strategy=strategy,
                placement="random",
                seed=seed * 1000 + t * 100 + trial,
            )
            out = sc.run()
            successes += out.achieved
            safeties += out.safe
            undecided_total += len(out.undecided)
        points.append(
            SweepPoint(
                t=t,
                trials=trials,
                success_fraction=successes / trials,
                safety_fraction=safeties / trials,
                mean_undecided=undecided_total / trials,
            )
        )
    return points


def crash_sharpness_sweep(
    r: int,
    budgets: Sequence[int],
    trials: int = 5,
    seed: int = 0,
) -> List[SweepPoint]:
    """Crash-stop analogue of :func:`byzantine_sharpness_sweep`."""
    points: List[SweepPoint] = []
    for t in budgets:
        successes = 0
        undecided_total = 0
        for trial in range(trials):
            sc = crash_broadcast_scenario(
                r=r,
                t=t,
                placement="random",
                seed=seed * 1000 + t * 100 + trial,
            )
            out = sc.run()
            successes += out.achieved
            undecided_total += len(out.undecided)
        points.append(
            SweepPoint(
                t=t,
                trials=trials,
                success_fraction=successes / trials,
                safety_fraction=1.0,  # crash faults cannot lie
                mean_undecided=undecided_total / trials,
            )
        )
    return points
