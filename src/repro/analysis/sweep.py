"""Threshold-sharpness sweeps.

The theorems give exact worst-case thresholds; these helpers measure how
sharp the transition is *empirically*: for each fault budget ``t``,
run many randomized adversarial placements and record the success
fraction.  Below the threshold the fraction must be 1.0 (the theorems are
worst-case guarantees); above it, random placements may or may not defeat
the protocol -- the curve exposes how special the impossibility
constructions are.

Trial execution routes through :mod:`repro.exec`: pass an
``executor`` (e.g. ``SweepExecutor(workers=4, cache=...)``) to
parallelize and memoize; the default is the serial, uncached executor.
Per-trial seeds are derived from ``(seed, scenario_key, trial_index)``
(see :func:`repro.exec.derive_seed`), so the resulting
:class:`SweepPoint` rows are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.exec import ExecStats, ScenarioSpec, SweepExecutor


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated trials at one fault budget."""

    t: int
    trials: int
    success_fraction: float
    safety_fraction: float
    mean_undecided: float

    def row(self) -> Dict[str, float]:
        """Dict form for tabular reports."""
        return {
            "t": self.t,
            "trials": self.trials,
            "success_fraction": self.success_fraction,
            "safety_fraction": self.safety_fraction,
            "mean_undecided": self.mean_undecided,
        }


@dataclass(frozen=True)
class SweepRun:
    """A sweep's aggregated points plus its execution statistics."""

    points: List[SweepPoint]
    stats: ExecStats


def aggregate_point(
    t: int,
    trial_rows: Sequence[Dict[str, Any]],
    safety_trivial: bool = False,
) -> SweepPoint:
    """Fold per-trial result rows into one :class:`SweepPoint`.

    ``safety_trivial`` pins ``safety_fraction`` to 1.0 (crash faults
    cannot lie, so safety cannot fail by construction).
    """
    trials = len(trial_rows)
    successes = sum(1 for row in trial_rows if row["achieved"])
    safeties = sum(1 for row in trial_rows if row["safe"])
    undecided_total = sum(row["undecided"] for row in trial_rows)
    return SweepPoint(
        t=t,
        trials=trials,
        success_fraction=successes / trials,
        safety_fraction=1.0 if safety_trivial else safeties / trials,
        mean_undecided=undecided_total / trials,
    )


def byzantine_sharpness_run(
    r: int,
    budgets: Sequence[int],
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    trials: int = 5,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    engine: str = "reference",
    metric: str = "linf",
    topology: str = "torus",
    channel: str = "ideal",
) -> SweepRun:
    """Success fraction vs fault budget under random valid placements.

    For each ``t`` the protocol is *told* ``t`` and the adversary places a
    random maximal ``t``-bounded fault set; both sides scale together,
    exactly as in the paper's model.  Returns the aggregated points plus
    the executor's wall-clock / cache statistics.  ``engine`` picks the
    simulation backend; it does not change seeds, rows, or cache keys
    (the backends are observationally identical).  ``metric``,
    ``topology``, and ``channel`` select the orthogonal scenario-axis
    levels (all paper defaults) and *are* scenario identity -- different
    levels sweep different scenario keys.
    """
    executor = executor or SweepExecutor()
    specs = [
        ScenarioSpec(
            kind="byzantine",
            r=r,
            t=t,
            trials=trials,
            protocol=protocol,
            strategy=strategy,
            placement="random",
            metric=metric,
            engine=engine,
            topology=topology,
            channel=channel,
        )
        for t in budgets
    ]
    result = executor.run(specs, root_seed=seed)
    points = [
        aggregate_point(t, rows)
        for t, rows in zip(budgets, result.rows)
    ]
    return SweepRun(points=points, stats=result.stats)


def byzantine_sharpness_sweep(
    r: int,
    budgets: Sequence[int],
    protocol: str = "bv-two-hop",
    strategy: str = "fabricator",
    trials: int = 5,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    engine: str = "reference",
    metric: str = "linf",
    topology: str = "torus",
    channel: str = "ideal",
) -> List[SweepPoint]:
    """:func:`byzantine_sharpness_run` returning only the points."""
    return byzantine_sharpness_run(
        r,
        budgets,
        protocol=protocol,
        strategy=strategy,
        trials=trials,
        seed=seed,
        executor=executor,
        engine=engine,
        metric=metric,
        topology=topology,
        channel=channel,
    ).points


def crash_sharpness_run(
    r: int,
    budgets: Sequence[int],
    trials: int = 5,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    engine: str = "reference",
    metric: str = "linf",
    topology: str = "torus",
    channel: str = "ideal",
) -> SweepRun:
    """Crash-stop analogue of :func:`byzantine_sharpness_run`."""
    executor = executor or SweepExecutor()
    specs = [
        ScenarioSpec(
            kind="crash",
            r=r,
            t=t,
            trials=trials,
            protocol="crash-flood",
            placement="random",
            metric=metric,
            engine=engine,
            topology=topology,
            channel=channel,
        )
        for t in budgets
    ]
    result = executor.run(specs, root_seed=seed)
    points = [
        aggregate_point(t, rows, safety_trivial=True)
        for t, rows in zip(budgets, result.rows)
    ]
    return SweepRun(points=points, stats=result.stats)


def crash_sharpness_sweep(
    r: int,
    budgets: Sequence[int],
    trials: int = 5,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    engine: str = "reference",
    metric: str = "linf",
    topology: str = "torus",
    channel: str = "ideal",
) -> List[SweepPoint]:
    """:func:`crash_sharpness_run` returning only the points."""
    return crash_sharpness_run(
        r, budgets, trials=trials, seed=seed, executor=executor,
        engine=engine, metric=metric, topology=topology, channel=channel,
    ).points
