"""The random-failure (site percolation) model of the paper's conclusion.

Section XI: "Another useful model to consider would be that of random
failure, whereby each node has a probability of failure p_f, and nodes
fail independently of each other.  Observe that in case of crash-stop
failures, the problem is similar to the problem of site percolation."

We implement exactly that: each node independently crashes (dies before
the run) with probability ``p_f``; the broadcast reaches the correct
component of the source.  Sweeping ``p_f`` exhibits the percolation phase
transition: coverage stays near 1 below a critical failure probability and
collapses above it.  (For the radio graph with radius ``r`` the critical
*occupation* probability falls as the neighborhood grows, so larger ``r``
tolerates a larger ``p_f`` -- the benches report this shape.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reachability import crash_broadcast_coverage
from repro.analysis.stats import mean, stdev
from repro.exec.seeds import derive_seed
from repro.geometry.coords import Coord
from repro.grid.topology import Topology


@dataclass(frozen=True)
class PercolationPoint:
    """Aggregated trials at one failure probability."""

    p_fail: float
    trials: int
    mean_coverage: float
    stdev_coverage: float
    all_reached_fraction: float

    def row(self) -> Tuple[float, int, float, float, float]:
        """Tuple form for tabular reports."""
        return (
            self.p_fail,
            self.trials,
            self.mean_coverage,
            self.stdev_coverage,
            self.all_reached_fraction,
        )


def percolation_trial(
    topology: Topology,
    source: Coord,
    p_fail: float,
    rng: random.Random,
) -> float:
    """One random-failure trial; returns the coverage fraction.

    The source is kept alive (the problem is broadcast *from* it); every
    other node independently crashes with probability ``p_fail``.
    """
    if not 0.0 <= p_fail <= 1.0:
        raise ValueError(f"p_fail must be in [0, 1], got {p_fail}")
    src = topology.canonical(source)
    crashed = [
        node
        for node in topology.nodes()
        if node != src and rng.random() < p_fail
    ]
    return crash_broadcast_coverage(topology, src, crashed).coverage


def percolation_curve(
    topology: Topology,
    source: Coord,
    probabilities: Sequence[float],
    trials: int = 20,
    seed: int = 0,
) -> List[PercolationPoint]:
    """Sweep ``p_fail`` and aggregate coverage statistics per point.

    Deterministic given ``seed``; each probability gets an independent
    substream so adding probabilities does not perturb existing ones.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    points: List[PercolationPoint] = []
    for i, p in enumerate(probabilities):
        rng = random.Random(
            derive_seed(seed, f"percolation-curve:p={round(p * 1e9)}", i)
        )
        coverages = [
            percolation_trial(topology, source, p, rng) for _ in range(trials)
        ]
        points.append(
            PercolationPoint(
                p_fail=p,
                trials=trials,
                mean_coverage=mean(coverages),
                stdev_coverage=stdev(coverages),
                all_reached_fraction=sum(c >= 1.0 for c in coverages) / trials,
            )
        )
    return points


@dataclass(frozen=True)
class ClusterStats:
    """Cluster-level observables of one random-failure configuration.

    ``largest_fraction`` (the fraction of surviving nodes in the largest
    connected cluster) is the standard percolation order parameter: it
    stays near 1 in the supercritical phase and collapses past the
    transition.
    """

    p_fail: float
    survivors: int
    clusters: int
    largest_fraction: float
    mean_cluster_size: float


def cluster_statistics(
    topology: Topology,
    p_fail: float,
    rng: random.Random,
) -> ClusterStats:
    """Cluster observables for one i.i.d. failure draw."""
    from repro.grid.graphs import adjacency_map, connected_components, remove_nodes

    if not 0.0 <= p_fail <= 1.0:
        raise ValueError(f"p_fail must be in [0, 1], got {p_fail}")
    failed = [n for n in topology.nodes() if rng.random() < p_fail]
    adj = remove_nodes(adjacency_map(topology), failed)
    survivors = len(adj)
    if survivors == 0:
        return ClusterStats(
            p_fail=p_fail,
            survivors=0,
            clusters=0,
            largest_fraction=0.0,
            mean_cluster_size=0.0,
        )
    comps = connected_components(adj)
    sizes = [len(c) for c in comps]
    return ClusterStats(
        p_fail=p_fail,
        survivors=survivors,
        clusters=len(comps),
        largest_fraction=max(sizes) / survivors,
        mean_cluster_size=sum(sizes) / len(sizes),
    )


def cluster_statistics_curve(
    topology: Topology,
    probabilities: Sequence[float],
    trials: int = 10,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Averaged cluster observables per failure probability (rows for
    the percolation bench)."""
    rows: List[Dict[str, float]] = []
    for i, p in enumerate(probabilities):
        rng = random.Random(
            derive_seed(seed, f"percolation-clusters:p={p}", i)
        )
        stats = [
            cluster_statistics(topology, p, rng) for _ in range(trials)
        ]
        rows.append(
            {
                "p_fail": p,
                "trials": trials,
                "mean_largest_fraction": mean(
                    [s.largest_fraction for s in stats]
                ),
                "mean_clusters": mean([float(s.clusters) for s in stats]),
                "mean_survivors": mean([float(s.survivors) for s in stats]),
            }
        )
    return rows


def critical_probability_estimate(
    points: Sequence[PercolationPoint], threshold: float = 0.5
) -> Optional[float]:
    """Crude phase-transition locator: the first swept probability where
    mean coverage drops below ``threshold`` (linear interpolation against
    the previous point).  ``None`` when coverage never drops."""
    prev: Optional[PercolationPoint] = None
    for pt in sorted(points, key=lambda q: q.p_fail):
        if pt.mean_coverage < threshold:
            if prev is None:
                return pt.p_fail
            # interpolate between prev (above) and pt (below)
            span = pt.mean_coverage - prev.mean_coverage
            if span == 0:
                return pt.p_fail
            frac = (threshold - prev.mean_coverage) / span
            return prev.p_fail + frac * (pt.p_fail - prev.p_fail)
        prev = pt
    return None
