"""Exact maximum set packing.

Both commit rules in the paper reduce to the same combinatorial question:
*how many pairwise node-disjoint evidence chains exist inside a candidate
neighborhood?*  An evidence chain is a small set of nodes (one endpoint
plus at most three relays), and chains must be pairwise disjoint so that at
most ``t`` of them can be poisoned by ``t`` faulty nodes.

Maximum set packing is NP-hard in general, but the instances the protocols
produce are small (a neighborhood holds at most ``(2r+1)^2`` nodes) and
highly structured, so an exact branch-and-bound with greedy seeding and
dominance reduction solves them in microseconds.  A work budget guards
against pathological inputs: exceeding it raises
:class:`PackingBudgetExceeded` rather than silently returning a wrong
answer -- the commit rules treat that as "cannot determine yet", which
preserves safety.

The solver is *exact*: when it returns ``k`` (without raising), no packing
of size ``k+1`` exists, and when asked for a ``target`` it finds a packing
of that size whenever one exists.  This matters because the paper's
thresholds are exact; an approximate packer would blur them.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence

from repro.errors import ReproError


class PackingBudgetExceeded(ReproError):
    """The branch-and-bound search exceeded its node budget."""


def _preprocess(sets: Iterable[Iterable[Hashable]]) -> List[FrozenSet[Hashable]]:
    """Deduplicate and apply dominance reduction.

    If ``A`` is a subset of ``B``, any packing using ``B`` stays a packing
    after replacing ``B`` with ``A``, so ``B`` is dominated and dropped.
    Keeping only inclusion-minimal sets shrinks the search space without
    changing the optimum.
    """
    frozen = {frozenset(s) for s in sets}
    frozen.discard(frozenset())
    ordered = sorted(frozen, key=len)
    minimal: List[FrozenSet[Hashable]] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


def _greedy(sets: Sequence[FrozenSet[Hashable]]) -> List[FrozenSet[Hashable]]:
    """Greedy packing, smallest sets first (good lower bound seed)."""
    used: set = set()
    picked: List[FrozenSet[Hashable]] = []
    for s in sets:
        if used.isdisjoint(s):
            picked.append(s)
            used |= s
    return picked


def find_set_packing(
    sets: Iterable[Iterable[Hashable]],
    target: Optional[int] = None,
    budget: int = 200_000,
) -> List[FrozenSet[Hashable]]:
    """Find a maximum packing (or one of size ``target``, whichever is
    smaller work).

    Parameters
    ----------
    sets:
        The candidate sets; duplicates and dominated supersets are pruned.
    target:
        If given, the search stops as soon as a packing of this size is
        found and returns it.  The commit rules always pass a target
        (``t + 1`` or ``2t + 1``), which keeps typical calls near-greedy
        cost.
    budget:
        Maximum number of branch-and-bound nodes to expand.

    Returns
    -------
    A list of pairwise-disjoint frozensets; maximum-size (or of size
    ``target``).

    :raises PackingBudgetExceeded: when the search budget trips before the
        answer is certain.
    """
    if target is not None and target <= 0:
        return []
    # Fast path: greedy on the deduplicated sets often hits the target
    # (honest evidence is disjoint by construction) without paying for
    # the quadratic dominance reduction.
    deduped = sorted({frozenset(s) for s in sets if s}, key=len)
    quick = _greedy(deduped)
    if target is not None and len(quick) >= target:
        return quick[:target]
    if deduped and len(deduped[-1]) <= 2:
        # Sets of size <= 2: exact in polynomial time via maximum
        # matching (see repro.analysis.blossom) -- this is the two-hop
        # commit rule's shape, including the expensive "prove no packing
        # exists" case at the impossibility bound.
        from repro.analysis.blossom import max_small_set_packing

        packing = max_small_set_packing(deduped)
        if target is not None and len(packing) >= target:
            return packing[:target]
        return packing
    minimal = _preprocess(deduped)
    best = _greedy(minimal)
    if target is not None and len(best) >= target:
        return best[:target]
    if len(quick) > len(best):
        best = quick

    # Branch and bound over sets ordered smallest-first.  At each step we
    # branch on the first still-available set: either it is in the packing
    # or it is not.
    nodes_expanded = 0

    def search(
        available: List[FrozenSet[Hashable]],
        chosen: List[FrozenSet[Hashable]],
    ) -> Optional[List[FrozenSet[Hashable]]]:
        nonlocal best, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > budget:
            raise PackingBudgetExceeded(
                f"set packing exceeded budget of {budget} nodes "
                f"({len(minimal)} sets after reduction)"
            )
        if len(chosen) > len(best):
            best = list(chosen)
            if target is not None and len(best) >= target:
                return best[:target]
        # Upper bound: even if every remaining set were packable.
        if len(chosen) + len(available) <= len(best):
            return None
        if not available:
            return None
        head, *rest = available
        # Branch 1: take head.
        filtered = [s for s in rest if s.isdisjoint(head)]
        result = search(filtered, chosen + [head])
        if result is not None:
            return result
        # Branch 2: skip head.
        return search(rest, chosen)

    result = search(minimal, [])
    if result is not None:
        return result
    return best


def max_set_packing(
    sets: Iterable[Iterable[Hashable]],
    target: Optional[int] = None,
    budget: int = 200_000,
) -> int:
    """Size of the maximum packing (capped at ``target`` when given).

    See :func:`find_set_packing` for parameters and the budget contract.
    """
    return len(find_set_packing(sets, target=target, budget=budget))


def has_packing_of_size(
    sets: Iterable[Iterable[Hashable]],
    k: int,
    budget: int = 200_000,
) -> bool:
    """Whether ``k`` pairwise-disjoint sets can be chosen.

    Convenience predicate used by the protocol commit rules; ``k <= 0`` is
    vacuously ``True``.
    """
    if k <= 0:
        return True
    return len(find_set_packing(sets, target=k, budget=budget)) >= k
