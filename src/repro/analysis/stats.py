"""Small-sample statistics for experiment reports.

Kept dependency-free (no numpy import at module scope) so the core library
stays importable anywhere; the benches format these numbers into the
paper-shaped tables.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for n < 2."""
    n = len(xs)
    if n < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (n - 1))


def confidence_interval95(xs: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI for the mean.

    Adequate for the coarse coverage fractions reported here; for n < 2
    the interval degenerates to the point.
    """
    m = mean(xs)
    if len(xs) < 2:
        return (m, m)
    half = 1.96 * stdev(xs) / math.sqrt(len(xs))
    return (m - half, m + half)


def summarize(xs: Sequence[float]) -> Dict[str, float]:
    """Mean / stdev / min / max bundle for log lines."""
    return {
        "n": float(len(xs)),
        "mean": mean(xs),
        "stdev": stdev(xs),
        "min": min(xs),
        "max": max(xs),
    }
