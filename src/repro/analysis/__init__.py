"""Graph and statistical analysis substrate.

Hosts the combinatorial engines the protocols and experiments rely on:

- :mod:`repro.analysis.packing` -- exact maximum set packing (the
  commit rules of both Bhandari-Vaidya protocols reduce to packing
  node-disjoint evidence chains); sets of size <= 2 dispatch to
- :mod:`repro.analysis.blossom` -- Edmonds' maximum cardinality matching
  in general graphs (the exact polynomial route for two-hop evidence);
- :mod:`repro.analysis.flows` -- vertex-capacitated max flow /
  vertex-disjoint path counting (Menger-style connectivity checks used to
  analyze constructions and crash-stop reachability);
- :mod:`repro.analysis.matching` -- Hopcroft-Karp bipartite matching
  (verifies the one-to-one region pairings of the paper's constructions);
- :mod:`repro.analysis.reachability` -- BFS reachability on fault-pruned
  radio graphs (the crash-stop criterion is pure reachability);
- :mod:`repro.analysis.percolation` -- the random-failure model the paper
  points to in its conclusion (site percolation);
- :mod:`repro.analysis.stats` -- small-sample statistics for experiment
  reports.
"""

from repro.analysis.packing import max_set_packing, find_set_packing, PackingBudgetExceeded
from repro.analysis.flows import (
    max_vertex_disjoint_paths,
    vertex_disjoint_paths,
    local_vertex_connectivity,
)
from repro.analysis.blossom import (
    max_cardinality_matching,
    matching_size,
    max_small_set_packing,
)
from repro.analysis.matching import max_bipartite_matching
from repro.analysis.reachability import reachable_from, crash_broadcast_coverage
from repro.analysis.percolation import (
    percolation_trial,
    percolation_curve,
    cluster_statistics,
    cluster_statistics_curve,
)
from repro.analysis.stats import mean, stdev, confidence_interval95, summarize
from repro.analysis.sweep import (
    SweepPoint,
    byzantine_sharpness_sweep,
    crash_sharpness_sweep,
)

__all__ = [
    "max_set_packing",
    "find_set_packing",
    "PackingBudgetExceeded",
    "max_vertex_disjoint_paths",
    "vertex_disjoint_paths",
    "local_vertex_connectivity",
    "max_cardinality_matching",
    "matching_size",
    "max_small_set_packing",
    "max_bipartite_matching",
    "reachable_from",
    "crash_broadcast_coverage",
    "percolation_trial",
    "percolation_curve",
    "cluster_statistics",
    "cluster_statistics_curve",
    "mean",
    "stdev",
    "confidence_interval95",
    "summarize",
    "SweepPoint",
    "byzantine_sharpness_sweep",
    "crash_sharpness_sweep",
]
