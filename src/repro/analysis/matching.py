"""Hopcroft-Karp maximum bipartite matching.

The paper's path constructions pair regions one-to-one ("there is a
one-to-one correspondence between a point (x,y) in B1 and a point (x-r,y)
in B2 ... any one-to-one pairing of nodes in D1 with nodes in D2 is
valid").  The witness checkers use maximum bipartite matching to verify
such pairings exist and to *construct* them when the paper allows any
pairing (regions D1/D2, where every cross pair is adjacent).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional

Left = Hashable
Right = Hashable

_INF = float("inf")


def max_bipartite_matching(
    edges: Mapping[Left, Iterable[Right]],
) -> Dict[Left, Right]:
    """Maximum matching of a bipartite graph given as left -> rights.

    Returns the matching as a left -> right dict.  Hopcroft-Karp,
    ``O(E sqrt(V))``; instances here are region-sized (hundreds of nodes).

    Left and right vertex namespaces are independent: the same hashable
    value may appear on both sides without being identified.
    """
    adj: Dict[Left, List[Right]] = {u: list(vs) for u, vs in edges.items()}
    match_left: Dict[Left, Optional[Right]] = {u: None for u in adj}
    match_right: Dict[Right, Optional[Left]] = {}
    for vs in adj.values():
        for v in vs:
            match_right.setdefault(v, None)

    dist: Dict[Left, float] = {}

    def bfs() -> bool:
        queue: deque = deque()
        for u in adj:
            if match_left[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_right[v]
                if w is None:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: Left) -> bool:
        for v in adj[u]:
            w = match_right[v]
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in adj:
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def is_perfect_matching(
    edges: Mapping[Left, Iterable[Right]], matching: Mapping[Left, Right]
) -> bool:
    """Whether ``matching`` saturates every left vertex of ``edges`` and
    uses each right vertex at most once."""
    if set(matching) != set(edges):
        return False
    rights = list(matching.values())
    if len(set(rights)) != len(rights):
        return False
    return all(v in set(edges[u]) for u, v in matching.items())
