"""The full Bhandari-Vaidya indirect-report protocol (paper, Section VI).

Message flow (quoting the protocol):

- the source locally broadcasts the value; its neighbors commit instantly
  and announce ``COMMITTED``;
- on receipt of ``COMMITTED(i, v)`` from neighbor ``i``: record it and
  broadcast ``HEARD(j, i, v)``;
- on receipt of ``HEARD(k, i, v)``: record and broadcast
  ``HEARD(j, k, i, v)``;
- on receipt of ``HEARD(l, k, i, v)``: record and broadcast
  ``HEARD(j, l, k, i, v)``;
- on receipt of ``HEARD(g, l, k, i, v)``: record, do not re-propagate
  (reports travel at most four hops from the committing node);
- on committing, broadcast ``COMMITTED(j, v)`` once.

Commit rule (two-level):

1. **Reliable determination.**  Node ``j`` reliably determines that ``i``
   committed to ``v`` if ``i`` is a neighbor and ``j`` heard the
   announcement directly, or ``j`` holds reports of it along ``t + 1``
   node-disjoint relay paths that -- endpoints ``i`` and ``j`` included --
   all lie within some single neighborhood.  At most ``t`` nodes of that
   neighborhood are faulty, so the ``t + 1`` disjoint paths cannot all be
   poisoned and the determination is always truthful (Theorem 2).
2. **Commitment.**  ``j`` commits to ``v`` once it has reliably determined
   that ``t + 1`` nodes lying in some single neighborhood committed to
   ``v`` -- at least one of them is correct, and correct nodes only commit
   the source value.

Theorem 3's construction shows the topology supplies ``2t + 1``-strength
connectivity whenever ``t < r(2r+1)/2``, making the rule live.

Implementation notes
--------------------
- Relay chains are validated for *plausibility* (consecutive relays must
  be mutual neighbors, the deepest relay must neighbor the origin): nodes
  know the grid, so implausible fabrications are discarded on arrival.
- A locality filter drops reports that could never participate in any
  determination (some chain node or the origin farther than ``2r`` from
  the receiver); the paper's own remark that state can be reduced by
  "earmarking exact messages that a node should look out for" licenses
  much stronger pruning than this.
- Determination evaluation is batched per round end and indexed per
  candidate neighborhood center, so only evidence that actually changed is
  re-examined.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple, Union

from repro.analysis.packing import PackingBudgetExceeded, has_packing_of_size
from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric
from repro.protocols.base import (
    BroadcastProtocolNode,
    CommittedMsg,
    HeardMsg,
    SourceMsg,
    hashable_value,
)
from repro.protocols.evidence import CenterIndex, covering_centers
from repro.radio.messages import Envelope
from repro.radio.node import Context


class BVIndirectProtocol(BroadcastProtocolNode):
    """Four-hop indirect-report protocol achieving ``t < r(2r+1)/2``."""

    def __init__(
        self,
        t: int,
        source: Coord,
        source_value: Any = None,
        metric: "Union[str, Metric]" = "linf",
        max_relays: int = 3,
        locality_filter: bool = True,
    ) -> None:
        """``max_relays`` is the maximum relay-chain length a report may
        accumulate (3 in the paper: HEARD messages carry up to three
        forwarder identifiers).  ``locality_filter`` enables the
        useless-report pruning described in the module docstring; disable
        it to run the literal protocol text."""
        super().__init__(t, source, source_value, metric)
        if not 1 <= max_relays <= 3:
            raise ConfigurationError(
                f"max_relays must be in 1..3, got {max_relays}"
            )
        self.max_relays = max_relays
        self.locality_filter = locality_filter
        #: first announced value per localized neighbor (duplicity guard)
        self._announced: Dict[Coord, Any] = {}
        #: reliably determined commitments: node -> value (first wins)
        self._determined: Dict[Coord, Any] = {}
        #: relay-path evidence per (origin, value), center-indexed
        self._paths: Optional[CenterIndex] = None
        #: commit-level tallies: (center, value) -> set of determined nodes
        self._commit_support: Dict[Tuple[Coord, Any], Set[Coord]] = {}

    # -- helpers -------------------------------------------------------------

    def _ensure_paths(self, ctx: Context) -> CenterIndex:
        if self._paths is None:
            self._paths = CenterIndex(ctx.r, self.metric)
        return self._paths

    def _plausible_chain(
        self, ctx: Context, chain: Tuple[Coord, ...], origin: Coord
    ) -> bool:
        """Adjacency-validate a localized relay chain ending at ``origin``.

        ``chain[0]`` is the node we physically heard (adjacency with us is
        guaranteed); each consecutive pair must be mutual neighbors and the
        deepest relay must neighbor the claimed origin.
        """
        r = ctx.r
        nodes = set(chain)
        if len(nodes) != len(chain):
            return False  # repeated relays are never produced honestly
        if origin in nodes or ctx.node in nodes or origin == ctx.node:
            return False
        for a, b in zip(chain, chain[1:]):
            if not self.metric.within(a, b, r):
                return False
        return self.metric.within(chain[-1], origin, r)

    def _local_enough(
        self, ctx: Context, chain: Tuple[Coord, ...], origin: Coord
    ) -> bool:
        """Locality filter: a report is useful to us (or to anyone we might
        forward it to) only if every node involved sits within ``2r``."""
        if not self.locality_filter:
            return True
        reach = 2 * ctx.r
        if not self.metric.within(origin, ctx.node, reach):
            return False
        return all(self.metric.within(f, ctx.node, reach) for f in chain)

    # -- message handling ------------------------------------------------------

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        payload = env.payload
        if isinstance(payload, SourceMsg):
            self.handle_source_msg(ctx, env)
            return
        if not hashable_value(getattr(payload, "value", None)):
            return  # malformed Byzantine value: cannot key the evidence maps
        if isinstance(payload, CommittedMsg):
            self._on_committed(ctx, env, payload)
            return
        if isinstance(payload, HeardMsg):
            self._on_heard(ctx, env, payload)

    def _on_committed(
        self, ctx: Context, env: Envelope, msg: CommittedMsg
    ) -> None:
        sender = self.note_announcement(ctx, env, self._announced)
        if sender is None:
            return  # duplicity: first announcement counts
        # Direct hearing is the strongest determination.
        self._determine(ctx, sender, msg.value)
        # Report for indirect listeners (the paper's first HEARD level).
        ctx.broadcast(HeardMsg(origin=env.sender, value=msg.value, relays=()))

    def _on_heard(self, ctx: Context, env: Envelope, msg: HeardMsg) -> None:
        relays_canonical = ((env.sender,) + tuple(msg.relays))
        if len(relays_canonical) > self.max_relays:
            return  # over-deep report: malformed (honest nodes stop earlier)
        chain = tuple(ctx.localize(f) for f in relays_canonical)
        origin = ctx.localize(msg.origin)
        if not self._plausible_chain(ctx, chain, origin):
            return
        if not self._local_enough(ctx, chain, origin):
            return
        if self._committed is None and origin not in self._determined:
            # Record as determination evidence: the covering neighborhood
            # must contain the whole path *including both endpoints*.
            self._ensure_paths(ctx).add(
                (origin, msg.value),
                frozenset(chain),
                anchor_points=(origin, ctx.node),
            )
        if len(chain) < self.max_relays:
            ctx.broadcast(
                HeardMsg(
                    origin=msg.origin,
                    value=msg.value,
                    relays=relays_canonical,
                )
            )

    def evidence_state_size(self) -> int:
        """Announcements, determinations and distinct stored relay
        chains."""
        chains = self._paths.distinct_chain_count() if self._paths else 0
        return len(self._announced) + len(self._determined) + chains

    # -- determination and commitment -------------------------------------------

    def _determine(self, ctx: Context, node: Coord, value: Any) -> None:
        """Record a reliable determination and update commit tallies."""
        if node in self._determined:
            return  # determinations are truthful; the first one stands
        self._determined[node] = value
        for center in covering_centers((node,), ctx.r, self.metric):
            support = self._commit_support.setdefault((center, value), set())
            support.add(node)
            if self._committed is None and len(support) >= self.t + 1:
                self.commit(ctx, value)

    def on_round_end(self, ctx: Context) -> None:
        if self._paths is None:
            return
        if self._committed is not None:
            self._paths.pop_dirty()  # drop stale work; we only relay now
            return
        for (origin, value), center in self._paths.pop_dirty():
            if origin in self._determined:
                continue
            chains = self._paths.chains_at((origin, value), center)
            if len(chains) < self.t + 1:
                continue
            try:
                if has_packing_of_size(chains, self.t + 1):
                    self._determine(ctx, origin, value)
            except PackingBudgetExceeded:
                continue  # safe: postpone, never guess
