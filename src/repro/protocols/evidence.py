"""Evidence bookkeeping shared by the Bhandari-Vaidya protocols.

Both protocols must answer questions of the form "do enough node-disjoint
evidence chains exist *inside some single neighborhood*?".  The
:class:`CenterIndex` keeps, per candidate neighborhood center, the chains
fully contained in that neighborhood, so each new report touches only the
handful of centers that cover it and commit evaluation only revisits
centers whose evidence actually changed.

All coordinates here live in the owning node's unwrapped local frame.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric


def covering_centers(
    points: Sequence[Coord], r: int, metric: Metric
) -> List[Coord]:
    """All centers whose radius-``r`` neighborhood contains every point.

    Same contract as :func:`repro.grid.neighborhoods.nbd_centers_covering`
    but takes a resolved metric and works in a local frame (no topology).

    Under L-infinity the answer has a closed form (the intersection of
    axis-aligned boxes), which matters: this is the protocols' hottest
    path -- every evidence chain is indexed under its covering centers.
    """
    if metric.name == "linf":
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_lo, x_hi = max(xs) - r, min(xs) + r
        y_lo, y_hi = max(ys) - r, min(ys) + r
        return [
            (x, y)
            for x in range(x_lo, x_hi + 1)
            for y in range(y_lo, y_hi + 1)
        ]
    base = points[0]
    bx, by = base
    out: List[Coord] = []
    for dx in range(-r, r + 1):
        for dy in range(-r, r + 1):
            c = (bx + dx, by + dy)
            if metric.within(c, base, r) and all(
                metric.within(c, p, r) for p in points[1:]
            ):
                out.append(c)
    return out


class CenterIndex:
    """Per-center, per-key lists of evidence chains.

    ``key`` is protocol-specific (a value for the two-hop rule; an
    ``(origin, value)`` pair for the four-hop determination rule).  A chain
    is a frozenset of local-frame coordinates; it is registered under every
    center whose neighborhood contains all of ``anchor_points`` plus the
    chain itself.
    """

    def __init__(self, r: int, metric: Metric) -> None:
        self._r = r
        self._metric = metric
        self._chains: Dict[Hashable, Dict[Coord, List[FrozenSet[Coord]]]] = {}
        self._seen: Dict[Hashable, Set[FrozenSet[Coord]]] = {}
        self._dirty: Set[Tuple[Hashable, Coord]] = set()

    def add(
        self,
        key: Hashable,
        chain: FrozenSet[Coord],
        anchor_points: Sequence[Coord] = (),
    ) -> bool:
        """Register ``chain`` under ``key``; returns ``False`` on duplicate.

        ``anchor_points`` are additional points the covering neighborhood
        must contain (e.g. the report's origin and the evaluating node for
        the four-hop rule).
        """
        seen = self._seen.setdefault(key, set())
        if chain in seen:
            return False
        seen.add(chain)
        pts = sorted(chain) + list(anchor_points)
        per_center = self._chains.setdefault(key, {})
        for center in covering_centers(pts, self._r, self._metric):
            per_center.setdefault(center, []).append(chain)
            self._dirty.add((key, center))
        return True

    def pop_dirty(self) -> List[Tuple[Hashable, Coord]]:
        """Drain the set of (key, center) pairs with new evidence."""
        dirty = sorted(self._dirty, key=repr)
        self._dirty.clear()
        return dirty

    def chains_at(self, key: Hashable, center: Coord) -> List[FrozenSet[Coord]]:
        """Chains registered under ``key`` whose covering set includes
        ``center``."""
        return self._chains.get(key, {}).get(center, [])

    def keys(self) -> List[Hashable]:
        """All keys with registered evidence."""
        return list(self._chains)

    def distinct_chain_count(self) -> int:
        """Total distinct chains stored across all keys (the index's
        memory footprint in chain units)."""
        return sum(len(chains) for chains in self._seen.values())
