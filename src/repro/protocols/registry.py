"""Protocol registry: build process maps by protocol name.

The experiment harness and benches refer to protocols by short names; this
module centralizes the name -> class mapping and the boilerplate of
instantiating one process per correct node (faulty nodes get their
processes from :mod:`repro.faults`).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterable, Mapping, Type

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.grid.topology import Topology
from repro.protocols.base import BroadcastProtocolNode
from repro.protocols.bv_earmarked import BVEarmarkedProtocol
from repro.protocols.bv_indirect import BVIndirectProtocol
from repro.protocols.bv_two_hop import BVTwoHopProtocol
from repro.protocols.cpa import CPAProtocol
from repro.protocols.crash_flood import CrashFloodProtocol

PROTOCOLS: Mapping[str, Type[BroadcastProtocolNode]] = MappingProxyType({
    "crash-flood": CrashFloodProtocol,
    "cpa": CPAProtocol,
    "bv-two-hop": BVTwoHopProtocol,
    "bv-indirect": BVIndirectProtocol,
    "bv-earmarked": BVEarmarkedProtocol,
})
"""Short name -> protocol class (read-only: the registry is consulted
from forked sweep workers, so a runtime mutation could diverge between
parent and worker -- the ``fork-safety`` lint pass enforces this)."""


def protocol_names() -> Iterable[str]:
    """All registered protocol names (stable order)."""
    return tuple(PROTOCOLS)


def make_protocol(
    name: str,
    t: int,
    source: Coord,
    source_value: Any = None,
    metric="linf",
    **kwargs: Any,
) -> BroadcastProtocolNode:
    """Instantiate a protocol process by registry name.

    ``kwargs`` pass through to the protocol constructor (e.g.
    ``max_relays`` for ``bv-indirect``).
    """
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None
    return cls(t, source, source_value=source_value, metric=metric, **kwargs)


def correct_process_map(
    topology: Topology,
    protocol: str,
    t: int,
    source: Coord,
    value: Any,
    correct_nodes: Iterable[Coord],
    **kwargs: Any,
) -> Dict[Coord, BroadcastProtocolNode]:
    """One protocol process per correct node; the source gets the value.

    Faulty nodes are simply absent from the returned map -- the scenario
    builder overlays their adversarial processes.
    """
    src = topology.canonical(source)
    processes: Dict[Coord, BroadcastProtocolNode] = {}
    # correct_nodes is typically a set; build in sorted order so the
    # map's iteration order (and any rng consumed per process in the
    # future) cannot depend on hash seeding
    for node in sorted(correct_nodes):
        cn = topology.canonical(node)
        source_value = value if cn == src else None
        processes[cn] = make_protocol(
            protocol,
            t,
            src,
            source_value=source_value,
            metric=topology.metric,
            **kwargs,
        )
    return processes
