"""The simplified Bhandari-Vaidya protocol (paper, Section VI-B).

"only the immediate neighbors of a node that sent a COMMITTED message
send out a HEARD message reporting it.  Thus, information about the value
committed to by a node propagates only upto its two hop neighborhood.
This suffices to achieve reliable broadcast."

Evidence chains
---------------
For an evaluating node ``P`` and a value ``v``, a chain is either

- ``{N}``: ``P`` heard ``COMMITTED(v)`` from ``N`` directly, or
- ``{N, m}``: ``P`` heard ``HEARD(m, N, v)`` from ``m`` directly
  (``m`` claims ``N`` announced ``v``).

Commit rule: ``P`` commits to ``v`` once ``t + 1`` pairwise node-disjoint
chains for ``v`` all lie within some single neighborhood.  Safety: at most
``t`` of the nodes in that neighborhood are faulty, and every node of a
chain must be faulty-free for the chain to lie about ``v`` -- so disjoint
chains can only be poisoned ``t`` at a time, and one truthful chain means
some *correct* node committed ``v``; by the paper's first-wrong-decision
induction (Theorem 2) that value is the source's.  Liveness: the
completeness construction (Section VI-B's connectivity condition) supplies
``2t + 1`` collectively node-disjoint chains inside one neighborhood, of
which at least ``t + 1`` are faulty-free whenever ``t < r(2r+1)/2``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.analysis.packing import PackingBudgetExceeded, has_packing_of_size
from repro.geometry.coords import Coord
from repro.protocols.base import (
    BroadcastProtocolNode,
    CommittedMsg,
    HeardMsg,
    SourceMsg,
    hashable_value,
)
from repro.protocols.evidence import CenterIndex
from repro.radio.messages import Envelope
from repro.radio.node import Context


class BVTwoHopProtocol(BroadcastProtocolNode):
    """Two-hop indirect-report protocol achieving ``t < r(2r+1)/2``."""

    def __init__(self, t, source, source_value=None, metric="linf") -> None:
        super().__init__(t, source, source_value, metric)
        self._index: Optional[CenterIndex] = None
        #: first announced value per localized neighbor
        self._announced: Dict[Coord, Any] = {}
        #: (reporter, origin) pairs already recorded (first report wins)
        self._reports_seen: Set[Tuple[Coord, Coord]] = set()

    def _ensure_index(self, ctx: Context) -> CenterIndex:
        if self._index is None:
            self._index = CenterIndex(ctx.r, self.metric)
        return self._index

    # -- message handling ---------------------------------------------------

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        payload = env.payload
        if isinstance(payload, SourceMsg):
            self.handle_source_msg(ctx, env)
            return
        if not hashable_value(getattr(payload, "value", None)):
            return  # malformed Byzantine value: cannot key the evidence index
        if isinstance(payload, CommittedMsg):
            self._on_committed(ctx, env, payload)
            return
        if isinstance(payload, HeardMsg):
            self._on_heard(ctx, env, payload)

    def _on_committed(
        self, ctx: Context, env: Envelope, msg: CommittedMsg
    ) -> None:
        sender = self.note_announcement(ctx, env, self._announced)
        if sender is None:
            return  # duplicity: the first announcement counts
        # Report it for the benefit of two-hop listeners (even after our
        # own commitment -- others may still need the report).
        ctx.broadcast(HeardMsg(origin=env.sender, value=msg.value, relays=()))
        if self._committed is None:
            self._ensure_index(ctx).add(msg.value, frozenset((sender,)))

    def _on_heard(self, ctx: Context, env: Envelope, msg: HeardMsg) -> None:
        if self._committed is not None:
            return  # evidence only matters pre-commit; we never relay HEARDs
        if msg.relays:
            return  # deeper relays belong to the 4-hop protocol; ignore
        reporter = ctx.localize(env.sender)
        origin = ctx.localize(msg.origin)
        if origin == reporter or origin == ctx.node:
            return  # self-reports carry no extra evidence
        if (reporter, origin) in self._reports_seen:
            return  # first report by this reporter about this origin wins
        if not self.metric.within(reporter, origin, ctx.r):
            return  # implausible: reporter could not have heard origin
        self._reports_seen.add((reporter, origin))
        self._ensure_index(ctx).add(msg.value, frozenset((origin, reporter)))

    def evidence_state_size(self) -> int:
        """Announcements plus distinct stored evidence chains."""
        chains = self._index.distinct_chain_count() if self._index else 0
        return len(self._announced) + chains

    # -- commit evaluation ----------------------------------------------------

    def on_round_end(self, ctx: Context) -> None:
        if self._committed is not None or self._index is None:
            return
        for value, center in self._index.pop_dirty():
            chains = self._index.chains_at(value, center)
            if len(chains) < self.t + 1:
                continue
            try:
                if has_packing_of_size(chains, self.t + 1):
                    self.commit(ctx, value)
                    return
            except PackingBudgetExceeded:
                # Treated as "cannot determine yet": safe (never commits
                # wrong) and in practice unreachable for protocol-sized
                # instances.
                continue
