"""The simple Byzantine-tolerant protocol of Koo (paper, Section IX).

Pelc & Peleg later named it the *Certified Propagation Algorithm* (CPA):

"initially the source transmits the value, and its immediate neighbors are
able to commit to that value instantly.  They then re-broadcast the value
committed to and terminate protocol operation.  Any other node that has
heard the same value reported by at least ``t+1`` neighbors, commits to
it, re-broadcasts it, and then terminates."

Safety is immediate: a correct node has at most ``t`` faulty neighbors, so
``t+1`` *matching* announcements always include a correct one, and (by
induction on commit order) correct nodes only announce the source value.
Liveness is the content of the paper's Theorem 6: CPA succeeds whenever
``t <= (2/3) r^2`` in the L-infinity metric.

Duplicity handling: the broadcast channel lets neighbors detect a node
announcing two different values; per the paper (Section V), "accept only
the first message, and ignore the rest" -- implemented by keeping only the
first ``COMMITTED`` per sender.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric
from repro.protocols.base import (
    BroadcastProtocolNode,
    CommittedMsg,
    SourceMsg,
    hashable_value,
)
from repro.radio.messages import Envelope
from repro.radio.node import Context


class CPAProtocol(BroadcastProtocolNode):
    """Commit on ``t+1`` matching neighbor announcements (or direct source
    receipt); announce once; terminate."""

    def __init__(
        self,
        t: int,
        source: Coord,
        source_value: Any = None,
        metric: Union[str, Metric] = "linf",
    ) -> None:
        super().__init__(t, source, source_value, metric)
        #: first announced value per (localized) neighbor
        self._announced: Dict[Coord, Any] = {}
        #: announcement tallies per value
        self._tally: Dict[Any, int] = {}

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        if self._committed is not None:
            return
        payload = env.payload
        if isinstance(payload, SourceMsg):
            self.handle_source_msg(ctx, env)
            return
        if not isinstance(payload, CommittedMsg):
            return  # HEARD or garbage: CPA ignores everything else
        if not hashable_value(payload.value):
            return  # malformed Byzantine value: cannot key a tally bucket
        sender = self.note_announcement(ctx, env, self._announced)
        if sender is None:
            return  # duplicity or re-announcement: first one counts
        count = self._tally.get(payload.value, 0) + 1
        self._tally[payload.value] = count
        if count >= self.t + 1:
            self.commit(ctx, payload.value)

    def on_commit(self, ctx: Context, value) -> None:
        ctx.halt()  # re-broadcast is queued; protocol operation terminates

    def evidence_state_size(self) -> int:
        """One unit per recorded neighbor announcement."""
        return len(self._announced)
