"""Shared protocol message types and the protocol node base class.

Message vocabulary (paper, Section VI):

- :class:`SourceMsg` -- the designated source's initial local broadcast;
- :class:`CommittedMsg` -- ``COMMITTED(i, v)``: node ``i`` announces it
  committed to ``v``.  The announcing node's identity is *not* carried in
  the payload: receivers take it from the engine-stamped envelope sender,
  which is unforgeable under the paper's no-spoofing assumption.
- :class:`HeardMsg` -- ``HEARD(j, ..., i, v)``: a relayed report that
  ``i`` committed to ``v``.  The outermost relay is again the envelope
  sender; ``relays`` holds the *earlier* relays innermost-last, so a
  receiver reconstructs the full relay chain as ``(sender,) + relays``
  (nearest relay first, the relay that heard ``i`` directly last).

All coordinates inside payloads are canonical topology coordinates;
receivers localize them (:meth:`repro.radio.node.Context.localize`) before
doing geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple, Union

from repro.errors import ConfigurationError
from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric, get_metric
from repro.radio.messages import Envelope
from repro.radio.node import Context, NodeProcess


@dataclass(frozen=True)
class SourceMsg:
    """The source's one-time local broadcast of the value."""

    value: Any


@dataclass(frozen=True)
class CommittedMsg:
    """``COMMITTED(i, v)`` with ``i`` = the (unforgeable) envelope sender."""

    value: Any


@dataclass(frozen=True)
class HeardMsg:
    """A relayed report that ``origin`` committed to ``value``.

    ``relays`` lists earlier relays, nearest-to-the-transmitter first;
    the transmitter itself is the envelope sender and is *not* repeated in
    the payload.  A receiver's full relay chain is ``(env.sender,) +
    relays`` and its claim is: ``relays[-1]`` (or the transmitter, when
    ``relays`` is empty) heard ``origin`` broadcast ``COMMITTED(value)``
    directly.
    """

    origin: Coord
    value: Any
    relays: Tuple[Coord, ...] = ()


def hashable_value(value: Any) -> bool:
    """Whether ``value`` can key a tally / evidence dict.

    Byzantine processes may announce arbitrary payload values, including
    unhashable ones (lists, dicts, sets).  Every protocol counts
    announcements in dicts keyed by the announced value, so a malformed
    value must be dropped at the receive boundary -- treated exactly like
    any other garbage transmission -- instead of raising ``TypeError``
    deep inside the tally bookkeeping and killing the whole run.  Dropped
    values do not consume the sender's first-announcement slot: a later
    well-formed announcement from the same sender still counts.
    """
    try:
        hash(value)
    except TypeError:
        return False
    return True


class BroadcastProtocolNode(NodeProcess):
    """Common machinery for all broadcast protocol implementations.

    Parameters
    ----------
    t:
        The locally-bounded fault budget the protocol must tolerate.
    source:
        Canonical coordinate of the designated source.  Nodes know it (the
        paper places it at the origin w.l.o.g.).
    source_value:
        Set only on the source's own process: the value to broadcast.
    metric:
        Distance metric; must match the topology the node runs on.

    Subclasses implement message handling and call :meth:`commit` exactly
    once; the base class then performs the one-time ``COMMITTED``
    broadcast.
    """

    def __init__(
        self,
        t: int,
        source: Coord,
        source_value: Any = None,
        metric: Union[str, Metric] = "linf",
    ) -> None:
        if t < 0:
            raise ConfigurationError(f"fault budget t must be >= 0, got {t}")
        self.t = int(t)
        self.source = (int(source[0]), int(source[1]))
        self.source_value = source_value
        self.metric: Metric = get_metric(metric)
        self._committed: Optional[Any] = None
        self._commit_round: Optional[int] = None
        #: neighbors caught announcing two different values (Section V:
        #: on a broadcast channel "duplicity would stand detected")
        self.detected_duplicity: Set[Coord] = set()

    # -- introspection -----------------------------------------------------

    def committed_value(self) -> Optional[Any]:
        """The committed value, or ``None`` while undecided."""
        return self._committed

    @property
    def commit_round(self) -> Optional[int]:
        """Round in which this node committed (−1 = during start)."""
        return self._commit_round

    # -- lifecycle ---------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if self.is_source(ctx):
            if self.source_value is None:
                raise ConfigurationError(
                    f"source node {ctx.node} has no source_value"
                )
            ctx.broadcast(SourceMsg(self.source_value))
            self.commit(ctx, self.source_value)

    def is_source(self, ctx: Context) -> bool:
        """Whether this process runs on the designated source."""
        return ctx.localize(self.source) == ctx.node

    def evidence_state_size(self) -> int:
        """Units of evidence this node currently stores (protocol-defined:
        announcements, chains, determinations).  The protocol-cost bench
        compares these across protocols -- the paper's 'state may be
        reduced by earmarking' claim, measured."""
        return 0

    def commit(self, ctx: Context, value: Any) -> None:
        """Commit to ``value`` (idempotent; the first commitment wins) and
        broadcast ``COMMITTED`` once."""
        if self._committed is not None:
            return
        self._committed = value
        self._commit_round = ctx.round
        ctx.broadcast(CommittedMsg(value))
        self.on_commit(ctx, value)

    def on_commit(self, ctx: Context, value: Any) -> None:
        """Subclass hook run right after committing."""

    # -- shared receive plumbing -------------------------------------------

    def sender_is_source(self, ctx: Context, env: Envelope) -> bool:
        """Whether the envelope was transmitted by the designated source."""
        return ctx.localize(env.sender) == ctx.localize(self.source)

    def note_announcement(
        self, ctx: Context, env: Envelope, first_values: Dict[Coord, Any]
    ) -> Optional[Coord]:
        """Record a ``COMMITTED`` announcement with duplicity detection.

        ``first_values`` is the protocol's first-announcement map (keyed
        by localized sender).  Returns the localized sender when this is
        its *first* announcement (the one that counts); returns ``None``
        for repeats -- flagging the sender in :attr:`detected_duplicity`
        when the repeat contradicts the first value (the broadcast channel
        makes the lie visible to every neighbor simultaneously).
        """
        sender = ctx.localize(env.sender)
        value = env.payload.value
        if sender in first_values:
            if first_values[sender] != value:
                self.detected_duplicity.add(sender)
            return None
        first_values[sender] = value
        return sender

    def handle_source_msg(self, ctx: Context, env: Envelope) -> bool:
        """Commit on a genuine direct source transmission.

        Returns ``True`` when the envelope was a source message (whether or
        not it led to a commit), so subclasses can dispatch simply.  A
        ``SourceMsg`` from anyone but the true source is adversarial noise
        and is ignored.
        """
        if not isinstance(env.payload, SourceMsg):
            return False
        if self.sender_is_source(ctx, env):
            self.commit(ctx, env.payload.value)
        return True
