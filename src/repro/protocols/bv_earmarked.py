"""The earmarked Bhandari-Vaidya protocol: topology-known optimization.

Section VI of the paper twice points out that the constructive
completeness proof licenses a leaner implementation: "This state may be
reduced further by earmarking exact messages that a node should lookout
for", and the related-work section contrasts algorithms "that work with
knowledge of topology".  This protocol is that variant, built directly on
the verified constructions:

- at startup each node derives its induction frame
  (:func:`repro.core.earmark.watchlist_for_node`): one already-committed
  neighborhood ``nbd(c)`` plus, for each of its ``r(2r+1)`` member nodes,
  the exact node-disjoint relay chains of Figs. 4-7;
- it then ignores all HEARD traffic except reports arriving along a
  watched chain (and still *forwards* reports like any honest node --
  other nodes' constructions route through it);
- **determination**: a watched origin is determined to value ``v`` once
  ``t + 1`` of its (pairwise node-disjoint, single-neighborhood-confined)
  watched chains deliver matching reports -- no set packing needed, the
  construction already is a packing;
- **commitment**: ``t + 1`` watched origins determined to the same value
  (they all lie in the one chosen neighborhood) -- no covering-center
  search needed.

Same exact threshold ``t < r(2r+1)/2``; strictly less state and no
NP-ish packing at runtime.  The trade-off is the model assumption the
paper names: nodes must know the topology and the source location.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.core.earmark import RelayChain, watchlist_for_node
from repro.geometry.coords import Coord
from repro.geometry.metrics import Metric
from repro.protocols.base import HeardMsg
from repro.protocols.bv_indirect import BVIndirectProtocol
from repro.radio.messages import Envelope
from repro.radio.node import Context


class BVEarmarkedProtocol(BVIndirectProtocol):
    """Indirect-report protocol with construction-derived watch-lists.

    Inherits the honest *transmission* behavior (HEARD relaying with
    plausibility validation) from :class:`BVIndirectProtocol` and replaces
    the evidence bookkeeping with exact chain matching.
    """

    def __init__(
        self,
        t: int,
        source: Coord,
        source_value: Any = None,
        metric: "Union[str, Metric]" = "linf",
        max_relays: int = 3,
        locality_filter: bool = True,
    ) -> None:
        super().__init__(
            t,
            source,
            source_value=source_value,
            metric=metric,
            max_relays=max_relays,
            locality_filter=locality_filter,
        )
        #: origin -> list of watched chains (set at start; None = direct
        #: source neighbor, no watch-list needed)
        self._watch: Optional[Dict[Coord, List[RelayChain]]] = None
        #: (origin, value) -> set of matched chain indices
        self._chain_hits: Dict[Tuple[Coord, Any], Set[int]] = {}
        #: per-value tally of determined *watched* origins
        self._value_support: Dict[Any, Set[Coord]] = {}

    # -- lifecycle ------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        super().on_start(ctx)
        src = ctx.localize(self.source)
        self._watch = watchlist_for_node(ctx.node, src, ctx.r)

    # -- evidence --------------------------------------------------------------

    def _on_heard(self, ctx: Context, env: Envelope, msg: HeardMsg) -> None:
        relays_canonical = (env.sender,) + tuple(msg.relays)
        if len(relays_canonical) > self.max_relays:
            return
        chain = tuple(ctx.localize(f) for f in relays_canonical)
        origin = ctx.localize(msg.origin)
        if not self._plausible_chain(ctx, chain, origin):
            return
        if self._committed is None:
            self._match_chain(ctx, origin, msg.value, chain)
        if len(chain) < self.max_relays and self._local_enough(
            ctx, chain, origin
        ):
            ctx.broadcast(
                HeardMsg(
                    origin=msg.origin,
                    value=msg.value,
                    relays=relays_canonical,
                )
            )

    def _match_chain(
        self, ctx: Context, origin: Coord, value: Any, chain: RelayChain
    ) -> None:
        """Record a report iff it travelled a watched chain."""
        if self._watch is None or origin in self._determined:
            return
        expected = self._watch.get(origin)
        if not expected:
            return
        try:
            idx = expected.index(tuple(chain))
        except ValueError:
            return  # not an earmarked chain: ignored entirely
        hits = self._chain_hits.setdefault((origin, value), set())
        hits.add(idx)
        if len(hits) >= self.t + 1:
            self._determine(ctx, origin, value)

    # -- determination / commitment -----------------------------------------------

    def _determine(self, ctx: Context, node: Coord, value: Any) -> None:
        """Record a truthful determination; commit on ``t + 1`` watched
        origins agreeing.

        Direct hearings of non-watched neighbors are recorded (they are
        reliable) but only *watched* origins count toward commitment --
        they are guaranteed to share a neighborhood, which is what the
        commit rule requires.
        """
        if node in self._determined:
            return
        self._determined[node] = value
        if self._committed is not None:
            return
        watched = self._watch is not None and node in self._watch
        direct_neighbor = self.metric.within(node, ctx.node, ctx.r)
        if not (watched or direct_neighbor):
            return
        support = self._value_support.setdefault(value, set())
        support.add(node)
        if len(support) >= self.t + 1 and self._support_in_one_nbd(
            ctx, support
        ):
            self.commit(ctx, value)

    def _support_in_one_nbd(self, ctx: Context, support: Set[Coord]) -> bool:
        """Whether ``t + 1`` supporters fit a single neighborhood.

        Watched origins always do (they share the frame's neighborhood);
        mixing in directly-heard neighbors can exceed one neighborhood, so
        we check the covering condition on the cheap: if all supporters
        are watched, accept immediately, else fall back to the geometric
        test restricted to any ``t + 1``-subset... in practice the watched
        set alone crosses the bar, so the fallback just scans once.
        """
        if self._watch is not None:
            watched_support = [
                n for n in sorted(support) if n in self._watch
            ]
            if len(watched_support) >= self.t + 1:
                return True
        from repro.protocols.evidence import covering_centers

        pts = sorted(support)
        # any t+1 subset suffices; test the full set first, then prune
        if covering_centers(pts, ctx.r, self.metric):
            return True
        if len(pts) > self.t + 1:
            for drop in range(len(pts)):
                subset = pts[:drop] + pts[drop + 1 :]
                if len(subset) >= self.t + 1 and covering_centers(
                    subset[: self.t + 1], ctx.r, self.metric
                ):
                    return True
        return False

    def on_round_end(self, ctx: Context) -> None:
        """Earmarked matching is immediate; nothing batched."""

    # -- introspection -----------------------------------------------------------

    def evidence_state_size(self) -> int:
        """Matched chain hits plus determinations (the watch-list itself
        is static topology knowledge, reported separately)."""
        hits = sum(len(s) for s in self._chain_hits.values())
        return len(self._announced) + len(self._determined) + hits

    def watchlist_chain_count(self) -> int:
        """Total watched chains (the protocol's evidence-state bound)."""
        if self._watch is None:
            return 0
        return sum(len(chains) for chains in self._watch.values())
