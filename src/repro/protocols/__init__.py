"""Broadcast protocols from the paper.

Four protocols, in increasing sophistication:

- :class:`~repro.protocols.crash_flood.CrashFloodProtocol` -- Section VII:
  under crash-stop faults "no special protocol is required"; commit on
  first receipt, relay once.
- :class:`~repro.protocols.cpa.CPAProtocol` -- the simple protocol of Koo
  (PODC'04), called the Certified Propagation Algorithm by Pelc & Peleg:
  commit when ``t+1`` *neighbors* have announced the same value (Section
  IX analyzes it, proving ``t <= (2/3) r^2`` suffices).
- :class:`~repro.protocols.bv_two_hop.BVTwoHopProtocol` -- the simplified
  Bhandari-Vaidya protocol (Section VI-B): only direct neighbors of a
  committing node report it, and the commit rule packs node-disjoint
  two-hop evidence chains inside a single neighborhood.
- :class:`~repro.protocols.bv_indirect.BVIndirectProtocol` -- the full
  protocol of Section VI: HEARD reports relay up to three intermediate
  hops, and commitment uses the two-level rule (reliably determine
  individual nodes' commitments via ``t+1`` node-disjoint report paths in
  a single neighborhood, then commit when ``t+1`` determined nodes in a
  single neighborhood agree).  Both BV protocols achieve the paper's exact
  threshold ``t < r(2r+1)/2``.
"""

from repro.protocols.base import (
    SourceMsg,
    CommittedMsg,
    HeardMsg,
    BroadcastProtocolNode,
)
from repro.protocols.crash_flood import CrashFloodProtocol
from repro.protocols.cpa import CPAProtocol
from repro.protocols.bv_two_hop import BVTwoHopProtocol
from repro.protocols.bv_indirect import BVIndirectProtocol
from repro.protocols.bv_earmarked import BVEarmarkedProtocol
from repro.protocols.registry import PROTOCOLS, make_protocol, protocol_names

__all__ = [
    "SourceMsg",
    "CommittedMsg",
    "HeardMsg",
    "BroadcastProtocolNode",
    "CrashFloodProtocol",
    "CPAProtocol",
    "BVTwoHopProtocol",
    "BVIndirectProtocol",
    "BVEarmarkedProtocol",
    "PROTOCOLS",
    "make_protocol",
    "protocol_names",
]
