"""The crash-stop broadcast protocol (paper, Section VII).

"When only crash-stop failures are admissible, no special protocol is
required.  Each node that receives a value, commits to it, re-broadcasts
it once for the benefit of others, and then may terminate local execution
of the protocol.  Thus the sole criterion for achievability is
reachability."

The implementation commits on the first value heard from *any* neighbor
(every sender is honest in the crash-stop model -- it may only die, not
lie), relays it once via the shared ``COMMITTED`` broadcast, and halts.
"""

from __future__ import annotations

from repro.protocols.base import BroadcastProtocolNode, CommittedMsg, SourceMsg
from repro.radio.messages import Envelope
from repro.radio.node import Context


class CrashFloodProtocol(BroadcastProtocolNode):
    """Commit-on-first-receipt flooding; correct only without Byzantine
    faults (a single liar defeats it, which the Byzantine tests exhibit)."""

    def on_receive(self, ctx: Context, env: Envelope) -> None:
        if self._committed is not None:
            return
        payload = env.payload
        if isinstance(payload, SourceMsg):
            # Trust SourceMsg only from the true source; under a pure
            # crash-stop adversary nobody else ever sends one, but keeping
            # the check makes the protocol safe to reuse in mixed setups.
            self.handle_source_msg(ctx, env)
        elif isinstance(payload, CommittedMsg):
            self.commit(ctx, payload.value)

    def on_commit(self, ctx: Context, value) -> None:
        # Re-broadcast happened in commit(); local execution may end.
        ctx.halt()
