"""Mutation kernels: the neighborhood structure of placement search.

Each kernel perturbs a :class:`~repro.adversary.budget.FaultBudget` in
place -- one add, remove, relocate, or cluster step -- and reports
whether it changed anything.  Kernels never construct their own
generator: every random choice comes from the injected ``rng`` (the
``adversary-injected-rng`` lint rule enforces this), and all candidate
pools are sorted before a draw, so a kernel sequence is a pure function
of ``(initial budget, rng state)``.

All kernels share one signature, ``kernel(budget, rng, candidates)``,
where ``candidates`` is the sorted pool of nodes a fault may occupy
(the caller excludes the source).  :data:`MOVE_KERNELS` registers them
by name for the strategies' uniform draw.
"""

from __future__ import annotations

import random
from types import MappingProxyType
from typing import Callable, List, Mapping, Sequence

from repro.adversary.budget import FaultBudget
from repro.geometry.coords import Coord

#: a mutation kernel: perturb ``budget`` using draws from ``rng``,
#: choosing among ``candidates``; True when the placement changed.
MoveKernel = Callable[[FaultBudget, random.Random, Sequence[Coord]], bool]


def _addable(
    budget: FaultBudget, candidates: Sequence[Coord]
) -> List[Coord]:
    """The candidates a fault can legally move to, in sorted order."""
    return [c for c in candidates if budget.can_add(c)]


def add_fault(
    budget: FaultBudget, rng: random.Random, candidates: Sequence[Coord]
) -> bool:
    """Place one new fault at a uniformly drawn legal candidate."""
    pool = _addable(budget, candidates)
    if not pool:
        return False
    budget.add(rng.choice(pool))
    return True


def remove_fault(
    budget: FaultBudget, rng: random.Random, candidates: Sequence[Coord]
) -> bool:
    """Remove one uniformly drawn existing fault.

    ``candidates`` is unused (kept for the uniform kernel signature).
    """
    current = sorted(budget.faults)
    if not current:
        return False
    budget.remove(rng.choice(current))
    return True


def relocate_fault(
    budget: FaultBudget, rng: random.Random, candidates: Sequence[Coord]
) -> bool:
    """Move one fault somewhere else legal.

    Removing first frees budget headroom, so the destination pool is
    computed *after* the removal; when nothing else is legal the fault
    is put back (no change).
    """
    current = sorted(budget.faults)
    if not current:
        return False
    victim = rng.choice(current)
    budget.remove(victim)
    pool = [c for c in _addable(budget, candidates) if c != victim]
    if not pool:
        budget.add(victim)
        return False
    budget.add(rng.choice(pool))
    return True


def cluster_fault(
    budget: FaultBudget, rng: random.Random, candidates: Sequence[Coord]
) -> bool:
    """Add a fault *near* an existing one (crowd a neighborhood).

    The defeating constructions concentrate faults so that some ball is
    saturated; this kernel biases the search the same way by restricting
    the destination pool to candidates whose closed ball already contains
    at least one fault.  Falls back to no-op (not a uniform add) when no
    such candidate is legal, so its bias is never silently diluted.
    """
    if not len(budget):
        return False
    pool = [
        c
        for c in _addable(budget, candidates)
        if budget.count_at(c) > 0
    ]
    if not pool:
        return False
    budget.add(rng.choice(pool))
    return True


#: kernel name -> kernel, in the order strategies cycle through them
MOVE_KERNELS: Mapping[str, MoveKernel] = MappingProxyType({
    "add": add_fault,
    "remove": remove_fault,
    "relocate": relocate_fault,
    "cluster": cluster_fault,
})
