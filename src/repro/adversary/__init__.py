"""``repro.adversary``: automated worst-case adversary search.

The paper's negative results are existence proofs: *some* locally
bounded placement defeats reliable broadcast once ``t`` crosses the
threshold.  The positive results say *no* placement below it does.
This package operationalizes both directions -- given a protocol, a
topology, and a budget, it *searches* the space of valid placements for
one that defeats the protocol, and certifies whatever it finds:

- :mod:`repro.adversary.budget` -- incremental per-neighborhood budget
  accounting (:class:`FaultBudget`), the O(ball) feasibility check the
  search's inner loop runs;
- :mod:`repro.adversary.moves` -- add/remove/relocate/cluster mutation
  kernels, all driven by an injected ``random.Random``;
- :mod:`repro.adversary.objective` -- the scalar attack score
  (:func:`score_row`) over metrics-bearing executor rows;
- :mod:`repro.adversary.strategies` -- seeded greedy search,
  hill-climbing with restarts, and simulated annealing
  (:func:`run_search`), all evaluating candidate batches through the
  parallel cached :class:`repro.exec.SweepExecutor`;
- :mod:`repro.adversary.certify` -- independent re-validation and
  deterministic JSONL replay of claimed counterexamples
  (:func:`certify_placement`).

Searches are deterministic for any worker count: same
:class:`SearchConfig`, same :class:`SearchResult`.  See
``docs/ADVERSARY.md`` for the search model and the CLI
(``repro adversary``).
"""

from repro.adversary.budget import FaultBudget
from repro.adversary.certify import Certificate, certify_placement, certify_result
from repro.adversary.moves import (
    MOVE_KERNELS,
    add_fault,
    cluster_fault,
    relocate_fault,
    remove_fault,
)
from repro.adversary.objective import (
    UNDECIDED_WEIGHT,
    WRONG_COMMIT_WEIGHT,
    AttackScore,
    final_wavefront,
    score_row,
)
from repro.adversary.strategies import (
    STRATEGIES,
    PlacementEvaluator,
    SearchConfig,
    SearchResult,
    greedy_search,
    hill_climb,
    run_search,
    simulated_annealing,
)

__all__ = [
    "AttackScore",
    "Certificate",
    "FaultBudget",
    "MOVE_KERNELS",
    "PlacementEvaluator",
    "STRATEGIES",
    "SearchConfig",
    "SearchResult",
    "UNDECIDED_WEIGHT",
    "WRONG_COMMIT_WEIGHT",
    "add_fault",
    "certify_placement",
    "certify_result",
    "cluster_fault",
    "final_wavefront",
    "greedy_search",
    "hill_climb",
    "relocate_fault",
    "remove_fault",
    "run_search",
    "score_row",
    "simulated_annealing",
]
