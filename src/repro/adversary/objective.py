"""Scalar attack objectives over trial rows.

Search needs a total order on candidate placements.  The simulator's
graded outcome (via :func:`repro.exec.run_trial` with
``collect_metrics=True``) gives three progressively weaker signals of
adversarial success, combined lexicographically by weight:

1. **wrong commits** -- correct nodes that committed a value other than
   the source's (a safety violation, the strongest possible defeat);
2. **undecided nodes** -- correct nodes that never committed (a liveness
   violation; Koo-style defeats show up here);
3. **wavefront stall** -- how far short of the torus radius the commit
   wavefront stopped, from :mod:`repro.obs` metrics.  This is the
   gradient: placements that slow the front score better than ones the
   broadcast sails through, even when neither defeats outright.

Weights are powers of 10 with a gap larger than any count the supported
tori can produce, so a single wrong commit always outranks any number of
undecideds, which outrank any stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: one safety violation beats any liveness count (tori stay < 10^3 nodes)
WRONG_COMMIT_WEIGHT = 1_000_000
#: one undecided node beats any stall amount
UNDECIDED_WEIGHT = 1_000


@dataclass(frozen=True)
class AttackScore:
    """The graded quality of one placement, higher is worse-for-protocol.

    ``defeated`` is the binary verdict (broadcast not achieved);
    ``value`` is the scalar the hill uses.  A defeated run always scores
    at least :data:`UNDECIDED_WEIGHT` (one undecided or one wrong
    commit), so ``value > 0`` does not imply defeat but defeat implies
    ``value > 0``.
    """

    defeated: bool
    wrong_commits: int
    undecided: int
    stall: float
    value: float

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports."""
        return {
            "defeated": self.defeated,
            "wrong_commits": self.wrong_commits,
            "undecided": self.undecided,
            "stall": self.stall,
            "value": self.value,
        }


def final_wavefront(metrics: Dict[str, Any]) -> float:
    """The farthest commit-wavefront radius a run reached (0.0 if no
    correct node ever committed)."""
    series = metrics.get("commit_wavefront_by_round") or []
    if not series:
        return 0.0
    return float(series[-1][1])


def score_row(row: Dict[str, Any], max_radius: int) -> AttackScore:
    """Score one :func:`repro.exec.run_trial` row (metrics required).

    ``max_radius`` is the largest source distance on the torus (for an
    L-infinity square torus of side ``s``, ``s // 2``); the stall term is
    how far short of it the commit wavefront stopped.
    """
    if "metrics" not in row:
        raise KeyError(
            "score_row needs a metrics-bearing row; evaluate with "
            "collect_metrics=True"
        )
    wrong = int(row.get("wrong_commits", 0))
    undecided = int(row["undecided"])
    stall = max(0.0, float(max_radius) - final_wavefront(row["metrics"]))
    return AttackScore(
        defeated=not bool(row["achieved"]),
        wrong_commits=wrong,
        undecided=undecided,
        stall=stall,
        value=(
            wrong * WRONG_COMMIT_WEIGHT + undecided * UNDECIDED_WEIGHT + stall
        ),
    )
