"""Counterexample certification: from search output to checkable artifact.

A search result is a *claim* ("this placement defeats the protocol").
Certification turns it into evidence that stands on its own:

1. **budget validity** -- the placement is re-checked against the
   locally-bounded model with the independent batch counter
   (:func:`repro.faults.placement.validate_placement`), not the search's
   own incremental tracker;
2. **replay** -- the scenario is rebuilt through the *same* builder and
   derived seed the search's evaluator used
   (:func:`repro.exec.build_scenario`), re-run with a
   :class:`~repro.obs.JsonlRecorder` and :class:`~repro.obs.RunMetrics`
   attached, and re-graded;
3. **trace** -- the replay's canonical JSONL stream is schema-validated
   and content-hashed, so two certifications of the same counterexample
   produce byte-identical traces with equal digests.

The resulting :class:`Certificate` is plain data: it serializes to JSON
and the trace to JSONL, and both are deterministic.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.adversary.objective import AttackScore, score_row
from repro.adversary.strategies import PlacementEvaluator, SearchConfig
from repro.exec import build_scenario, derive_seed
from repro.faults.placement import max_faults_in_any_nbd, validate_placement
from repro.geometry.coords import Coord
from repro.obs import JsonlRecorder, RunMetrics, metrics_summary, validate_jsonl


@dataclass(frozen=True)
class Certificate:
    """One certified (or refuted) counterexample claim.

    ``defeated`` is the replay's verdict; ``trace_sha256`` commits to
    the exact JSONL evidence (``trace`` holds the document itself).
    """

    config: SearchConfig
    faults: Tuple[Coord, ...]
    worst_nbd: int
    defeated: bool
    score: AttackScore
    seed: int
    scenario_key: str
    trace: str
    trace_events: int
    trace_sha256: str
    metrics: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the trace document itself is elided --
        write it with :meth:`write_trace`)."""
        return {
            "search_key": self.config.search_key(),
            "scenario_key": self.scenario_key,
            "faults": [list(f) for f in self.faults],
            "num_faults": len(self.faults),
            "worst_nbd": self.worst_nbd,
            "budget_t": self.config.t,
            "defeated": self.defeated,
            "score": self.score.as_dict(),
            "seed": self.seed,
            "trace_events": self.trace_events,
            "trace_sha256": self.trace_sha256,
            "metrics": self.metrics,
        }

    def write_trace(self, path) -> int:
        """Write the replay's JSONL trace to ``path``; returns the
        event count."""
        pathlib.Path(path).write_text(self.trace, encoding="utf-8")
        return self.trace_events


def certify_placement(
    config: SearchConfig, faults: Iterable[Coord]
) -> Certificate:
    """Independently validate and replay one placement.

    Raises :class:`~repro.errors.InvalidPlacementError` when the
    placement breaks the ``t``-per-neighborhood budget -- an invalid
    "counterexample" refutes nothing about the model.
    """
    evaluator = PlacementEvaluator(config)
    placement = frozenset(
        evaluator.topology.canonical(tuple(f)) for f in faults
    )
    validate_placement(
        placement,
        config.t,
        config.r,
        metric=config.metric,
        topology=evaluator.topology,
    )
    spec = evaluator.spec_for(placement)
    key = spec.scenario_key()
    seed = derive_seed(config.seed, key, 0)
    scenario = build_scenario(spec, seed)
    scenario.validate()
    recorder = JsonlRecorder()
    metrics = RunMetrics(source=scenario.source)
    outcome = scenario.run(observers=(recorder, metrics))
    summary = metrics_summary(metrics)
    row = {
        "achieved": bool(outcome.achieved),
        "undecided": len(outcome.undecided),
        "wrong_commits": len(outcome.wrong_commits),
        "metrics": summary,
    }
    score = score_row(row, evaluator.max_radius)
    trace = recorder.dumps()
    events = validate_jsonl(trace)
    return Certificate(
        config=config,
        faults=tuple(sorted(placement)),
        worst_nbd=max_faults_in_any_nbd(
            placement, config.r, metric=config.metric,
            topology=evaluator.topology,
        ),
        defeated=not outcome.achieved,
        score=score,
        seed=seed,
        scenario_key=key,
        trace=trace,
        trace_events=events,
        trace_sha256=hashlib.sha256(trace.encode("utf-8")).hexdigest(),
        metrics=summary,
    )


def certify_result(result) -> Certificate:
    """Certify a :class:`~repro.adversary.strategies.SearchResult`'s
    best placement (convenience wrapper over
    :func:`certify_placement`)."""
    return certify_placement(result.config, result.best_faults)
