"""Incremental fault-budget accounting for placement search.

The locally-bounded model's validity check -- "no closed radius-``r``
ball contains more than ``t`` faults" -- is what every search move must
re-establish.  Recomputing it from scratch
(:func:`repro.faults.placement.fault_counts_per_nbd`) costs
``O(|faults| * |ball|)`` per candidate, which dominates a hill-climb's
inner loop.  :class:`FaultBudget` maintains the per-center counts
incrementally, so adding, removing, or feasibility-testing one fault is
``O(|ball|)`` -- constant in the number of faults already placed.

The invariant (checked against the batch counter in the tests): after
any sequence of :meth:`FaultBudget.add` / :meth:`FaultBudget.remove`,
the internal counts equal ``fault_counts_per_nbd(self.faults, r,
metric, topology)`` and no count exceeds ``t``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.errors import InvalidPlacementError
from repro.geometry.balls import closed_ball_points
from repro.geometry.coords import Coord
from repro.geometry.metrics import get_metric
from repro.grid.topology import Topology


class FaultBudget:
    """A mutable fault placement that always respects the ``t`` budget.

    All coordinates are canonicalized through ``topology`` when one is
    given (the infinite grid otherwise).  Mutations refuse to violate
    the budget: :meth:`add` raises unless :meth:`can_add` holds, so a
    budget object is *always* a valid placement.
    """

    __slots__ = ("t", "r", "metric", "topology", "_faults", "_counts")

    def __init__(
        self,
        t: int,
        r: int,
        metric="linf",
        topology: Optional[Topology] = None,
        faults: Iterable[Coord] = (),
    ) -> None:
        if t < 0:
            raise InvalidPlacementError(f"budget t must be >= 0, got {t}")
        self.t = t
        self.r = r
        self.metric = get_metric(metric)
        self.topology = topology
        self._faults: set = set()
        self._counts: Dict[Coord, int] = {}
        for f in faults:
            node = self._canon(f)
            if node not in self._faults:
                self.add(node)

    def _canon(self, node: Coord) -> Coord:
        """Canonical (wrapped) form of a coordinate."""
        if self.topology is not None:
            return self.topology.canonical(node)
        return (node[0], node[1])

    def _ball(self, node: Coord) -> List[Coord]:
        """The closed ball of centers whose neighborhood covers ``node``."""
        return closed_ball_points(self.metric, node, self.r, self.topology)

    # -- queries ----------------------------------------------------------

    @property
    def faults(self) -> FrozenSet[Coord]:
        """The current placement as an immutable set."""
        return frozenset(self._faults)

    def __contains__(self, node: Coord) -> bool:
        """Whether ``node`` (canonicalized) is currently faulty."""
        return self._canon(node) in self._faults

    def __len__(self) -> int:
        """Number of placed faults."""
        return len(self._faults)

    def __iter__(self) -> Iterator[Coord]:
        """Iterate faults in sorted (deterministic) order."""
        return iter(sorted(self._faults))

    def count_at(self, center: Coord) -> int:
        """Faults currently inside the closed ball around ``center``."""
        return self._counts.get(self._canon(center), 0)

    def worst(self) -> int:
        """The maximum per-neighborhood count (0 when empty)."""
        return max(self._counts.values(), default=0)

    def headroom(self, node: Coord) -> int:
        """How many more faults the tightest ball covering ``node`` can
        take: ``t - max(count over the ball)``.  Nonpositive means a
        fault at ``node`` would (or does) saturate some neighborhood."""
        node = self._canon(node)
        tightest = max(
            (self._counts.get(c, 0) for c in self._ball(node)), default=0
        )
        return self.t - tightest

    def can_add(self, node: Coord) -> bool:
        """Whether placing a fault at ``node`` keeps every ball <= ``t``.

        False when ``node`` is already faulty (adding it would be a
        no-op, and search moves should not count it as progress).
        """
        node = self._canon(node)
        if node in self._faults:
            return False
        return all(
            self._counts.get(c, 0) + 1 <= self.t for c in self._ball(node)
        )

    # -- mutations --------------------------------------------------------

    def add(self, node: Coord) -> None:
        """Place a fault at ``node``; raise if the budget would break."""
        node = self._canon(node)
        if node in self._faults:
            raise InvalidPlacementError(f"{node} is already faulty")
        ball = self._ball(node)
        for c in ball:
            if self._counts.get(c, 0) + 1 > self.t:
                raise InvalidPlacementError(
                    f"adding {node} would put {self._counts.get(c, 0) + 1} "
                    f"faults in the neighborhood of {c} (budget t={self.t})"
                )
        self._faults.add(node)
        for c in ball:
            self._counts[c] = self._counts.get(c, 0) + 1

    def remove(self, node: Coord) -> None:
        """Remove the fault at ``node``; raise if none is there."""
        node = self._canon(node)
        if node not in self._faults:
            raise InvalidPlacementError(f"{node} is not faulty")
        self._faults.discard(node)
        for c in self._ball(node):
            left = self._counts.get(c, 0) - 1
            if left:
                self._counts[c] = left
            else:
                self._counts.pop(c, None)

    def copy(self) -> "FaultBudget":
        """An independent deep copy (shares only the immutable config)."""
        dup = FaultBudget.__new__(FaultBudget)
        dup.t = self.t
        dup.r = self.r
        dup.metric = self.metric
        dup.topology = self.topology
        dup._faults = set(self._faults)
        dup._counts = dict(self._counts)
        return dup
