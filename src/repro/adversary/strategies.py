"""Search strategies: greedy, hill-climb with restarts, annealing.

All three strategies share the same skeleton: start from seeded initial
placements (the paper's trimmed strip constructions plus random maximal
placements), repeatedly *propose a batch* of mutated placements
(:mod:`repro.adversary.moves`), evaluate the whole batch through the
parallel cached executor (:class:`repro.exec.SweepExecutor`), and decide
acceptances *serially in batch order*.  That split is what makes the
search deterministic under parallelism: every random draw happens either
before the batch is submitted or after its rows are back (and the
executor's rows are a pure function of the specs), so the same
:class:`SearchConfig` produces the same :class:`SearchResult` for any
worker count -- pinned by ``tests/test_adversary_search.py``.

Randomness is derived, never ambient: each strategy builds its generator
from :func:`repro.exec.derive_seed` over the config's
:meth:`~SearchConfig.search_key`, so two searches differing in any knob
draw from unrelated streams.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.adversary.budget import FaultBudget
from repro.adversary.moves import MOVE_KERNELS
from repro.adversary.objective import AttackScore, score_row
from repro.errors import ConfigurationError
from repro.exec import KINDS, ResultCache, ScenarioSpec, SweepExecutor, derive_seed
from repro.experiments.scenarios import strip_torus
from repro.faults.constructions import (
    torus_byzantine_strip,
    torus_crash_partition,
)
from repro.faults.placement import greedy_random_placement, trim_to_budget
from repro.geometry.coords import Coord
from repro.grid.torus import Torus

#: a placement as passed between search phases
Placement = FrozenSet[Coord]


@dataclass(frozen=True)
class SearchConfig:
    """Everything a search run depends on (and nothing it does not).

    Frozen and canonically serializable (:meth:`search_key`) for the
    same reason :class:`~repro.exec.ScenarioSpec` is: the key seeds the
    search's random streams and identifies its work in reports, so two
    configs with equal fields are the *same* search.
    """

    kind: str
    r: int
    t: int
    protocol: str = ""
    byz_strategy: str = "silent"
    metric: str = "linf"
    torus_side: Optional[int] = None
    max_rounds: int = 120
    seed: int = 0
    #: hard cap on simulator evaluations (distinct placements scored)
    eval_budget: int = 96
    #: proposals evaluated together per search step
    batch_size: int = 8
    #: independent starts for hill-climbing
    restarts: int = 2
    #: annealing start temperature, in objective-value units
    init_temp: float = 2000.0
    #: multiplicative temperature decay per batch
    cooling: float = 0.85
    #: return as soon as a defeating placement is scored
    stop_on_defeat: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.t < 0:
            raise ConfigurationError(f"t must be >= 0, got {self.t}")
        if self.eval_budget < 1 or self.batch_size < 1 or self.restarts < 1:
            raise ConfigurationError(
                "eval_budget, batch_size, and restarts must all be >= 1"
            )
        if not self.protocol:
            object.__setattr__(
                self,
                "protocol",
                "bv-two-hop" if self.kind == "byzantine" else "crash-flood",
            )
        if self.torus_side is None:
            object.__setattr__(
                self, "torus_side", strip_torus(self.r, self.metric).width
            )

    def search_key(self) -> str:
        """Canonical JSON identity (seed-derivation and report key)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SearchResult:
    """The outcome of one strategy run.

    ``best_faults`` is the highest-scoring placement seen (sorted tuple);
    ``history`` records ``(evaluations so far, best value so far)`` at
    each improvement, for convergence plots.
    """

    strategy: str
    config: SearchConfig
    best_faults: Tuple[Coord, ...]
    best_score: AttackScore
    defeated: bool
    evaluations: int
    history: Tuple[Tuple[int, float], ...]
    cache_hits: int
    cache_misses: int

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what the CLI prints and tests compare)."""
        return {
            "strategy": self.strategy,
            "search_key": self.config.search_key(),
            "best_faults": [list(f) for f in self.best_faults],
            "best_score": self.best_score.as_dict(),
            "defeated": self.defeated,
            "evaluations": self.evaluations,
            "history": [list(h) for h in self.history],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class PlacementEvaluator:
    """Scores placements through the parallel cached sweep executor.

    Each placement becomes one explicit-mode :class:`ScenarioSpec`
    (``trials=1``, ``collect_metrics=True``), so evaluation inherits the
    executor's determinism and its on-disk memoization: re-running a
    search against a warm cache recomputes nothing.  An in-memory memo
    additionally dedupes within the run; only memo misses count against
    ``config.eval_budget``.

    ``engine`` picks the simulation backend for evaluations.  It is a
    constructor knob, *not* a :class:`SearchConfig` field: the backends
    are observationally identical, so the engine must not perturb
    ``search_key()`` (same seeds, same proposals, same cache rows
    either way).
    """

    def __init__(
        self,
        config: SearchConfig,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        engine: str = "reference",
    ) -> None:
        self.config = config
        self.engine = engine
        self.topology = Torus.square(config.torus_side, config.r, config.metric)
        self.source = self.topology.canonical((0, 0))
        self.candidates: Tuple[Coord, ...] = tuple(
            sorted(n for n in self.topology.nodes() if n != self.source)
        )
        self.max_radius = int(
            max(
                self.topology.distance(self.source, n)
                for n in self.topology.nodes()
            )
        )
        # chunk_size=1: one placement per work unit, so any subset of an
        # earlier search's placements is rediscoverable in the cache
        self._executor = SweepExecutor(workers=workers, cache=cache, chunk_size=1)
        self._memo: Dict[Placement, AttackScore] = {}
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def spec_for(self, placement: Placement) -> ScenarioSpec:
        """The explicit-mode spec that evaluates ``placement``."""
        cfg = self.config
        return ScenarioSpec(
            kind=cfg.kind,
            r=cfg.r,
            t=cfg.t,
            trials=1,
            protocol=cfg.protocol,
            strategy=cfg.byz_strategy if cfg.kind == "byzantine" else None,
            placement="explicit",
            metric=cfg.metric,
            enforce_budget=False,
            validate=False,
            max_rounds=cfg.max_rounds,
            collect_metrics=True,
            scenario_kwargs=(
                ("faults", tuple(sorted(placement))),
                ("torus_side", cfg.torus_side),
            ),
            engine=self.engine,
        )

    def remaining(self) -> int:
        """Evaluations left before ``config.eval_budget`` is exhausted."""
        return max(0, self.config.eval_budget - self.evaluations)

    def evaluate(
        self, placements: Sequence[Placement]
    ) -> List[Optional[AttackScore]]:
        """Score placements; memoized duplicates are free.

        Returns one entry per input, in order.  Placements that would
        exceed the remaining evaluation budget come back as ``None``
        (never silently re-ordered), so callers pair inputs with outputs
        by position and skip the ``None`` tail.
        """
        fresh: List[Placement] = []
        seen_this_call = set()
        for p in placements:
            if p not in self._memo and p not in seen_this_call:
                seen_this_call.add(p)
                fresh.append(p)
        fresh = fresh[: self.remaining()]
        if fresh:
            result = self._executor.run(
                [self.spec_for(p) for p in fresh], root_seed=self.config.seed
            )
            self.evaluations += len(fresh)
            self.cache_hits += result.stats.cache_hits
            self.cache_misses += result.stats.cache_misses
            for p, rows in zip(fresh, result.rows):
                self._memo[p] = score_row(rows[0], self.max_radius)
        return [self._memo.get(p) for p in placements]


def _initial_placements(
    evaluator: PlacementEvaluator, rng: random.Random
) -> List[Placement]:
    """Seed placements: the trimmed paper construction, then random
    maximal budget-respecting placements (one per remaining slot up to
    three).  The construction goes first -- at or above the threshold it
    frequently defeats outright, ending the search in one batch."""
    cfg = evaluator.config
    topo = evaluator.topology
    build = (
        torus_byzantine_strip
        if cfg.kind == "byzantine"
        else torus_crash_partition
    )
    construction = trim_to_budget(
        build(topo, evaluator.source),
        cfg.t,
        cfg.r,
        metric=cfg.metric,
        topology=topo,
    )
    out: List[Placement] = [frozenset(construction)]
    for _ in range(3):
        out.append(
            frozenset(
                greedy_random_placement(
                    evaluator.candidates,
                    cfg.t,
                    cfg.r,
                    metric=cfg.metric,
                    topology=topo,
                    rng=rng,
                )
            )
        )
    # dedupe, preserving order
    unique: List[Placement] = []
    for p in out:
        if p not in unique:
            unique.append(p)
    return unique


def _propose_batch(
    current: Placement,
    evaluator: PlacementEvaluator,
    rng: random.Random,
    kernel_names: Sequence[str],
) -> List[Placement]:
    """One batch of distinct mutations of ``current``.

    Each slot rebuilds a :class:`FaultBudget` from ``current`` and
    applies one randomly chosen kernel; failed or duplicate mutations
    are retried a bounded number of times so a stuck neighborhood cannot
    spin forever.
    """
    cfg = evaluator.config
    proposals: List[Placement] = []
    seen = {current}
    attempts = 0
    while len(proposals) < cfg.batch_size and attempts < cfg.batch_size * 8:
        attempts += 1
        budget = FaultBudget(
            cfg.t, cfg.r, cfg.metric, evaluator.topology, faults=current
        )
        kernel = MOVE_KERNELS[rng.choice(list(kernel_names))]
        if not kernel(budget, rng, evaluator.candidates):
            continue
        p = budget.faults
        if p in seen:
            continue
        seen.add(p)
        proposals.append(p)
    return proposals


def _finish(
    strategy: str,
    evaluator: PlacementEvaluator,
    best: Placement,
    best_score: AttackScore,
    history: List[Tuple[int, float]],
) -> SearchResult:
    """Assemble the result record for any strategy."""
    return SearchResult(
        strategy=strategy,
        config=evaluator.config,
        best_faults=tuple(sorted(best)),
        best_score=best_score,
        defeated=best_score.defeated,
        evaluations=evaluator.evaluations,
        history=tuple(history),
        cache_hits=evaluator.cache_hits,
        cache_misses=evaluator.cache_misses,
    )


def _scored_pairs(
    placements: Sequence[Placement],
    scores: Sequence[Optional[AttackScore]],
) -> List[Tuple[Placement, AttackScore]]:
    """Zip placements with their scores, dropping budget-truncated
    (``None``) entries."""
    return [(p, s) for p, s in zip(placements, scores) if s is not None]


def _best_of(
    pairs: Sequence[Tuple[Placement, AttackScore]]
) -> Tuple[Placement, AttackScore]:
    """The first highest-value pair (ties keep earlier order)."""
    best_i = max(range(len(pairs)), key=lambda i: (pairs[i][1].value, -i))
    return pairs[best_i]


def _seeded_start(
    evaluator: PlacementEvaluator,
    rng: random.Random,
    history: List[Tuple[int, float]],
) -> Tuple[Placement, AttackScore]:
    """Evaluate the initial placements and return the best."""
    inits = _initial_placements(evaluator, rng)
    pairs = _scored_pairs(inits, evaluator.evaluate(inits))
    best, best_score = _best_of(pairs)
    history.append((evaluator.evaluations, best_score.value))
    return best, best_score


def greedy_search(
    config: SearchConfig,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
) -> SearchResult:
    """Strictly improving local search from the seeded start.

    Every batch mutates the incumbent; the best proposal replaces it
    only when strictly better.  Stops at the first non-improving batch
    (no restarts, no uphill moves): the cheap baseline the sharper
    strategies are judged against.
    """
    evaluator = PlacementEvaluator(
        config, workers=workers, cache=cache, engine=engine
    )
    rng = random.Random(derive_seed(config.seed, config.search_key(), 0))
    history: List[Tuple[int, float]] = []
    best, best_score = _seeded_start(evaluator, rng, history)
    names = sorted(MOVE_KERNELS)
    while evaluator.remaining() and not (
        config.stop_on_defeat and best_score.defeated
    ):
        batch = _propose_batch(best, evaluator, rng, names)
        if not batch:
            break
        pairs = _scored_pairs(batch, evaluator.evaluate(batch))
        if not pairs:
            break
        cand, cand_score = _best_of(pairs)
        if cand_score.value <= best_score.value:
            break
        best, best_score = cand, cand_score
        history.append((evaluator.evaluations, best_score.value))
    return _finish("greedy", evaluator, best, best_score, history)


def hill_climb(
    config: SearchConfig,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
) -> SearchResult:
    """Greedy ascent with random restarts.

    Restart 0 climbs from the seeded start; later restarts climb from
    fresh random maximal placements.  The returned best spans all
    restarts.
    """
    evaluator = PlacementEvaluator(
        config, workers=workers, cache=cache, engine=engine
    )
    rng = random.Random(derive_seed(config.seed, config.search_key(), 1))
    names = sorted(MOVE_KERNELS)
    history: List[Tuple[int, float]] = []
    best, best_score = _seeded_start(evaluator, rng, history)
    for restart in range(config.restarts):
        if not evaluator.remaining() or (
            config.stop_on_defeat and best_score.defeated
        ):
            break
        if restart == 0:
            cur, cur_score = best, best_score
        else:
            start = frozenset(
                greedy_random_placement(
                    evaluator.candidates,
                    config.t,
                    config.r,
                    metric=config.metric,
                    topology=evaluator.topology,
                    rng=rng,
                )
            )
            start_score = evaluator.evaluate([start])[0]
            if start_score is None:
                break
            cur, cur_score = start, start_score
        while evaluator.remaining() and not (
            config.stop_on_defeat and cur_score.defeated
        ):
            batch = _propose_batch(cur, evaluator, rng, names)
            if not batch:
                break
            pairs = _scored_pairs(batch, evaluator.evaluate(batch))
            if not pairs:
                break
            cand, cand_score = _best_of(pairs)
            if cand_score.value <= cur_score.value:
                break
            cur, cur_score = cand, cand_score
            if cur_score.value > best_score.value:
                best, best_score = cur, cur_score
                history.append((evaluator.evaluations, best_score.value))
        if cur_score.value > best_score.value:
            best, best_score = cur, cur_score
            history.append((evaluator.evaluations, best_score.value))
    return _finish("hill-climb", evaluator, best, best_score, history)


def simulated_annealing(
    config: SearchConfig,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
) -> SearchResult:
    """Batch simulated annealing from the seeded start.

    Each batch proposes mutations of the *walker* (which may sit below
    the best-so-far); acceptances are decided serially in batch order --
    downhill moves accepted with probability ``exp(delta / T)`` -- and
    the temperature cools once per batch.  The uphill tolerance is what
    lets the walker cross the valleys that stop :func:`greedy_search`.
    """
    evaluator = PlacementEvaluator(
        config, workers=workers, cache=cache, engine=engine
    )
    rng = random.Random(derive_seed(config.seed, config.search_key(), 2))
    names = sorted(MOVE_KERNELS)
    history: List[Tuple[int, float]] = []
    best, best_score = _seeded_start(evaluator, rng, history)
    cur, cur_score = best, best_score
    temp = config.init_temp
    while evaluator.remaining() and not (
        config.stop_on_defeat and best_score.defeated
    ):
        batch = _propose_batch(cur, evaluator, rng, names)
        if not batch:
            break
        pairs = _scored_pairs(batch, evaluator.evaluate(batch))
        if not pairs:
            break
        for cand, cand_score in pairs:
            delta = cand_score.value - cur_score.value
            if delta >= 0:
                accept = True
            else:
                # bounded exponent: temp decays geometrically, never 0
                accept = rng.random() < pow(
                    2.718281828459045, max(-60.0, delta / max(temp, 1e-9))
                )
            if accept:
                cur, cur_score = cand, cand_score
                if cur_score.value > best_score.value:
                    best, best_score = cur, cur_score
                    history.append((evaluator.evaluations, best_score.value))
        temp *= config.cooling
    return _finish("anneal", evaluator, best, best_score, history)


#: strategy name -> entry point (the CLI's ``--strategy`` values)
STRATEGIES: Dict[
    str, Callable[[SearchConfig, int, Optional[ResultCache]], SearchResult]
] = {
    "greedy": greedy_search,
    "hill-climb": hill_climb,
    "anneal": simulated_annealing,
}


def run_search(
    config: SearchConfig,
    strategy: str = "anneal",
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "reference",
) -> SearchResult:
    """Dispatch to a named strategy (see :data:`STRATEGIES`).

    ``engine`` selects the evaluation backend (certification always
    replays on the reference engine regardless).
    """
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of "
            f"{sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](
        config, workers=workers, cache=cache, engine=engine
    )
