"""Micro-benchmarks of the combinatorial and simulation engines.

Not a paper artifact -- these track the performance of the pieces the
protocols run in their inner loops (exact set packing, vertex-disjoint
max flow, witness generation/verification, watch-list construction), so
a quadratic regression in any of them shows up as a bench slowdown.

``test_engine_backends`` additionally compares the two simulation
backends (reference vs fastpath, see ``docs/ENGINES.md``) on the same
crash-flood scenarios and writes the wall-clock table to
``benchmarks/results/BENCH_engines.json``; the >= 20x speedup assertion
at side 200 is the fastpath engine's performance regression pin.

``test_engine_memory_side_1000`` is the large-grid smoke: one
crash-flood run per backend on a side-1000 torus (a million nodes),
each in its own subprocess so ``ru_maxrss`` isolates that engine's peak
RSS.  It pins the fastpath memory budget -- the ball-stencil/bitset
refactor keeps peak RSS around 550 MB where the old ``(N, K)`` int64
neighbor table alone was 192 MB -- and the >= 20x speedup at this size.
Both results land in ``BENCH_engines.json`` (keys ``wall_clock`` /
``side_1000_memory``; read-merge-write, so the tests can run in any
order or alone).
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.analysis.flows import max_vertex_disjoint_paths
from repro.analysis.packing import find_set_packing
from repro.core.earmark import watchlist_for_node
from repro.core.paths import corner_connectivity
from repro.core.witnesses import verify_connectivity_map
from repro.grid.graphs import adjacency_map
from repro.grid.torus import Torus
from repro.radio.fastpath import HAVE_NUMPY


def test_packing_protocol_shaped(benchmark):
    """A commit-rule-sized instance: honest disjoint chains plus
    adversarial overlapping fakes."""
    t = 9
    sets = [frozenset({("n", i)}) for i in range(t + 1)]
    sets += [frozenset({("n", t + 1 + i), ("m", i)}) for i in range(t)]
    sets += [frozenset({("x", i), ("bad", i % 3)}) for i in range(30)]

    result = benchmark(find_set_packing, sets, target=2 * t + 1)
    assert len(result) >= 2 * t + 1


def test_flow_torus_connectivity(benchmark):
    torus = Torus.square(11, 2)
    adj = adjacency_map(torus)

    count = benchmark(
        max_vertex_disjoint_paths, adj, (0, 0), (5, 5)
    )
    assert count == 24  # full neighborhood degree


def test_corner_connectivity_generation(benchmark):
    families = benchmark(corner_connectivity, 0, 0, 5)
    assert len(families) == 5 * 11


def test_witness_verification(benchmark):
    r = 4
    families = corner_connectivity(0, 0, r)

    def verify():
        verify_connectivity_map(
            families,
            r,
            required_nodes=r * (2 * r + 1),
            required_paths_each=r * (2 * r + 1),
        )
        return True

    assert benchmark(verify)


def test_watchlist_build(benchmark):
    wl = benchmark(watchlist_for_node, (7, 9), (0, 0), 3)
    assert len(wl) >= 3 * 7


# -- simulation backend comparison (reference vs fastpath) ----------------

#: (side, repetitions) -- one scenario family per torus size; more reps
#: on small tori where a single run is too quick to time stably
_BACKEND_SIDES = ((10, 20), (50, 5), (200, 2))


def _engine_run_seconds(side: int, engine: str, reps: int) -> float:
    """Best-of-``reps`` wall-clock of one crash-flood run (build cost
    excluded: the scenario is constructed once, the engine choice only
    changes ``run()``)."""
    from repro.experiments.scenarios import crash_broadcast_scenario

    sc = crash_broadcast_scenario(
        r=2, t=4, placement="random", seed=7, torus_side=side,
        max_rounds=400, engine=engine,
    )
    sc.run()  # warm: imports, lattice tables
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out = sc.run()
        best = min(best, time.perf_counter() - t0)
    assert out.achieved
    return best


@pytest.mark.skipif(not HAVE_NUMPY, reason="fastpath needs numpy")
def test_engine_backends(benchmark, save_table):
    rows = []
    for side, reps in _BACKEND_SIDES:
        ref = _engine_run_seconds(side, "reference", max(2, reps // 2))
        fast = _engine_run_seconds(side, "fastpath", reps)
        rows.append(
            {
                "side": side,
                "nodes": side * side,
                "reference_s": round(ref, 4),
                "fastpath_s": round(fast, 4),
                "speedup": round(ref / fast, 1),
            }
        )

    def report():
        return rows

    benchmark.pedantic(report, rounds=1, iterations=1)
    # regression pin: the whole point of the fastpath backend is bulk
    # sweeps on large tori (measured ~30x on an idle machine; 20x leaves
    # headroom for loaded CI runners)
    big = next(r for r in rows if r["side"] == 200)
    assert big["speedup"] >= 20.0, rows
    _merge_results("wall_clock", rows)
    save_table(
        "BENCH_engines", rows, title="engine backends: crash-flood wall-clock"
    )


# -- side-1000 memory + throughput smoke ----------------------------------

_MEM_SIDE = 1000

#: fastpath peak-RSS budget at side 1000 (MB).  Measured ~550 MB after
#: the stencil/bitset memory work; the budget leaves allocator headroom
#: while still failing if the O(N*K) int64 neighbor table (192 MB at
#: this size, r=2 linf) is ever reintroduced on the vectorized path.
_MEM_RSS_BUDGET_MB = 700.0

_MEM_CHILD = """\
import json, resource, time
from repro.experiments.scenarios import crash_broadcast_scenario

sc = crash_broadcast_scenario(
    r=2, t=4, placement="random", seed=7, torus_side={side},
    max_rounds=400, engine={engine!r},
)
t0 = time.perf_counter()
out = sc.run()
elapsed = time.perf_counter() - t0
print(json.dumps({{
    "seconds": elapsed,
    "rounds": out.result.rounds,
    "achieved": out.achieved,
    # ru_maxrss is KB on Linux
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    / 1024.0,
}}))
"""


def _subprocess_run_stats(side: int, engine: str) -> dict:
    """One engine run in a fresh interpreter: ``ru_maxrss`` then
    reflects exactly that engine's peak, not whatever the bench process
    allocated before."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        [sys.executable, "-c", _MEM_CHILD.format(side=side, engine=engine)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _merge_results(key: str, value) -> None:
    """Read-merge-write one section of ``BENCH_engines.json``."""
    out = pathlib.Path(__file__).parent / "results" / "BENCH_engines.json"
    out.parent.mkdir(exist_ok=True)
    data = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except ValueError:
            existing = {}
        if isinstance(existing, dict):
            data = existing
        # a bare list is the pre-memory-smoke schema: the wall-clock rows
        elif isinstance(existing, list):
            data = {"wall_clock": existing}
    data[key] = value
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.skipif(not HAVE_NUMPY, reason="fastpath needs numpy")
def test_engine_memory_side_1000(benchmark, save_table):
    """Million-node crash flood: peak-RSS budget + speedup pin.

    The reference run takes minutes at this size (that asymmetry is the
    point); each engine runs exactly once, in its own subprocess.
    """
    fast = _subprocess_run_stats(_MEM_SIDE, "fastpath")
    ref = _subprocess_run_stats(_MEM_SIDE, "reference")
    assert fast["achieved"] and ref["achieved"]
    assert fast["rounds"] == ref["rounds"]
    row = {
        "side": _MEM_SIDE,
        "nodes": _MEM_SIDE * _MEM_SIDE,
        "reference_s": round(ref["seconds"], 2),
        "fastpath_s": round(fast["seconds"], 2),
        "speedup": round(ref["seconds"] / fast["seconds"], 1),
        "reference_peak_rss_mb": round(ref["peak_rss_mb"], 1),
        "fastpath_peak_rss_mb": round(fast["peak_rss_mb"], 1),
        "fastpath_rss_budget_mb": _MEM_RSS_BUDGET_MB,
    }

    def report():
        return row

    benchmark.pedantic(report, rounds=1, iterations=1)
    # memory regression pin (the stencil/bitset work)
    assert fast["peak_rss_mb"] <= _MEM_RSS_BUDGET_MB, row
    # throughput regression pin (measured ~80x on an idle machine)
    assert row["speedup"] >= 20.0, row
    _merge_results("side_1000_memory", row)
    save_table(
        "BENCH_engines_memory",
        [row],
        title="engine backends: side-1000 memory + wall-clock smoke",
    )
