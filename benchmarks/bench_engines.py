"""Micro-benchmarks of the combinatorial engines.

Not a paper artifact -- these track the performance of the pieces the
protocols run in their inner loops (exact set packing, vertex-disjoint
max flow, witness generation/verification, watch-list construction), so
a quadratic regression in any of them shows up as a bench slowdown.
"""

from repro.analysis.flows import max_vertex_disjoint_paths
from repro.analysis.packing import find_set_packing
from repro.core.earmark import watchlist_for_node
from repro.core.paths import corner_connectivity
from repro.core.witnesses import verify_connectivity_map
from repro.grid.graphs import adjacency_map
from repro.grid.torus import Torus


def test_packing_protocol_shaped(benchmark):
    """A commit-rule-sized instance: honest disjoint chains plus
    adversarial overlapping fakes."""
    t = 9
    sets = [frozenset({("n", i)}) for i in range(t + 1)]
    sets += [frozenset({("n", t + 1 + i), ("m", i)}) for i in range(t)]
    sets += [frozenset({("x", i), ("bad", i % 3)}) for i in range(30)]

    result = benchmark(find_set_packing, sets, target=2 * t + 1)
    assert len(result) >= 2 * t + 1


def test_flow_torus_connectivity(benchmark):
    torus = Torus.square(11, 2)
    adj = adjacency_map(torus)

    count = benchmark(
        max_vertex_disjoint_paths, adj, (0, 0), (5, 5)
    )
    assert count == 24  # full neighborhood degree


def test_corner_connectivity_generation(benchmark):
    families = benchmark(corner_connectivity, 0, 0, 5)
    assert len(families) == 5 * 11


def test_witness_verification(benchmark):
    r = 4
    families = corner_connectivity(0, 0, r)

    def verify():
        verify_connectivity_map(
            families,
            r,
            required_nodes=r * (2 * r + 1),
            required_paths_each=r * (2 * r + 1),
        )
        return True

    assert benchmark(verify)


def test_watchlist_build(benchmark):
    wl = benchmark(watchlist_for_node, (7, 9), (0, 0), 3)
    assert len(wl) >= 3 * 7
