"""EXP-THM45 -- Theorems 4-5: the exact crash-stop threshold t < r(2r+1).

Paper claim: crash-flood succeeds for every t < r(2r+1) and the strip
partition defeats it at exactly t = r(2r+1).

Scenario execution routes through :mod:`repro.exec` (deterministic
per-trial seeding; pass ``executor=SweepExecutor(workers=N, cache=...)``
to the runner to parallelize or memoize a larger grid).
"""

from repro.experiments.runners import run_crash_threshold_sweep


def test_thm4_5_exact_crash_threshold(benchmark, save_table):
    rows = benchmark.pedantic(
        run_crash_threshold_sweep,
        kwargs={"radii": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["safe"]
        if row["regime"] == "below":
            assert row["achieved"], row
        else:
            assert not row["live"], row
            assert row["undecided"] > 0
    save_table(
        "EXP-THM45_crash",
        rows,
        title="EXP-THM45: Theorems 4-5 exact crash threshold",
    )
