"""EXP-THM1 -- Theorem 1: the exact Byzantine threshold t < r(2r+1)/2.

Paper claim: the Bhandari-Vaidya protocols achieve reliable broadcast for
every t strictly below r(2r+1)/2 (against any adversary), and at
ceil(r(2r+1)/2) (Koo's impossibility bound) the half-density strip blocks
liveness while safety still holds.

Scenario execution routes through :mod:`repro.exec` (deterministic
per-trial seeding; pass ``executor=SweepExecutor(workers=N, cache=...)``
to the runner to parallelize or memoize a larger grid).
"""

from repro.experiments.runners import run_byzantine_threshold_sweep


def test_thm1_two_hop_exact_threshold(benchmark, save_table):
    rows = benchmark.pedantic(
        run_byzantine_threshold_sweep,
        kwargs={
            "radii": (1, 2),
            "protocol": "bv-two-hop",
            "strategies": ("silent", "liar", "fabricator"),
        },
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["safe"], row
        if row["regime"] == "below":
            assert row["achieved"], row
        else:
            assert not row["live"], row
    save_table(
        "EXP-THM1_two_hop",
        rows,
        title="EXP-THM1: Theorem 1 exact threshold (bv-two-hop)",
    )


def test_thm1_two_hop_r3(benchmark, save_table):
    """The exact threshold at r = 3 (t* = 10 vs 11) -- made tractable by
    the blossom-matching packing engine."""
    rows = benchmark.pedantic(
        run_byzantine_threshold_sweep,
        kwargs={
            "radii": (3,),
            "protocol": "bv-two-hop",
            "strategies": ("silent",),
        },
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["safe"]
        if row["regime"] == "below":
            assert row["achieved"] and row["t"] == 10
        else:
            assert not row["live"] and row["t"] == 11
    save_table(
        "EXP-THM1_two_hop_r3",
        rows,
        title="EXP-THM1: Theorem 1 exact threshold at r=3",
    )


def test_thm1_indirect_protocol(benchmark, save_table):
    rows = benchmark.pedantic(
        run_byzantine_threshold_sweep,
        kwargs={
            "radii": (1,),
            "protocol": "bv-indirect",
            "strategies": ("silent", "fabricator"),
        },
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["safe"]
        if row["regime"] == "below":
            assert row["achieved"]
        else:
            assert not row["live"]
    save_table(
        "EXP-THM1_indirect",
        rows,
        title="EXP-THM1: Theorem 1 exact threshold (bv-indirect, 4-hop)",
    )
