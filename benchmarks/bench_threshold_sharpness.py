"""EXP-SHARP -- threshold sharpness under random adversarial placements.

The theorems are worst-case statements; the bench measures how the
protocol fares against *random* maximal budget-respecting placements: the
success fraction must be exactly 1.0 up to the threshold (that is the
guarantee), and usually stays high just beyond it (the impossibility
construction is special).
"""

from repro.core.thresholds import byzantine_linf_max_t
from repro.experiments.runners import run_threshold_sharpness


def test_threshold_sharpness_r1(benchmark, save_table):
    rows = benchmark.pedantic(
        run_threshold_sharpness,
        kwargs={"r": 1, "trials": 4},
        rounds=1,
        iterations=1,
    )
    threshold = byzantine_linf_max_t(1)
    for row in rows:
        assert row["safety_fraction"] == 1.0  # safety is unconditional
        if row["t"] <= threshold:
            assert row["success_fraction"] == 1.0, row
    save_table(
        "EXP-SHARP_byzantine_r1",
        rows,
        title="EXP-SHARP: success fraction vs budget (random placements)",
    )
