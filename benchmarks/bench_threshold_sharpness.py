"""EXP-SHARP -- threshold sharpness under random adversarial placements.

The theorems are worst-case statements; the bench measures how the
protocol fares against *random* maximal budget-respecting placements: the
success fraction must be exactly 1.0 up to the threshold (that is the
guarantee), and usually stays high just beyond it (the impossibility
construction is special).

Trial execution routes through :mod:`repro.exec` (the parallel cached
sweep executor); the second bench exercises its memoization contract --
an identical rerun must be 100% cache hits and dramatically faster.
"""

import time

from repro.analysis.sweep import byzantine_sharpness_run
from repro.core.thresholds import byzantine_linf_max_t, koo_impossibility_bound
from repro.exec import ResultCache, SweepExecutor
from repro.experiments.runners import run_threshold_sharpness


def test_threshold_sharpness_r1(benchmark, save_table):
    rows = benchmark.pedantic(
        run_threshold_sharpness,
        kwargs={"r": 1, "trials": 4},
        rounds=1,
        iterations=1,
    )
    threshold = byzantine_linf_max_t(1)
    for row in rows:
        assert row["safety_fraction"] == 1.0  # safety is unconditional
        if row["t"] <= threshold:
            assert row["success_fraction"] == 1.0, row
    save_table(
        "EXP-SHARP_byzantine_r1",
        rows,
        title="EXP-SHARP: success fraction vs budget (random placements)",
    )


def test_threshold_sharpness_cached_rerun(benchmark, save_table, tmp_path):
    """The executor's memoization contract on the sharpness workload:
    rerunning an identical sweep is 100% cache hits, byte-identical
    aggregates, and at least 2x faster than the cold run."""
    cache = ResultCache(tmp_path / "cache")
    budgets = list(range(0, koo_impossibility_bound(1) + 2))

    def sweep():
        started = time.perf_counter()
        run = byzantine_sharpness_run(
            1, budgets, trials=4, executor=SweepExecutor(workers=1, cache=cache)
        )
        return run, time.perf_counter() - started

    cold, cold_s = sweep()
    assert cold.stats.cache_hits == 0

    warm, warm_s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert warm.points == cold.points  # byte-identical aggregates
    assert warm.stats.hit_fraction == 1.0  # 100% cache hits
    assert warm.stats.trials_computed == 0
    assert warm_s * 2 <= cold_s, (cold_s, warm_s)  # >= 2x speedup
    save_table(
        "EXP-SHARP_exec_stats",
        [
            {**cold.stats.as_dict(), "run": "cold", "wall_clock_s": round(cold_s, 4)},
            {**warm.stats.as_dict(), "run": "warm (cached)", "wall_clock_s": round(warm_s, 4)},
        ],
        columns=[
            "run",
            "wall_clock_s",
            "units_total",
            "cache_hits",
            "cache_misses",
            "trials_computed",
        ],
        title="EXP-SHARP: executor cache speedup (identical rerun)",
    )
