"""EXP-PERC -- Section XI: the random-failure (site percolation) model.

Paper remark: with i.i.d. node failures the crash-stop problem "is
similar to the problem of site percolation".  The bench sweeps the
failure probability and exhibits the phase transition; larger r tolerates
larger p_fail.
"""

from repro.analysis.percolation import critical_probability_estimate, percolation_curve
from repro.experiments.runners import run_percolation
from repro.grid.torus import Torus


def test_percolation_phase_shape(benchmark, save_table):
    rows = benchmark.pedantic(
        run_percolation,
        kwargs={
            "r": 1,
            "side": 25,
            "probabilities": (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95),
            "trials": 8,
        },
        rounds=1,
        iterations=1,
    )
    # low-p regime: nearly full coverage; high-p: collapsed
    assert rows[0]["mean_coverage"] > 0.95
    assert rows[-1]["mean_coverage"] < 0.5
    # coverage is (noisily) decreasing: compare the ends of the sweep
    assert rows[0]["mean_coverage"] > rows[-1]["mean_coverage"]
    save_table(
        "EXP-PERC_curve", rows, title="EXP-PERC: site-percolation coverage"
    )


def test_percolation_cluster_order_parameter(benchmark, save_table):
    """The largest-cluster fraction (the percolation order parameter)
    must collapse across the transition."""
    from repro.analysis.percolation import cluster_statistics_curve

    torus = Torus.square(25, 1)
    rows = benchmark.pedantic(
        cluster_statistics_curve,
        args=(torus, [0.1, 0.3, 0.5, 0.7, 0.9]),
        kwargs={"trials": 6, "seed": 2},
        rounds=1,
        iterations=1,
    )
    assert rows[0]["mean_largest_fraction"] > 0.95  # supercritical
    assert rows[-1]["mean_largest_fraction"] < 0.5  # subcritical
    save_table(
        "EXP-PERC_clusters",
        rows,
        title="EXP-PERC: largest-cluster fraction vs failure probability",
    )


def test_percolation_radius_helps(benchmark, save_table):
    """Bigger neighborhoods percolate through more failures."""

    def criticals():
        rows = []
        probabilities = [0.1, 0.3, 0.5, 0.7, 0.9]
        for r in (1, 2):
            torus = Torus.square(25, r)
            pts = percolation_curve(
                torus, (0, 0), probabilities, trials=6, seed=11
            )
            rows.append(
                {
                    "r": r,
                    "critical_p(cov<0.5)": critical_probability_estimate(pts)
                    or 1.0,
                }
            )
        return rows

    rows = benchmark.pedantic(criticals, rounds=1, iterations=1)
    assert rows[1]["critical_p(cov<0.5)"] >= rows[0]["critical_p(cov<0.5)"]
    save_table(
        "EXP-PERC_radius",
        rows,
        title="EXP-PERC: critical failure probability vs radius",
    )
