"""EXP-SECX -- Section X: spoofing, collisions, and counter-measures.

Paper discussion: "If address spoofing is allowed, any malicious node may
attempt to impersonate any honest node.  Similarly, reliable broadcast is
rendered impossible if the adversary can cause an unbounded number of
collisions ... If the adversary uses collisions to merely disrupt
communication, the problem is trivially solved by re-transmitting."

The bench demonstrates each clause with a single Byzantine node.
"""

from repro.experiments.runners import run_section_x_attacks


def test_section_x_attacks(benchmark, save_table):
    rows = benchmark.pedantic(run_section_x_attacks, rounds=1, iterations=1)
    by_regime = {row["regime"]: row for row in rows}
    assert not by_regime["spoofing allowed"]["safe"]
    assert not by_regime["unbounded jamming"]["achieved"]
    assert by_regime["jam budget 2 + 4 repeats"]["achieved"]
    assert by_regime["20% loss + 8 copies"]["achieved"]
    save_table(
        "EXP-SECX_attacks",
        rows,
        title="EXP-SECX: Section X attacks (one fault each)",
    )
