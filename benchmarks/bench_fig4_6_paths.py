"""EXP-F4_6 -- Figures 4-6: the node-disjoint path constructions.

Paper claim (Theorem 3's core): for every node of region M, the corner
frontier node P has r(2r+1) node-disjoint paths to it, all lying inside a
single neighborhood.  The bench regenerates the construction for each
radius and verifies every family mechanically.
"""

from repro.experiments.runners import run_fig4_6_paths


def test_fig4_6_disjoint_path_witnesses(benchmark, save_table):
    rows = benchmark(run_fig4_6_paths, radii=(1, 2, 3, 4, 5, 6))
    assert all(row["verified"] for row in rows)
    assert all(row["nodes_covered"] == row["required"] for row in rows)
    save_table(
        "EXP-F4_6_paths",
        rows,
        title="EXP-F4_6: Figures 4-6 node-disjoint path witnesses",
    )
