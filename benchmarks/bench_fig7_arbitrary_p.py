"""EXP-F7 -- Figure 7: arbitrary position of P.

Paper claim: for any non-corner top-edge frontier node P_l (offset
0 <= l <= r), the direct region grows to r(r+l+1) nodes and the total
connectivity stays at least r(2r+1).
"""

from repro.experiments.runners import run_fig7_arbitrary_p


def test_fig7_every_offset_verified(benchmark, save_table):
    rows = benchmark(run_fig7_arbitrary_p, radii=(1, 2, 3, 4))
    assert all(row["verified"] for row in rows)
    assert all(row["nodes_covered"] >= row["required"] for row in rows)
    assert all(
        row["direct_nodes"] == row["claimed_direct_r(r+l+1)"] for row in rows
    )
    save_table(
        "EXP-F7_arbitrary_p", rows, title="EXP-F7: Figure 7 arbitrary P offsets"
    )
