"""EXP-PROTO -- protocol cost comparison (Sections VI, VI-B, IX).

Paper discussion: the full indirect protocol localizes reports to four
hops; the simplified variant (Section VI-B) only needs two; CPA needs no
reports at all.  The bench measures the resulting message-complexity
ordering (CPA < two-hop < four-hop) and the earmarking state bound.
"""

from repro.core.earmark import earmarked_reports, watchlist_size
from repro.experiments.runners import run_protocol_costs


def test_protocol_cost_ordering(benchmark, save_table):
    rows = benchmark.pedantic(
        run_protocol_costs,
        kwargs={"r": 1, "strategy": "liar"},
        rounds=1,
        iterations=1,
    )
    assert all(row["achieved"] for row in rows)
    by_name = {row["protocol"]: row for row in rows}
    messages = {name: row["messages"] for name, row in by_name.items()}
    assert messages["cpa"] < messages["bv-two-hop"] < messages["bv-indirect"]
    # the paper's earmarking claim: same traffic, less evidence state
    assert (
        by_name["bv-earmarked"]["max_state"]
        < by_name["bv-indirect"]["max_state"]
    )
    save_table(
        "EXP-PROTO_costs", rows, title="EXP-PROTO: protocol message/state costs"
    )


def test_earmark_state_bound(benchmark, save_table):
    """The 'earmarked messages' optimization: per-node watch-list sizes
    are polynomial in r (r(2r+1) origins x r(2r+1) chains worst case)."""

    def table():
        rows = []
        for r in (1, 2, 3, 4):
            wl = earmarked_reports(0, 0, r)
            bound = (r * (2 * r + 1)) ** 2
            rows.append(
                {
                    "r": r,
                    "origins": len(wl),
                    "total_chains": watchlist_size(wl),
                    "worst_case_bound_(r(2r+1))^2": bound,
                    "within_bound": watchlist_size(wl) <= bound,
                }
            )
        return rows

    rows = benchmark(table)
    assert all(row["within_bound"] for row in rows)
    save_table(
        "EXP-PROTO_earmark", rows, title="EXP-PROTO: earmarked state bounds"
    )
