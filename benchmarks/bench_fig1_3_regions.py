"""EXP-F1_3 -- Figures 1-3: the M = R + U + S1 + S2 decomposition.

Paper claim: |M| = r(2r+1), |R| = r(r+1), |U| = |S2| = r(r-1)/2,
|S1| = r, and the four parts partition M.
"""

from repro.experiments.runners import run_fig1_3_regions


def test_fig1_3_region_cardinalities(benchmark, save_table):
    rows = benchmark(run_fig1_3_regions, radii=(1, 2, 3, 4, 5, 8, 12, 20))
    assert all(row["match"] for row in rows)
    assert all(row["partition_ok"] for row in rows)
    save_table(
        "EXP-F1_3_regions", rows, title="EXP-F1_3: Figures 1-3 region cardinalities"
    )
