"""EXP-ADV -- the automated adversary search engine at the thresholds.

The impossibility constructions (Figure 8, Koo's argument) are *specific*
placements; EXP-SHARP shows random placements almost never find them.
This bench shows the search engine (:mod:`repro.adversary`) does: at r=2
simulated annealing rediscovers a certified defeating placement exactly
at the Byzantine bound t = ceil(r(2r+1)/2) = 5 and the crash bound
t = r(2r+1) = 10, and finds nothing at t-1 within the same evaluation
budget -- the theorems' boundary, reproduced by optimization instead of
by construction.
"""

from repro.adversary import SearchConfig, certify_result, run_search
from repro.core.thresholds import (
    crash_linf_threshold,
    koo_impossibility_bound,
)

EVAL_BUDGET = 8  # the construction-seeded starts win fast when defeat exists


def _search(kind, t):
    return run_search(
        SearchConfig(
            kind=kind,
            r=2,
            t=t,
            byz_strategy="silent",
            seed=0,
            eval_budget=EVAL_BUDGET,
            max_rounds=120,
        ),
        strategy="anneal",
    )


def test_adversary_search_rediscovers_thresholds_r2(benchmark, save_table):
    """Annealing finds certified counterexamples at the exact bounds and
    none just below them, with the identical search budget."""

    def run():
        rows = []
        for kind, t_at in (
            ("byzantine", koo_impossibility_bound(2)),
            ("crash", crash_linf_threshold(2)),
        ):
            for regime, t in (("at", t_at), ("below", t_at - 1)):
                result = _search(kind, t)
                row = {
                    "kind": kind,
                    "regime": regime,
                    "t": t,
                    "defeated": result.defeated,
                    "evaluations": result.evaluations,
                    "faults": len(result.best_faults),
                    "worst_nbd": "",
                    "trace_sha256": "",
                }
                if result.defeated:
                    cert = certify_result(result)
                    row["worst_nbd"] = cert.worst_nbd
                    row["trace_sha256"] = cert.trace_sha256[:12]
                rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    assert koo_impossibility_bound(2) == 5
    assert crash_linf_threshold(2) == 10
    by_key = {(r["kind"], r["regime"]): r for r in rows}
    for kind in ("byzantine", "crash"):
        at = by_key[(kind, "at")]
        below = by_key[(kind, "below")]
        # at the bound: a defeating placement is found AND certified
        # (re-validated against the budget, replayed to a hashed trace)
        assert at["defeated"], at
        assert at["worst_nbd"] <= at["t"], at
        assert at["trace_sha256"], at
        # one below: the same budget finds nothing (Theorems 1/5 hold)
        assert not below["defeated"], below
        assert below["evaluations"] == EVAL_BUDGET, below

    save_table(
        "EXP-ADV_search_r2",
        rows,
        columns=[
            "kind",
            "regime",
            "t",
            "defeated",
            "evaluations",
            "faults",
            "worst_nbd",
            "trace_sha256",
        ],
        title="EXP-ADV: searched adversaries at the r=2 threshold boundary",
    )


def test_adversary_random_vs_searched_r1(benchmark, save_table):
    """The headline table: random placements vs the search engine at the
    r=1 boundary (random adversaries rarely witness the impossibility;
    the searched worst case always does, and never below the bound)."""
    from repro.experiments.runners import run_adversarial_sharpness

    rows = benchmark.pedantic(
        run_adversarial_sharpness,
        kwargs={"r": 1, "trials": 6, "eval_budget": 24, "seed": 0},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        if row["regime"] == "at":
            assert row["searched_defeated"], row
        else:
            assert not row["searched_defeated"], row
            assert row["random_defeats"] == 0, row
    save_table(
        "EXP-ADV_random_vs_searched_r1",
        rows,
        title="EXP-ADV: random vs searched placements at the r=1 boundary",
    )
