"""EXP-L2BRACKET -- bracketing the open L2 constants of Section VIII.

The paper proves achievability below ~``0.23 pi r^2`` faults per
Euclidean ball and impossibility from ~``0.3 pi r^2``; the constants in
between are an open problem.  This bench runs the automated adversary
search over valid L2 placements at every integer budget from just below
the achievable line to just above the impossibility line (r=2: the gap
contains exactly one integer, t=3) and asserts the measured bracket:

- below the achievable line the search finds nothing (the positive
  theorems hold empirically);
- above the impossibility line it finds a defeating placement for both
  a liveness (``silent``) and a safety (``fabricator``) adversary;
- inside the gap the best searched placement is *certified* -- budget
  re-validated and replayed to a hashed JSONL trace -- so the bench
  leaves reproducible evidence at a budget strictly between the two
  published constants.

The full report (rows + bracket summary + certificates) is written to
``benchmarks/results/BENCH_l2_bracket.json``.
"""

import json
import pathlib

from repro.core.thresholds import (
    l2_byzantine_achievable_estimate,
    l2_byzantine_impossible_estimate,
)
from repro.experiments.runners import run_l2_bracket

RESULTS = pathlib.Path(__file__).parent / "results"


def test_l2_bracket_r2(benchmark, save_table):
    rows = benchmark.pedantic(
        run_l2_bracket, kwargs={"r": 2}, rounds=1, iterations=1
    )
    achievable = l2_byzantine_achievable_estimate(2)  # 2.89
    impossible = l2_byzantine_impossible_estimate(2)  # 3.77

    by_t = {}
    for row in rows:
        by_t.setdefault(row["t"], []).append(row)

    # the positive theorems hold: no searched placement wins below the
    # achievable line
    for t, cell in by_t.items():
        if t < achievable:
            assert all(not row["defeated"] for row in cell), (t, cell)
    # the impossibility is operational: the search finds a defeating
    # placement for every strategy once t clears the 0.3*pi*r^2 line
    for t, cell in by_t.items():
        if t >= impossible:
            assert all(row["defeated"] for row in cell), (t, cell)
    # the open gap at r=2 contains exactly the integer t=3, and its rows
    # carry certificates: placements re-validated against the t-per-ball
    # budget (worst_nbd == t sits strictly between the two constants)
    gap_rows = [row for row in rows if row["zone"] == "open-gap"]
    assert {row["t"] for row in gap_rows} == {3}
    for row in gap_rows:
        assert achievable < row["certified_worst_nbd"] <= row["t"] < impossible
        assert row["trace_sha256"]
        assert row["defeated"] == row["certified_defeated"]

    undefeated = [t for t, cell in by_t.items()
                  if all(not row["defeated"] for row in cell)]
    defeated = [t for t, cell in by_t.items()
                if any(row["defeated"] for row in cell)]
    bracket = {
        "r": 2,
        "achievable_estimate": achievable,
        "impossible_estimate": impossible,
        "largest_undefeated_t": max(undefeated),
        "smallest_defeated_t": min(defeated),
        "gap_budgets": sorted({row["t"] for row in gap_rows}),
    }
    # the empirical bracket is consistent: everything at or below the
    # largest undefeated budget stayed undefeated
    assert bracket["largest_undefeated_t"] < bracket["smallest_defeated_t"]

    save_table(
        "EXP-L2BRACKET",
        rows,
        title="EXP-L2BRACKET: adversary-searched bracket of the open "
        "L2 constants (r=2)",
    )
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "BENCH_l2_bracket.json").write_text(
        json.dumps({"bracket": bracket, "rows": rows}, indent=2, sort_keys=True)
        + "\n"
    )
