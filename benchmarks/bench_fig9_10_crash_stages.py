"""EXP-F9_10 -- Figures 9-10 / Theorem 5: staged crash-stop propagation.

Paper claim: below t = r(2r+1) every frontier node receives the broadcast
(the staged argument); the simulated sweep shows success below and
partition at the threshold.
"""

from repro.core.crash_argument import crash_inductive_step_holds
from repro.core.thresholds import crash_linf_threshold
from repro.experiments.runners import run_crash_threshold_sweep
from repro.faults.placement import greedy_random_placement

import random


def test_fig9_10_crash_sweep(benchmark, save_table):
    rows = benchmark.pedantic(
        run_crash_threshold_sweep,
        kwargs={"radii": (1, 2)},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        if row["regime"] == "below":
            assert row["achieved"]
        else:
            assert row["safe"] and not row["achieved"]
    save_table(
        "EXP-F9_10_crash_stages",
        rows,
        title="EXP-F9_10: Theorem 5 simulated crash threshold sweep",
    )


def test_fig9_10_inductive_step_statistics(benchmark, save_table):
    """The localized inductive step itself, over random placements."""

    def sweep():
        rows = []
        for r in (1, 2):
            holds_count = 0
            trials = 10
            for seed in range(trials):
                rng = random.Random(seed)
                box = [
                    (x, y)
                    for x in range(-3 * r, 3 * r + 1)
                    for y in range(-3 * r, 3 * r + 1)
                ]
                faults = greedy_random_placement(
                    box, crash_linf_threshold(r) - 1, r, rng=rng
                )
                ok, _ = crash_inductive_step_holds(faults, 0, 0, r)
                holds_count += ok
            strip = {
                (x, y)
                for x in range(1, 1 + r)
                for y in range(-4 * r - 1, 4 * r + 2)
            }
            strip_ok, _ = crash_inductive_step_holds(strip, 0, 0, r)
            rows.append(
                {
                    "r": r,
                    "random_below_threshold_hold_rate": holds_count / trials,
                    "strip_at_threshold_holds": strip_ok,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["random_below_threshold_hold_rate"] == 1.0
        assert not row["strip_at_threshold_holds"]
    save_table(
        "EXP-F9_10_inductive_step",
        rows,
        title="EXP-F9_10: inductive-step hold rates",
    )
