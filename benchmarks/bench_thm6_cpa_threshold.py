"""EXP-THM6 -- Theorem 6: CPA bound sweep and bound comparison.

Paper claim: CPA succeeds at t <= (2/3) r^2 (and at Koo's bound from [1]
for small r); the impossibility bound ceil(r(2r+1)/2) defeats it.  The
region between is "uncertain" in the theory -- the bench reports what the
worst-case-construction adversary actually does there.

Scenario execution routes through :mod:`repro.exec` (deterministic
per-trial seeding; pass ``executor=SweepExecutor(workers=N, cache=...)``
to the runner to parallelize or memoize a larger grid).
"""

from repro.core.thresholds import (
    cpa_best_known_max_t,
    cpa_linf_bound,
    koo_cpa_linf_bound,
)
from repro.experiments.runners import run_cpa_threshold_sweep


def test_thm6_cpa_sweep(benchmark, save_table):
    rows = benchmark.pedantic(
        run_cpa_threshold_sweep,
        kwargs={"radii": (2, 3), "strategies": ("liar",)},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["safe"]
        if row["regime"] in ("thm6_t=2r^2/3", "best_known"):
            assert row["achieved"], row
        if row["regime"] == "impossible":
            assert not row["achieved"], row
    save_table(
        "EXP-THM6_cpa", rows, title="EXP-THM6: CPA threshold sweep"
    )


def test_thm6_bound_crossover(benchmark, save_table):
    """Theorem 6's 2r^2/3 overtakes Koo's bound at r = 10."""

    def crossover_table():
        rows = []
        for r in range(1, 16):
            rows.append(
                {
                    "r": r,
                    "thm6_2r^2/3": round(cpa_linf_bound(r), 2),
                    "koo_bound": round(koo_cpa_linf_bound(r), 2),
                    "thm6_wins": cpa_linf_bound(r) > koo_cpa_linf_bound(r),
                    "best_max_t": cpa_best_known_max_t(r),
                }
            )
        return rows

    rows = benchmark(crossover_table)
    assert not rows[0]["thm6_wins"]  # Koo wins small r
    assert rows[-1]["thm6_wins"]  # Theorem 6 wins large r
    first_win = next(row["r"] for row in rows if row["thm6_wins"])
    assert first_win == 10
    save_table(
        "EXP-THM6_crossover",
        rows,
        title="EXP-THM6: Theorem 6 vs Koo bound crossover",
    )
