"""EXP-T1 -- Table I: region extents and per-family path counts.

Paper claim: for every U-region node (parameters r >= q > p >= 1), the
regions A/B/C/D of Table I contain exactly (r-p+1)(r+q), (p-1)(r+q),
(r-p)(r-q+1) and p(r-q+1) nodes respectively, summing to r(2r+1).
"""

from repro.experiments.runners import run_table1_regions


def test_table1_region_counts(benchmark, save_table):
    rows = benchmark(run_table1_regions, radii=(1, 2, 3, 4, 5, 6, 8))
    assert rows, "sweep must produce rows"
    assert all(row["match"] for row in rows)
    assert all(row["total"] == row["r(2r+1)"] for row in rows)
    save_table("EXP-T1_table1_regions", rows, title="EXP-T1: Table I region/path counts")
