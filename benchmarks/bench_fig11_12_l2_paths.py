"""EXP-F11_12 -- Figures 11-12 / Section VIII: the L2 connectivity
argument.

Paper claim: for the worst frontier pair (distance ~ r*sqrt(2)), about
1.47 r^2 = 0.47 pi r^2 node-disjoint paths fit inside the neighborhood of
the midpoint -- enough to beat 2t+1 at t < 0.23 pi r^2.  We *measure* the
true lattice connectivity with max flow instead of trusting the area
estimate.
"""

from repro.experiments.runners import run_l2_argument


def test_fig11_12_l2_connectivity(benchmark, save_table):
    rows = benchmark.pedantic(
        run_l2_argument, kwargs={"radii": (2, 3, 4, 5, 6, 7)}, rounds=1, iterations=1
    )
    for row in rows:
        assert row["argument_holds"], row
        assert row["measured_disjoint_paths"] >= row["required_2t_plus_1"]
    save_table(
        "EXP-F11_12_l2_paths",
        rows,
        title="EXP-F11_12: L2 disjoint paths vs area argument",
    )
