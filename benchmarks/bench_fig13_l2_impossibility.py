"""EXP-F13 -- Figure 13 / Section VIII: L2 impossibility construction.

Paper claim: the (Fig. 13) strip construction places about 0.3 pi r^2
faults in the worst neighborhood and blocks reliable broadcast beyond the
strip.  We measure the exact lattice count and run the blocked scenario.
"""

import math

from repro.experiments.runners import run_l2_impossibility


def test_fig13_l2_strip_blocks(benchmark, save_table):
    rows = benchmark.pedantic(
        run_l2_impossibility, kwargs={"radii": (2, 3)}, rounds=1, iterations=1
    )
    for row in rows:
        assert row["safe"]
        assert not row["achieved"]
        assert row["undecided"] > 0
        # lattice count within O(r) of the paper's 0.3*pi*r^2 estimate
        r = row["r"]
        assert abs(row["worst_faults_per_nbd"] - 0.3 * math.pi * r * r) <= max(
            4 * r, 6
        )
    save_table(
        "EXP-F13_l2_impossibility",
        rows,
        title="EXP-F13: L2 half-density strip impossibility",
    )
