"""EXP-BOUNDARY and EXP-WAVE -- boundary anomalies and the commit wave.

EXP-BOUNDARY quantifies the paper's Section I remark that toroidal
networks eliminate "boundary anomalies": on a bounded grid a corner's
source connectivity collapses to its (truncated) degree, so the crash
tolerance there is a fraction of the torus value.

EXP-WAVE measures the latency profile of the Theorem 3 induction: commit
rounds grow (weakly) monotonically with distance from the source.
"""

from repro.experiments.runners import run_boundary_effects, run_commit_wave


def test_boundary_anomalies(benchmark, save_table):
    rows = benchmark.pedantic(
        run_boundary_effects,
        kwargs={"radii": (1, 2), "side": 11, "trials": 3},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["corner_cut_bounded"] < row["interior_cut_torus"]
        assert row["success_torus"] == 1.0  # Theorem 5 guarantee holds
    save_table(
        "EXP-BOUNDARY",
        rows,
        title="EXP-BOUNDARY: bounded grid vs torus",
    )


def test_commit_wave_monotone(benchmark, save_table):
    rows = benchmark.pedantic(
        run_commit_wave, kwargs={"r": 1}, rounds=1, iterations=1
    )
    assert rows[0]["distance"] == 0  # the source itself
    means = [row["mean_round"] for row in rows]
    # weakly monotone in distance (the induction's wave)
    assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
    save_table(
        "EXP-WAVE", rows, title="EXP-WAVE: commit round vs distance"
    )
