"""EXP-THRESH -- the abstract's headline table: every bound per radius.

Regenerates the quantitative summary the paper states in prose: Byzantine
threshold exactly r(2r+1)/2 (just under 1/4 of the neighborhood), crash
threshold exactly r(2r+1) (just under 1/2), the CPA bounds, and the L2
estimates.
"""

from repro.experiments.runners import run_threshold_overview


def test_threshold_overview(benchmark, save_table):
    rows = benchmark(run_threshold_overview, radii=(1, 2, 3, 4, 5, 8, 10, 20))
    for row in rows:
        # exactness and the paper's fraction claims
        assert row["byz_linf_max_t"] + 1 == row["koo_impossibility"]
        assert row["crash_linf_threshold"] == 2 * row["byz_linf_threshold"]
        assert row["byz_linf_threshold"] / row["nbd_size"] < 0.25
        assert row["crash_linf_threshold"] / row["nbd_size"] < 0.5
        assert row["l2_byz_achievable"] < row["l2_byz_impossible"]
    save_table(
        "EXP-THRESH_overview", rows, title="EXP-THRESH: all bounds per radius"
    )
