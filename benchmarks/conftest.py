"""Shared fixtures for the benchmark suite.

Every bench regenerates one paper artifact (figure/table), asserts its
*shape* (who wins, where thresholds fall), times the regeneration via
pytest-benchmark, and writes the rendered table under
``benchmarks/results/`` so the artifacts survive output capture.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Optional, Sequence

import pytest

from repro.experiments.report import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_table():
    """Persist a rendered experiment table to benchmarks/results/."""

    def _save(
        exp_id: str,
        rows: List[Dict[str, Any]],
        title: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_table(rows, columns=columns, title=title or exp_id)
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n")
        return text

    return _save
