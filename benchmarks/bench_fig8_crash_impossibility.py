"""EXP-F8 -- Figure 8 / Theorem 4: the crash-stop strip partition.

Paper claim: a full-height width-r strip respects t = r(2r+1) per
neighborhood yet partitions the plane beyond it; removing a single fault
(t - 1 regime) heals the partition.
"""

from repro.experiments.runners import run_fig8_crash_impossibility


def test_fig8_strip_partitions_exactly_at_threshold(benchmark, save_table):
    rows = benchmark(run_fig8_crash_impossibility, radii=(1, 2, 3))
    for row in rows:
        assert row["max_faults_per_nbd"] == row["t_threshold_r(2r+1)"]
        assert row["partitioned"]
        assert row["healed_complete"]
        assert row["coverage_at_threshold"] < 1.0
    save_table(
        "EXP-F8_crash_impossibility",
        rows,
        title="EXP-F8: Figure 8 crash-stop strip partition",
    )
