"""EXP-F14_19 -- Figures 14-19 / Theorem 6: CPA stage inequalities.

Paper claim: with t <= (2/3) r^2, commitment spreads row by row (stage 1
reaches at least floor(r/3) rows; the paper certifies floor(r/sqrt(6)))
and then completes (stage 2).  The bench evaluates every inequality over
a radius sweep and cross-checks with a simulated CPA run at the budget.
"""

from repro.core.thresholds import cpa_linf_max_t
from repro.experiments.runners import run_cpa_stage_table
from repro.experiments.scenarios import byzantine_broadcast_scenario


def test_fig14_19_stage_inequalities(benchmark, save_table):
    rows = benchmark(
        run_cpa_stage_table, radii=(2, 3, 4, 6, 9, 12, 20, 50, 100, 200)
    )
    assert all(row["holds"] for row in rows)
    # stage-1 depth reaches the claimed floor(r/sqrt(6)) and floor(r/3)
    for row in rows:
        assert row["stage1_rows"] >= row["paper_claim_r/sqrt6"]
    save_table(
        "EXP-F14_19_cpa_stages",
        rows,
        title="EXP-F14_19: Theorem 6 stage inequalities",
    )


def test_fig14_19_simulated_cpa_at_budget(benchmark, save_table):
    """Simulation-level confirmation at t = floor(2 r^2 / 3)."""

    def run():
        rows = []
        for r in (2, 3):
            t = cpa_linf_max_t(r)
            for strategy in ("silent", "liar"):
                sc = byzantine_broadcast_scenario(
                    r=r, t=t, protocol="cpa", strategy=strategy
                )
                sc.validate()
                out = sc.run()
                rows.append(
                    {
                        "r": r,
                        "t": t,
                        "strategy": strategy,
                        "achieved": out.achieved,
                        "rounds": out.rounds,
                        "messages": out.messages,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(row["achieved"] for row in rows)
    save_table(
        "EXP-F14_19_cpa_simulated",
        rows,
        title="EXP-F14_19: simulated CPA at Theorem 6 budget",
    )
