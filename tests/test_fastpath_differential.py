"""Cross-engine differential tests: reference vs fastpath.

The fastpath array kernels (:mod:`repro.radio.fastpath`) promise
*byte-identical* observable output to the reference event engine -- same
``metrics_summary`` JSON, same per-node commit map, same trace counters,
same grading facts.  This suite enforces that contract three ways:

1. a deterministic bulk sweep over 200+ randomized points spanning both
   protocols, both placements, all three metrics, message budgets, round
   caps, and staggered crashes (``tests/strategies.sample_points``);
2. a shrinking hypothesis property over the same space
   (``tests/strategies.diff_points``) that minimizes any divergence to a
   small reportable scenario;
3. golden pins at the crash threshold boundary t-1 / t / t+1, asserted
   as literal constants against *both* backends -- so a simultaneous
   drift of the two engines (which the differential pairs cannot see)
   still fails.

Plus regression pins for the awkward edges both backends must agree on:
zero-round runs, all-relays-dead-from-start, and message budgets that
trip mid-frame (``result.rounds`` pinned on both).
"""

from __future__ import annotations

from typing import Any, Dict

import pytest
from hypothesis import given, settings

from repro.core.thresholds import crash_linf_max_t
from repro.errors import ConfigurationError
from repro.experiments.scenarios import crash_broadcast_scenario
from repro.obs.export import canonical_json
from repro.obs.metrics import RunMetrics
from repro.radio.fastpath import HAVE_NUMPY
from tests.strategies import diff_points, make_point, sample_points

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="fastpath engine needs numpy"
)

#: bulk sweep size -- acceptance floor is 200 randomized points
N_BULK_POINTS = 220


def _build(point: Dict[str, Any], engine: str):
    """Scenario for ``point`` on ``engine``.

    Both protocols run under *crash* faults (the crash builder accepts a
    ``protocol`` override): crash faults are in-model for bv-two-hop --
    strictly weaker than Byzantine ones -- and are the fault class the
    fastpath kernels implement.
    """
    sc = crash_broadcast_scenario(
        r=point["r"],
        t=point["t"],
        placement=point["placement"],
        metric=point["metric"],
        seed=point["seed"],
        torus_side=point["side"],
        staggered_max_round=point["staggered_max_round"],
        max_rounds=point["max_rounds"],
        protocol=point["protocol"],
        engine=engine,
    )
    sc.max_messages = point["max_messages"]
    return sc


def observe(point: Dict[str, Any], engine: str) -> Dict[str, Any]:
    """Everything observable about one run, in comparable form."""
    sc = _build(point, engine)
    per_source = RunMetrics(source=sc.source)
    global_view = RunMetrics(source=None)
    out = sc.run(observers=[per_source, global_view])
    processes = out.result.processes
    return {
        "metrics_source": canonical_json(per_source.summary()),
        "metrics_global": canonical_json(global_view.summary()),
        "committed": {
            str(node): proc.committed_value()
            for node, proc in sorted(processes.items())
        },
        "undecided": sorted(
            str(node)
            for node, proc in processes.items()
            if not proc.is_decided()
        ),
        "grade": {
            "achieved": out.achieved,
            "rounds": out.result.rounds,
            "quiescent": out.result.quiescent,
            "hit_round_limit": out.result.hit_round_limit,
            "hit_message_limit": out.result.hit_message_limit,
        },
        "trace": out.result.trace.summary(),
    }


def assert_engines_agree(point: Dict[str, Any]) -> Dict[str, Any]:
    """Run ``point`` on both backends and diff every observable."""
    ref = observe(point, "reference")
    fast = observe(point, "fastpath")
    for key in ref:
        assert ref[key] == fast[key], (
            f"engines diverge on {key!r} at point {point!r}\n"
            f"reference: {ref[key]!r}\nfastpath:  {fast[key]!r}"
        )
    return ref


# -- 1. deterministic bulk sweep ------------------------------------------


def test_differential_bulk_sweep():
    """200+ fixed randomized points, byte-equal on every observable.

    The point list is fully determined by ``sample_points`` (seeded),
    so a failure here reproduces with a single point in isolation.
    """
    points = sample_points(N_BULK_POINTS, seed=0)
    protocols = {p["protocol"] for p in points}
    assert protocols == {"crash-flood", "bv-two-hop"}
    for point in points:
        assert_engines_agree(point)


# -- 2. shrinking property -----------------------------------------------


@settings(max_examples=40, deadline=None)
@given(point=diff_points())
def test_differential_property(point):
    assert_engines_agree(point)


# -- 3. golden pins at the crash threshold boundary ----------------------

# Literal expectations at t in {thr-1, thr, thr+1} for r=1 strip
# placement around thr = crash_linf_max_t(1).  Pinned constants, not a
# pair comparison: if both engines drift together, this still fails.
# Regenerate by running this module directly (python -m tests.<module>
# prints the observed rows on mismatch).
GOLDEN_R = 1
GOLDEN_THR = crash_linf_max_t(GOLDEN_R)  # = 2 for r=1
GOLDEN = {
    # t: (achieved, rounds, quiescent, undecided_count, committed_count)
    GOLDEN_THR - 1: (True, 4, True, 6, 75),
    GOLDEN_THR: (True, 4, True, 11, 70),
    GOLDEN_THR + 1: (False, 3, True, 54, 27),
}


def _golden_point(t: int) -> Dict[str, Any]:
    return make_point(
        protocol="crash-flood",
        r=GOLDEN_R,
        side=9,
        t=t,
        seed=5,
        placement="strip",
        max_rounds=200,
    )


@pytest.mark.parametrize("t", sorted(GOLDEN))
def test_golden_threshold_boundary(t):
    expected = GOLDEN[t]
    for engine in ("reference", "fastpath"):
        obs = observe(_golden_point(t), engine)
        got = (
            obs["grade"]["achieved"],
            obs["grade"]["rounds"],
            obs["grade"]["quiescent"],
            len(obs["undecided"]),
            sum(1 for v in obs["committed"].values() if v is not None),
        )
        assert got == expected, (
            f"{engine} drifted from golden pin at t={t}: "
            f"got {got}, expected {expected}"
        )


# -- 4. edge-case pins on both backends ----------------------------------


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_zero_round_run_rejected(engine):
    """``max_rounds=0`` is a configuration error -- and both backends
    must reject it with the *same* message (rejection parity)."""
    point = make_point(
        protocol="crash-flood", r=1, side=5, t=1, seed=3, max_rounds=0
    )
    with pytest.raises(
        ConfigurationError, match=r"max_rounds must be >= 1, got 0"
    ):
        observe(point, engine)


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_single_round_run(engine):
    """``max_rounds=1``: one TDMA frame.  Slots run sequentially inside
    the frame, so the flood wave crosses the whole fault-free 7x7 torus
    within it -- everyone commits and relays, yet the round limit still
    trips before quiescence.  Both backends must pin the exact same
    frame accounting."""
    point = make_point(
        protocol="crash-flood", r=1, side=7, t=0, seed=3, max_rounds=1
    )
    obs = observe(point, engine)
    assert obs["grade"]["rounds"] == 1
    assert obs["grade"]["hit_round_limit"]
    assert not obs["grade"]["quiescent"]
    assert obs["grade"]["achieved"]
    assert obs["undecided"] == []
    # 49 relays once each + the source's extra confirmation transmission
    assert obs["trace"]["transmissions"] == 50
    assert obs["trace"]["deliveries"] == 400


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_all_relays_dead_from_start(engine):
    """Every non-source node crashed at round 0: the source transmits
    into a dead network and the run goes quiescent with only the source
    committed."""
    side, r = 5, 1
    faults = [
        (x, y) for x in range(side) for y in range(side) if (x, y) != (0, 0)
    ]
    sc = crash_broadcast_scenario(
        r=r, t=len(faults), placement="explicit", faults=faults,
        enforce_budget=False, torus_side=side, engine=engine,
    )
    metrics = RunMetrics(source=sc.source)
    out = sc.run(observers=[metrics])
    # vacuously achieved: the source is the only correct node and it
    # commits its own value; liveness quantifies over correct nodes
    assert out.achieved
    assert out.result.quiescent
    committed = [
        n for n, p in out.result.processes.items()
        if p.committed_value() is not None
    ]
    assert committed == [sc.source]
    # the source still talks; nobody alive hears it
    summary = metrics.summary()
    assert summary["transmissions"] > 0
    assert summary["deliveries"] == 0


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_budget_trips_mid_frame(engine):
    """A message budget smaller than one frame's demand must stop the
    run *inside* that frame, and ``result.rounds`` must count the
    partially-executed round identically on both backends."""
    point = make_point(
        protocol="crash-flood", r=2, side=10, t=0, seed=11,
        max_messages=3, max_rounds=50,
    )
    obs = observe(point, engine)
    assert obs["grade"]["hit_message_limit"]
    assert obs["grade"]["rounds"] == 1
    assert obs["trace"]["transmissions"] <= 3


# -- 5. scenario-axis guardrails ------------------------------------------
#
# The topology and channel factors are reference-engine-only; the metric
# factor is fully vectorized.  Both halves of that contract need tests:
# unsupported levels must raise a *named* error at every layer (never
# silently fall back to the torus/ideal kernels), and supported levels
# must demonstrably flow into the kernels (never silently collapse to
# L-infinity).


class TestAxisGuardrails:
    def test_spec_rejects_fastpath_off_torus(self):
        """ScenarioSpec gates at construction: the spec cannot even be
        built, so no cache key or seed stream ever exists for it."""
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: .*torus '
            r"topology factor, got topology='bounded'",
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="crash-flood",
                engine="fastpath", topology="bounded",
            )

    def test_spec_rejects_fastpath_nonideal_channel(self):
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: channel '
            r"imperfections require the reference engine, got "
            r"channel='lossy'",
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="crash-flood",
                engine="fastpath", channel="lossy",
            )

    def test_scenario_rejects_fastpath_off_torus(self):
        """The engine-level gate (rejection parity with the spec layer):
        a hand-built bounded-grid scenario pointed at the fastpath
        engine raises the same named error family at run time."""
        sc = crash_broadcast_scenario(
            r=1, t=1, placement="random", seed=3,
            topology_kind="bounded", engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: .*only '
            r"Torus topologies, got BoundedGrid",
        ):
            sc.run()

    def test_scenario_rejects_fastpath_nonideal_channel(self):
        sc = crash_broadcast_scenario(
            r=1, t=1, placement="random", seed=3,
            channel="lossy", engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: channel '
            r"imperfections require the reference engine",
        ):
            sc.run()

    def test_metric_is_never_silently_linf(self):
        """The complementary proof: the fastpath kernels honour the L2
        metric.  At a point where L2 and L-infinity observably diverge,
        fastpath-l2 must differ from fastpath-linf (no silent fallback)
        and agree byte-for-byte with reference-l2 (correct semantics)."""
        l2_point = make_point(
            protocol="crash-flood", r=2, side=14, t=2, seed=0,
            placement="strip", max_rounds=60,
            metric="l2",
        )
        linf_point = dict(l2_point, metric="linf")
        fast_l2 = observe(l2_point, "fastpath")
        fast_linf = observe(linf_point, "fastpath")
        assert fast_l2["committed"] != fast_linf["committed"], (
            "fastpath ignored the metric axis: l2 and linf runs are "
            "indistinguishable at a point where they must diverge"
        )
        assert_engines_agree(l2_point)
