"""Cross-engine differential tests: reference vs fastpath.

The fastpath array kernels (:mod:`repro.radio.fastpath`) promise
*byte-identical* observable output to the reference event engine -- same
``metrics_summary`` JSON, same per-node commit map, same trace counters,
same grading facts.  This suite enforces that contract three ways:

1. a deterministic bulk sweep over 200+ randomized points spanning all
   three kernel protocols, both placements, all three metrics, message
   budgets, round caps, and staggered crashes
   (``tests/strategies.sample_points``), plus a second sweep over
   fixed-strategy Byzantine CPA points
   (``tests/strategies.sample_byz_points``);
2. shrinking hypothesis properties over the same spaces
   (``tests/strategies.diff_points`` / ``byz_diff_points``) that
   minimize any divergence to a small reportable scenario;
3. golden pins at the crash threshold boundary t-1 / t / t+1 and at the
   CPA Theorem 6 boundary (``cpa_linf_max_t``), asserted as literal
   constants against *both* backends -- so a simultaneous drift of the
   two engines (which the differential pairs cannot see) still fails.

Plus regression pins for the awkward edges both backends must agree on:
zero-round runs, all-relays-dead-from-start, and message budgets that
trip mid-frame (``result.rounds`` pinned on both).
"""

from __future__ import annotations

from typing import Any, Dict

import pytest
from hypothesis import given, settings

from repro.core.thresholds import cpa_linf_max_t, crash_linf_max_t
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
)
from repro.obs.export import canonical_json
from repro.obs.metrics import RunMetrics
from repro.radio.fastpath import HAVE_NUMPY
from tests.strategies import (
    byz_diff_points,
    diff_points,
    make_byz_point,
    make_point,
    sample_byz_points,
    sample_points,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="fastpath engine needs numpy"
)

#: bulk sweep size -- acceptance floor is 200 randomized points
N_BULK_POINTS = 220

#: Byzantine bulk sweep size (4 fixed strategies, even split)
N_BYZ_POINTS = 120


def _build(point: Dict[str, Any], engine: str):
    """Scenario for ``point`` on ``engine``.

    Both protocols run under *crash* faults (the crash builder accepts a
    ``protocol`` override): crash faults are in-model for bv-two-hop --
    strictly weaker than Byzantine ones -- and are the fault class the
    fastpath kernels implement.
    """
    sc = crash_broadcast_scenario(
        r=point["r"],
        t=point["t"],
        placement=point["placement"],
        metric=point["metric"],
        seed=point["seed"],
        torus_side=point["side"],
        staggered_max_round=point["staggered_max_round"],
        max_rounds=point["max_rounds"],
        protocol=point["protocol"],
        engine=engine,
    )
    sc.max_messages = point["max_messages"]
    return sc


def _build_byz(point: Dict[str, Any], engine: str):
    """Byzantine CPA scenario for ``point`` on ``engine``.

    The builder has no ``max_messages`` parameter (it is a scenario
    field, not a protocol knob), so the budget is assigned after
    construction, exactly like :func:`_build` does for crash points.
    """
    sc = byzantine_broadcast_scenario(
        r=point["r"],
        t=point["t"],
        protocol="cpa",
        strategy=point["strategy"],
        placement=point["placement"],
        metric=point["metric"],
        seed=point["seed"],
        torus_side=point["side"],
        max_rounds=point["max_rounds"],
        engine=engine,
    )
    sc.max_messages = point["max_messages"]
    return sc


def observe(point: Dict[str, Any], engine: str, builder=None) -> Dict[str, Any]:
    """Everything observable about one run, in comparable form."""
    sc = (builder or _build)(point, engine)
    per_source = RunMetrics(source=sc.source)
    global_view = RunMetrics(source=None)
    out = sc.run(observers=[per_source, global_view])
    processes = out.result.processes
    return {
        "metrics_source": canonical_json(per_source.summary()),
        "metrics_global": canonical_json(global_view.summary()),
        "committed": {
            str(node): proc.committed_value()
            for node, proc in sorted(processes.items())
        },
        "undecided": sorted(
            str(node)
            for node, proc in processes.items()
            if not proc.is_decided()
        ),
        "grade": {
            "achieved": out.achieved,
            "rounds": out.result.rounds,
            "quiescent": out.result.quiescent,
            "hit_round_limit": out.result.hit_round_limit,
            "hit_message_limit": out.result.hit_message_limit,
        },
        "trace": out.result.trace.summary(),
    }


def assert_engines_agree(
    point: Dict[str, Any], builder=None
) -> Dict[str, Any]:
    """Run ``point`` on both backends and diff every observable."""
    ref = observe(point, "reference", builder)
    fast = observe(point, "fastpath", builder)
    for key in ref:
        assert ref[key] == fast[key], (
            f"engines diverge on {key!r} at point {point!r}\n"
            f"reference: {ref[key]!r}\nfastpath:  {fast[key]!r}"
        )
    return ref


# -- 1. deterministic bulk sweep ------------------------------------------


def test_differential_bulk_sweep():
    """200+ fixed randomized points, byte-equal on every observable.

    The point list is fully determined by ``sample_points`` (seeded),
    so a failure here reproduces with a single point in isolation.
    """
    points = sample_points(N_BULK_POINTS, seed=0)
    protocols = {p["protocol"] for p in points}
    assert protocols == {"crash-flood", "bv-two-hop", "cpa"}
    for point in points:
        assert_engines_agree(point)


def test_differential_byzantine_bulk_sweep():
    """Fixed-strategy Byzantine CPA points, byte-equal on every
    observable -- wrong commits, fabricator junk floods, and budget
    trips included."""
    points = sample_byz_points(N_BYZ_POINTS, seed=0)
    strategies = {p["strategy"] for p in points}
    assert strategies == {"silent", "liar", "duplicitous", "fabricator"}
    for point in points:
        assert_engines_agree(point, builder=_build_byz)


# -- 2. shrinking property -----------------------------------------------


@settings(max_examples=40, deadline=None)
@given(point=diff_points())
def test_differential_property(point):
    assert_engines_agree(point)


@settings(max_examples=40, deadline=None)
@given(point=byz_diff_points())
def test_differential_byzantine_property(point):
    assert_engines_agree(point, builder=_build_byz)


# -- 3. golden pins at the crash threshold boundary ----------------------

# Literal expectations at t in {thr-1, thr, thr+1} for r=1 strip
# placement around thr = crash_linf_max_t(1).  Pinned constants, not a
# pair comparison: if both engines drift together, this still fails.
# Regenerate by running this module directly (python -m tests.<module>
# prints the observed rows on mismatch).
GOLDEN_R = 1
GOLDEN_THR = crash_linf_max_t(GOLDEN_R)  # = 2 for r=1
GOLDEN = {
    # t: (achieved, rounds, quiescent, undecided_count, committed_count)
    GOLDEN_THR - 1: (True, 4, True, 6, 75),
    GOLDEN_THR: (True, 4, True, 11, 70),
    GOLDEN_THR + 1: (False, 3, True, 54, 27),
}


def _golden_point(t: int) -> Dict[str, Any]:
    return make_point(
        protocol="crash-flood",
        r=GOLDEN_R,
        side=9,
        t=t,
        seed=5,
        placement="strip",
        max_rounds=200,
    )


@pytest.mark.parametrize("t", sorted(GOLDEN))
def test_golden_threshold_boundary(t):
    expected = GOLDEN[t]
    for engine in ("reference", "fastpath"):
        obs = observe(_golden_point(t), engine)
        got = (
            obs["grade"]["achieved"],
            obs["grade"]["rounds"],
            obs["grade"]["quiescent"],
            len(obs["undecided"]),
            sum(1 for v in obs["committed"].values() if v is not None),
        )
        assert got == expected, (
            f"{engine} drifted from golden pin at t={t}: "
            f"got {got}, expected {expected}"
        )


# Literal expectations at the CPA Theorem 6 boundary: thr = floor(2r^2/3)
# (cpa_linf_max_t), the largest budget the paper certifies for CPA.  Same
# double-drift rationale as the crash pins; the liar strip placement
# exercises the Byzantine value-fault kernel, so these constants also pin
# the compiled message plans on both backends.  Theorem 6 guarantees
# success only up to thr -- the t = thr+1 row is an empirical pin (this
# particular strip does not defeat CPA), not a sharpness claim.
GOLDEN_CPA_R = 2
GOLDEN_CPA_THR = cpa_linf_max_t(GOLDEN_CPA_R)  # = 2 for r=2
GOLDEN_CPA = {
    # t: (achieved, rounds, quiescent, undecided_count, committed_count)
    GOLDEN_CPA_THR - 1: (True, 2, True, 4, 192),
    GOLDEN_CPA_THR: (True, 3, True, 10, 186),
    GOLDEN_CPA_THR + 1: (True, 3, True, 14, 182),
}


def _golden_cpa_point(t: int) -> Dict[str, Any]:
    return make_byz_point(
        strategy="liar",
        r=GOLDEN_CPA_R,
        side=14,
        t=t,
        seed=5,
        placement="strip",
        max_rounds=200,
    )


@pytest.mark.parametrize("t", sorted(GOLDEN_CPA))
def test_golden_cpa_theorem6_boundary(t):
    expected = GOLDEN_CPA[t]
    for engine in ("reference", "fastpath"):
        obs = observe(_golden_cpa_point(t), engine, builder=_build_byz)
        got = (
            obs["grade"]["achieved"],
            obs["grade"]["rounds"],
            obs["grade"]["quiescent"],
            len(obs["undecided"]),
            sum(1 for v in obs["committed"].values() if v is not None),
        )
        assert got == expected, (
            f"{engine} drifted from golden CPA pin at t={t}: "
            f"got {got}, expected {expected}"
        )


# -- 4. edge-case pins on both backends ----------------------------------


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_zero_round_run_rejected(engine):
    """``max_rounds=0`` is a configuration error -- and both backends
    must reject it with the *same* message (rejection parity)."""
    point = make_point(
        protocol="crash-flood", r=1, side=5, t=1, seed=3, max_rounds=0
    )
    with pytest.raises(
        ConfigurationError, match=r"max_rounds must be >= 1, got 0"
    ):
        observe(point, engine)


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_single_round_run(engine):
    """``max_rounds=1``: one TDMA frame.  Slots run sequentially inside
    the frame, so the flood wave crosses the whole fault-free 7x7 torus
    within it -- everyone commits and relays, yet the round limit still
    trips before quiescence.  Both backends must pin the exact same
    frame accounting."""
    point = make_point(
        protocol="crash-flood", r=1, side=7, t=0, seed=3, max_rounds=1
    )
    obs = observe(point, engine)
    assert obs["grade"]["rounds"] == 1
    assert obs["grade"]["hit_round_limit"]
    assert not obs["grade"]["quiescent"]
    assert obs["grade"]["achieved"]
    assert obs["undecided"] == []
    # 49 relays once each + the source's extra confirmation transmission
    assert obs["trace"]["transmissions"] == 50
    assert obs["trace"]["deliveries"] == 400


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_all_relays_dead_from_start(engine):
    """Every non-source node crashed at round 0: the source transmits
    into a dead network and the run goes quiescent with only the source
    committed."""
    side, r = 5, 1
    faults = [
        (x, y) for x in range(side) for y in range(side) if (x, y) != (0, 0)
    ]
    sc = crash_broadcast_scenario(
        r=r, t=len(faults), placement="explicit", faults=faults,
        enforce_budget=False, torus_side=side, engine=engine,
    )
    metrics = RunMetrics(source=sc.source)
    out = sc.run(observers=[metrics])
    # vacuously achieved: the source is the only correct node and it
    # commits its own value; liveness quantifies over correct nodes
    assert out.achieved
    assert out.result.quiescent
    committed = [
        n for n, p in out.result.processes.items()
        if p.committed_value() is not None
    ]
    assert committed == [sc.source]
    # the source still talks; nobody alive hears it
    summary = metrics.summary()
    assert summary["transmissions"] > 0
    assert summary["deliveries"] == 0


@pytest.mark.parametrize("engine", ("reference", "fastpath"))
def test_budget_trips_mid_frame(engine):
    """A message budget smaller than one frame's demand must stop the
    run *inside* that frame, and ``result.rounds`` must count the
    partially-executed round identically on both backends."""
    point = make_point(
        protocol="crash-flood", r=2, side=10, t=0, seed=11,
        max_messages=3, max_rounds=50,
    )
    obs = observe(point, engine)
    assert obs["grade"]["hit_message_limit"]
    assert obs["grade"]["rounds"] == 1
    assert obs["trace"]["transmissions"] <= 3


# -- 5. scenario-axis guardrails ------------------------------------------
#
# The topology and channel factors are reference-engine-only; the metric
# factor is fully vectorized.  Both halves of that contract need tests:
# unsupported levels must raise a *named* error at every layer (never
# silently fall back to the torus/ideal kernels), and supported levels
# must demonstrably flow into the kernels (never silently collapse to
# L-infinity).


class TestAxisGuardrails:
    def test_spec_rejects_fastpath_off_torus(self):
        """ScenarioSpec gates at construction: the spec cannot even be
        built, so no cache key or seed stream ever exists for it."""
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: .*torus '
            r"topology factor, got topology='bounded'",
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="crash-flood",
                engine="fastpath", topology="bounded",
            )

    def test_spec_rejects_fastpath_nonideal_channel(self):
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: channel '
            r"imperfections require the reference engine, got "
            r"channel='lossy'",
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="crash-flood",
                engine="fastpath", channel="lossy",
            )

    def test_scenario_rejects_fastpath_off_torus(self):
        """The engine-level gate (rejection parity with the spec layer):
        a hand-built bounded-grid scenario pointed at the fastpath
        engine raises the same named error family at run time."""
        sc = crash_broadcast_scenario(
            r=1, t=1, placement="random", seed=3,
            topology_kind="bounded", engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: .*only '
            r"Torus topologies, got BoundedGrid",
        ):
            sc.run()

    def test_scenario_rejects_fastpath_nonideal_channel(self):
        sc = crash_broadcast_scenario(
            r=1, t=1, placement="random", seed=3,
            channel="lossy", engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: channel '
            r"imperfections require the reference engine",
        ):
            sc.run()

    def test_spec_rejects_fastpath_unkernelled_protocol(self):
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: protocol '
            r"'bv-indirect' has no fastpath kernel \(supported:",
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="bv-indirect",
                engine="fastpath",
            )

    def test_spec_rejects_fastpath_byzantine_off_cpa(self):
        """Byzantine faults have a fastpath kernel only for CPA; a
        bv-two-hop Byzantine spec must refuse at construction."""
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r"protocol 'bv-two-hop' has no Byzantine-capable "
            r"fastpath kernel \(supported:",
        ):
            ScenarioSpec(
                kind="byzantine", r=1, t=1, protocol="bv-two-hop",
                engine="fastpath",
            )

    def test_spec_rejects_fastpath_arbitrary_code_strategy(self):
        """``noise`` Byzantine nodes run arbitrary per-round code; no
        compiled message plan can reproduce them, so the spec refuses."""
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError,
            match=r"Byzantine strategy 'noise' runs arbitrary node code "
            r"\(no fixed-strategy kernel",
        ):
            ScenarioSpec(
                kind="byzantine", r=1, t=1, protocol="cpa",
                strategy="noise", engine="fastpath",
            )

    def test_spec_rejects_nonpositive_max_rounds(self):
        """Same guard -- and the same message -- the engines raise at
        run time, so a bad spec dies before minting a cache key."""
        from repro.exec import ScenarioSpec

        with pytest.raises(
            ConfigurationError, match=r"max_rounds must be >= 1, got 0"
        ):
            ScenarioSpec(
                kind="crash", r=1, t=1, protocol="crash-flood",
                max_rounds=0,
            )

    def test_scenario_rejects_fastpath_byzantine_off_cpa(self):
        """Run-time parity for the Byzantine-protocol gate: the same
        named reason the spec layer raises at construction."""
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="bv-two-hop", strategy="liar",
            placement="random", seed=3, engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r'engine="fastpath" cannot run this scenario: protocol '
            r"'bv-two-hop' has no Byzantine-capable fastpath kernel",
        ):
            sc.run()

    def test_scenario_rejects_fastpath_arbitrary_code_strategy(self):
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="cpa", strategy="noise",
            placement="random", seed=3, engine="fastpath",
        )
        with pytest.raises(
            ConfigurationError,
            match=r"Byzantine strategy 'noise' runs arbitrary node code "
            r"\(no fixed-strategy kernel",
        ):
            sc.run()

    def test_metric_is_never_silently_linf(self):
        """The complementary proof: the fastpath kernels honour the L2
        metric.  At a point where L2 and L-infinity observably diverge,
        fastpath-l2 must differ from fastpath-linf (no silent fallback)
        and agree byte-for-byte with reference-l2 (correct semantics)."""
        l2_point = make_point(
            protocol="crash-flood", r=2, side=14, t=2, seed=0,
            placement="strip", max_rounds=60,
            metric="l2",
        )
        linf_point = dict(l2_point, metric="linf")
        fast_l2 = observe(l2_point, "fastpath")
        fast_linf = observe(linf_point, "fastpath")
        assert fast_l2["committed"] != fast_linf["committed"], (
            "fastpath ignored the metric axis: l2 and linf runs are "
            "indistinguishable at a point where they must diverge"
        )
        assert_engines_agree(l2_point)
