"""Project-model tests: symbol tables, call graph, and the self-check.

The whole-program passes are only as good as the
:class:`~repro.lint.analysis.ProjectModel` underneath them, so these
tests pin the resolution behaviors the passes lean on: method calls
through class-hierarchy analysis, aliased imports, decorated functions,
barrier-aware reachability -- and, as the integration guarantee, that
the model loads all of ``src/repro`` without a single unresolved-symbol
warning.
"""

import os

from repro.lint.analysis import ProjectModel
from repro.lint.sources import LintContext, discover_py_files, load_modules
from tests.test_lint_rules import write_tree

SRC_REPRO = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def build_model(tmp_path, files):
    """Materialize a fixture tree and build its project model."""
    write_tree(tmp_path, files)
    modules, failures = load_modules(discover_py_files([str(tmp_path)]))
    assert not failures
    return LintContext(modules).project


def callee_names(model, caller):
    return sorted(e.callee for e in model.callees(caller))


class TestCallGraph:
    def test_plain_and_imported_calls(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def top():\n"
                    "    return helper() + local()\n"
                    "def local():\n"
                    "    return 1\n"
                ),
                "pkg/b.py": "def helper():\n    return 2\n",
            },
        )
        assert callee_names(model, "pkg.a.top") == [
            "pkg.a.local",
            "pkg.b.helper",
        ]

    def test_method_calls_resolve_through_hierarchy(self, tmp_path):
        """A call on a base-typed receiver reaches every override."""
        model = build_model(
            tmp_path,
            {
                "pkg/shapes.py": (
                    "class Shape:\n"
                    "    def area(self):\n"
                    "        return 0\n"
                    "class Circle(Shape):\n"
                    "    def area(self):\n"
                    "        return 3\n"
                ),
                "pkg/use.py": (
                    "from pkg.shapes import Shape\n"
                    "def measure(s: Shape):\n"
                    "    return s.area()\n"
                ),
            },
        )
        assert callee_names(model, "pkg.use.measure") == [
            "pkg.shapes.Circle.area",
            "pkg.shapes.Shape.area",
        ]

    def test_aliased_imports(self, tmp_path):
        """Both ``import m as x`` and ``from m import f as g`` resolve."""
        model = build_model(
            tmp_path,
            {
                "pkg/core.py": "def work():\n    return 1\n",
                "pkg/use.py": (
                    "import pkg.core as c\n"
                    "from pkg.core import work as w\n"
                    "def via_module():\n"
                    "    return c.work()\n"
                    "def via_name():\n"
                    "    return w()\n"
                ),
            },
        )
        assert callee_names(model, "pkg.use.via_module") == ["pkg.core.work"]
        assert callee_names(model, "pkg.use.via_name") == ["pkg.core.work"]

    def test_decorated_functions(self, tmp_path):
        """Decoration neither hides a function nor breaks calls to it."""
        model = build_model(
            tmp_path,
            {
                "pkg/deco.py": (
                    "import functools\n"
                    "def wrap(fn):\n"
                    "    @functools.wraps(fn)\n"
                    "    def inner(*a, **k):\n"
                    "        return fn(*a, **k)\n"
                    "    return inner\n"
                    "@wrap\n"
                    "def decorated():\n"
                    "    return 1\n"
                    "def caller():\n"
                    "    return decorated()\n"
                ),
            },
        )
        assert "pkg.deco.decorated" in model.functions
        assert model.functions["pkg.deco.decorated"].decorators
        assert callee_names(model, "pkg.deco.caller") == ["pkg.deco.decorated"]

    def test_reachability_with_witness_and_barrier(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/chain.py": (
                    "def derive_seed(key):\n"
                    "    return hash(key)\n"
                    "def leaf():\n"
                    "    return 1\n"
                    "def mid():\n"
                    "    return leaf() + derive_seed('k')\n"
                    "def root():\n"
                    "    return mid()\n"
                ),
            },
        )
        parents = model.reachable_from(["pkg.chain.root"])
        assert set(parents) == {
            "pkg.chain.root",
            "pkg.chain.mid",
            "pkg.chain.leaf",
            "pkg.chain.derive_seed",
        }
        assert model.call_chain(parents, "pkg.chain.leaf") == [
            "pkg.chain.root",
            "pkg.chain.mid",
            "pkg.chain.leaf",
        ]
        # a stop name is a barrier: neither entered nor traversed
        stopped = model.reachable_from(
            ["pkg.chain.root"], stop={"derive_seed"}
        )
        assert "pkg.chain.derive_seed" not in stopped

    def test_set_valuedness_flows_into_parameters(self, tmp_path):
        """Passing a set argument marks the receiving parameter."""
        model = build_model(
            tmp_path,
            {
                "pkg/flow.py": (
                    "def consume(items):\n"
                    "    return list(items)\n"
                    "def produce():\n"
                    "    return consume({1, 2, 3})\n"
                ),
            },
        )
        assert model.functions["pkg.flow.consume"].set_params == {"items"}


class TestSelfCheck:
    def test_model_loads_src_repro_without_warnings(self):
        """The model resolves the whole shipped tree: no unresolved
        symbols, no import-graph holes -- so a pass that stays silent is
        silent because the code is clean, not because the model went
        blind."""
        modules, failures = load_modules(discover_py_files([SRC_REPRO]))
        assert not failures
        model = LintContext(modules).project
        assert model.warnings == []
        # sanity: the model actually saw the tree, not an empty dir
        assert len(model.functions) > 300
        assert len(model.classes) > 50
        assert "repro.exec.specs.run_trial" in model.functions
        assert isinstance(model, ProjectModel)

    def test_model_is_cached_on_context(self):
        modules, _ = load_modules(
            discover_py_files([os.path.join(SRC_REPRO, "lint")])
        )
        ctx = LintContext(modules)
        assert ctx.project is ctx.project
