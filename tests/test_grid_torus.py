"""Tests for repro.grid.torus and repro.grid.topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.grid.topology import InfiniteGrid
from repro.grid.torus import Torus


class TestInfiniteGrid:
    def test_properties(self):
        g = InfiniteGrid(2)
        assert not g.is_finite
        assert g.r == 2
        assert g.metric.name == "linf"
        assert g.contains((10**9, -(10**9)))

    def test_neighbors_count(self):
        g = InfiniteGrid(2)
        assert len(g.neighbors((0, 0))) == 24
        g2 = InfiniteGrid(2, metric="l2")
        assert len(g2.neighbors((0, 0))) == 12

    def test_are_neighbors(self):
        g = InfiniteGrid(1)
        assert g.are_neighbors((0, 0), (1, 1))
        assert not g.are_neighbors((0, 0), (2, 0))
        assert not g.are_neighbors((0, 0), (0, 0))

    def test_nodes_not_enumerable(self):
        with pytest.raises(ConfigurationError):
            list(InfiniteGrid(1).nodes())

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            InfiniteGrid(0)


class TestTorusConstruction:
    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError, match="too small"):
            Torus(4, 10, 2)
        Torus(5, 5, 2)  # 2r+1 exactly: allowed

    def test_square_and_recommended(self):
        t = Torus.square(9, 2)
        assert t.width == t.height == 9
        rec = Torus.recommended(2)
        assert rec.width == 4 * 2 + 3

    def test_len_and_nodes(self):
        t = Torus(5, 7, 2)
        assert len(t) == 35
        nodes = list(t.nodes())
        assert len(nodes) == 35
        assert len(set(nodes)) == 35

    def test_repr(self):
        assert "Torus(5x7" in repr(Torus(5, 7, 2))


class TestTorusWrapping:
    def test_canonical(self):
        t = Torus(5, 5, 2)
        assert t.canonical((7, -1)) == (2, 4)
        assert t.canonical((0, 0)) == (0, 0)

    def test_neighbors_wrap(self):
        t = Torus(5, 5, 1)
        nbrs = t.neighbors((0, 0))
        assert len(nbrs) == 8
        assert (4, 4) in nbrs  # wrapped corner neighbor

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_neighbors_unique(self, x, y):
        t = Torus(7, 9, 2)
        nbrs = t.neighbors((x, y))
        assert len(set(nbrs)) == len(nbrs) == 24

    def test_neighbor_symmetry(self):
        t = Torus(7, 7, 2)
        for n in list(t.nodes())[:10]:
            for m in t.neighbors(n):
                assert n in t.neighbors(m)

    def test_toroidal_delta_shortest(self):
        t = Torus(10, 10, 2)
        assert t.toroidal_delta((0, 0), (9, 0)) == (-1, 0)
        assert t.toroidal_delta((0, 0), (5, 5)) == (5, 5)  # tie goes positive
        assert t.toroidal_delta((2, 3), (2, 3)) == (0, 0)

    def test_distance_via_wrap(self):
        t = Torus(10, 10, 2)
        assert t.distance((0, 0), (9, 9)) == 1.0  # linf through the corner

    def test_are_neighbors_via_wrap(self):
        t = Torus(6, 6, 1)
        assert t.are_neighbors((0, 0), (5, 5))
        assert not t.are_neighbors((0, 0), (3, 3))


class TestTorusMetrics:
    def test_l2_neighborhood(self):
        t = Torus(9, 9, 2, metric="l2")
        assert len(t.neighbors((4, 4))) == 12

    def test_neighborhood_size_matches(self):
        for metric in ("l1", "l2", "linf"):
            t = Torus(11, 11, 2, metric=metric)
            assert t.neighborhood_size() == len(t.neighbors((5, 5)))
