"""Documentation-coverage meta-tests.

Deliverable-level requirement: every public module, class and function of
the library carries a docstring.  This test walks the installed package
and enforces it, so documentation rot fails CI like any other regression.
"""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_every_public_method_documented(self):
        """Every public method carries a docstring -- its own, or the
        documented contract it overrides from a base class."""
        undocumented = []
        for module in _walk_modules():
            for cls_name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(member)
                        or isinstance(member, property)
                    ):
                        continue
                    doc = (
                        member.fget.__doc__
                        if isinstance(member, property)
                        else member.__doc__
                    )
                    if (doc or "").strip():
                        continue
                    # overriding a documented base-class contract is fine
                    inherited = any(
                        (getattr(base, name, None) is not None)
                        and (
                            getattr(getattr(base, name), "__doc__", None)
                            or ""
                        ).strip()
                        for base in cls.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{name}"
                        )
        assert not undocumented, undocumented
