"""Unit tests for the fastpath engine's internal data structures.

The differential suite (``tests/test_fastpath_differential.py``) pins
the *observable* equivalence contract; this module pins the internal
building blocks directly, so a bug in one of them fails with a local,
named assertion instead of a whole-run byte diff:

- :class:`~repro.radio.fastpath.bitset.PackedBits` -- the packed
  boolean node-state arrays (side-1000 memory work);
- the :class:`~repro.radio.fastpath.lattice.Lattice` vectorized TDMA
  construction vs :func:`repro.grid.tdma.make_schedule` -- same slots,
  same order, same members;
- the on-the-fly ball stencil (:meth:`Lattice.balls_of`) vs the lazy
  ``nbr_idx`` table it replaced in the vectorized kernels.
"""

from __future__ import annotations

import pytest

from repro.grid.tdma import make_schedule
from repro.grid.torus import Torus
from repro.radio.fastpath import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="fastpath engine needs numpy"
)


# -- PackedBits -----------------------------------------------------------


class TestPackedBits:
    def test_roundtrip_random(self):
        import numpy as np

        from repro.radio.fastpath.bitset import PackedBits

        rng = np.random.default_rng(0)
        for n in (1, 7, 8, 9, 63, 64, 65, 1000):
            expected = rng.random(n) < 0.5
            bits = PackedBits(n)
            bits.set_true(np.flatnonzero(expected))
            assert bits.to_list() == expected.tolist()
            assert (bits.to_array() == expected).all()
            idxs = np.arange(n)
            assert (bits.get(idxs) == expected).all()

    def test_fill_and_clear(self):
        import numpy as np

        from repro.radio.fastpath.bitset import PackedBits

        bits = PackedBits(20, fill=True)
        assert bits.to_list() == [True] * 20
        bits.set_false(np.asarray([0, 7, 8, 19]))
        arr = bits.to_array()
        assert not arr[[0, 7, 8, 19]].any()
        assert arr.sum() == 16

    def test_duplicate_indices_are_idempotent(self):
        """``np.bitwise_or.at`` must OR every occurrence: setting the
        same bit twice in one call is the classic ufunc-buffering bug
        that plain ``|=`` fancy indexing silently drops."""
        import numpy as np

        from repro.radio.fastpath.bitset import PackedBits

        bits = PackedBits(16)
        bits.set_true(np.asarray([3, 3, 3, 5, 5]))
        assert bits.to_array().nonzero()[0].tolist() == [3, 5]

    def test_memory_is_one_eighth(self):
        from repro.radio.fastpath.bitset import PackedBits

        n = 1_000_000
        bits = PackedBits(n)
        assert bits.words.nbytes == (n + 7) // 8  # vs n bytes for bool


# -- vectorized TDMA vs make_schedule -------------------------------------


@pytest.mark.parametrize(
    "w,h,r",
    [
        (3, 3, 1),    # minimal coloring torus
        (9, 9, 1),    # coloring
        (9, 6, 1),    # coloring, non-square
        (10, 10, 1),  # sequential (10 % 3 != 0)
        (5, 5, 2),    # minimal torus for r=2, sequential
        (10, 10, 2),  # coloring (k=5)
        (10, 15, 2),  # coloring, non-square
        (12, 10, 2),  # sequential (12 % 5 != 0)
        (7, 7, 3),    # coloring (k=7)
    ],
)
def test_lattice_schedule_matches_make_schedule(w, h, r):
    """The lattice's argsort/split construction must reproduce
    ``make_schedule`` exactly: same slot count, same slot order, same
    members in the same (sorted-coordinate) order."""
    from repro.radio.fastpath.lattice import Lattice

    topology = Torus(w, h, r)
    lattice = Lattice(topology)
    schedule = make_schedule(topology)

    assert len(lattice.slot_groups) == len(schedule.slots)
    for group, slot_nodes in zip(lattice.slot_groups, schedule.slots):
        assert lattice.coords(group) == list(slot_nodes)
    for node in topology.nodes():
        assert int(lattice.slot_of[lattice.flat(node)]) == (
            schedule.slot_of(node)
        )


# -- ball stencil vs neighbor table ---------------------------------------


@pytest.mark.parametrize("metric", ("linf", "l1", "l2"))
@pytest.mark.parametrize("w,h,r", [(5, 5, 1), (7, 9, 2), (5, 6, 2)])
def test_stencil_matches_neighbor_table(w, h, r, metric):
    """``balls_of`` computes exactly ``nbr_idx[idxs]`` -- same receiver
    sets in the same (metric offset) order -- without the O(N*K) table
    the kernels no longer materialize."""
    import numpy as np

    from repro.radio.fastpath.lattice import Lattice

    lattice = Lattice(Torus(w, h, r, metric=metric))
    idxs = np.arange(lattice.num_nodes)
    assert (lattice.balls_of(idxs) == lattice.nbr_idx[idxs]).all()
    for i in (0, lattice.num_nodes // 2, lattice.num_nodes - 1):
        assert (lattice.ball_of(i) == lattice.nbr_idx[i]).all()
        # and the stencil order is the topology's neighbor order
        assert lattice.coords(lattice.ball_of(i)) == [
            lattice.topology.canonical(nb)
            for nb in lattice.topology.neighbors(lattice.coord(i))
        ]
